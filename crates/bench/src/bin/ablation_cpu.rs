//! A5: host CPU model ablation — interrupt coalescing and jumbo frames.
//! §7: "the CPU was running at near 100% capacity ... Interrupt coalescing
//! ... can help ... A second way ... is by using Jumbo Frames" (untested
//! at SC'00 because a router lacked support; we can test it).

use esg_core::ablation_cpu_model;

fn main() {
    println!("== A5: GigE host CPU bottleneck mitigations ==\n");
    for (name, mbps) in ablation_cpu_model() {
        println!("{name:>28}: {mbps:>8.1} Mb/s");
    }
    println!("\nshape: coalescing lifts the CPU-bound rate; jumbo frames lift");
    println!("it further until the NIC line rate binds.");
}
