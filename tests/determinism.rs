//! Reproducibility: every experiment is a pure function of its seed and
//! configuration — the property that makes the benchmark harness's numbers
//! meaningful.

use esg::core::{run_fig8, run_table1, Fig8Config, Table1Config};
use esg::simnet::SimDuration;

#[test]
fn table1_runs_are_bit_identical() {
    let cfg = Table1Config {
        duration: SimDuration::from_mins(3),
        ..Table1Config::default()
    };
    let a = run_table1(cfg);
    let b = run_table1(cfg);
    assert_eq!(a.peak_0_1s_gbps.to_bits(), b.peak_0_1s_gbps.to_bits());
    assert_eq!(a.peak_5s_gbps.to_bits(), b.peak_5s_gbps.to_bits());
    assert_eq!(a.sustained_mbps.to_bits(), b.sustained_mbps.to_bits());
    assert_eq!(a.total_gbytes.to_bits(), b.total_gbytes.to_bits());
    assert_eq!(a.transfers_completed, b.transfers_completed);
}

#[test]
fn fig8_series_is_bit_identical() {
    let cfg = Fig8Config {
        duration: SimDuration::from_mins(45),
        ..Fig8Config::default()
    };
    let a = run_fig8(cfg.clone());
    let b = run_fig8(cfg);
    assert_eq!(a.series.len(), b.series.len());
    for (x, y) in a.series.iter().zip(&b.series) {
        assert_eq!(x.0.to_bits(), y.0.to_bits());
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.transfers_completed, b.transfers_completed);
}

#[test]
fn synthetic_climate_is_seed_stable() {
    // The generator's output feeds checksums in the loopback tests; it
    // must never drift across runs.
    let p = esg::cdms::SynthParams {
        lat_points: 16,
        lon_points: 32,
        time_steps: 4,
        hours_per_step: 6.0,
        seed: 424242,
    };
    let bytes_a = esg::cdms::to_bytes(&esg::cdms::generate("s", p));
    let bytes_b = esg::cdms::to_bytes(&esg::cdms::generate("s", p));
    assert_eq!(
        esg::gsi::sha256(&bytes_a),
        esg::gsi::sha256(&bytes_b),
        "generator must be deterministic"
    );
}

#[test]
fn end_to_end_testbed_outcomes_are_stable() {
    use esg::core::esg_testbed;
    use esg::reqman::submit_request;
    use esg::simnet::SimTime;

    let run = || -> (f64, String) {
        let mut tb = esg_testbed(5150);
        tb.publish_dataset("det_ds", 16, 8, 10_000_000, &[1, 2]);
        tb.start_nws(SimDuration::from_secs(25));
        tb.sim.run_until(SimTime::from_secs(100));
        let collection = tb.sim.world.metadata.collection_of("det_ds").unwrap();
        let files: Vec<(String, String)> = tb
            .sim
            .world
            .metadata
            .all_files("det_ds")
            .unwrap()
            .iter()
            .map(|f| (collection.clone(), f.name.clone()))
            .collect();
        let client = tb.client;
        submit_request(&mut tb.sim, client, files, |s, o| s.world.outcomes.push(o));
        tb.sim.run_until(SimTime::from_secs(7200));
        let o = &tb.sim.world.outcomes[0];
        let hosts: Vec<String> = o
            .files
            .iter()
            .map(|f| f.replica_host.clone().unwrap_or_default())
            .collect();
        (o.finished.since(o.started).as_secs_f64(), hosts.join(","))
    };
    let (t1, h1) = run();
    let (t2, h2) = run();
    assert_eq!(t1.to_bits(), t2.to_bits());
    assert_eq!(h1, h2);
}
