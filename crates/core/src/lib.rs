//! # esg-core — the Earth System Grid prototype, end to end
//!
//! Composes every subsystem into the Figure 1 architecture and provides the
//! paper's testbeds, the VCDAT-like client facade, the related-work
//! baselines and the experiment runners that regenerate each table/figure.

pub mod client;
pub mod experiments;
pub mod scenario;
pub mod world;

pub use client::{fetch_and_analyze, selection_screen, AnalysisProduct};
pub use experiments::{
    ablation_channel_caching, ablation_cpu_model, baseline_comparison, hrm_staging_comparison,
    nws_forecast_accuracy, planner_spread_comparison, replica_policy_comparison, run_fig8,
    run_table1, sweep_buffer_size, sweep_parallel_streams, sweep_stripes, user_scaling, Fig8Config,
    Fig8Fault, Fig8Results, Table1Config, Table1Results,
};
pub use scenario::{
    esg_testbed, fig8_testbed, sc2000_scinet, standard_synth, EsgTestbed, Fig8Testbed,
    Sc2000Config, Sc2000Testbed, Site,
};
pub use world::{EsgSim, EsgWorld};
