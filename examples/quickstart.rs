//! Quickstart: the end-to-end ESG prototype in one run.
//!
//! Builds the Figure 1 multi-site testbed, publishes a synthetic climate
//! dataset with replicas at two sites, warms the Network Weather Service,
//! then performs the paper's demo loop: attribute selection → metadata
//! resolution → request manager → NWS-based replica selection → GridFTP
//! transfers → analysis → visualization.
//!
//! Run with: `cargo run --release --example quickstart`

use esg::core::{esg_testbed, fetch_and_analyze, selection_screen, standard_synth};
use esg::simnet::{SimDuration, SimTime};

fn main() {
    println!("== ESG-I quickstart ==\n");

    // 1. Build the multi-site testbed (LBNL/LLNL/ISI/ANL/NCAR/SDSC + desktop).
    let mut tb = esg_testbed(2026);
    println!(
        "testbed: {} storage sites, client = vcdat.desktop",
        tb.sites.len()
    );

    // 2. Publish a synthetic PCM dataset: 64 six-hourly steps, 8 steps per
    //    file, ~12.6 MB per step on the wire; replicas at LLNL and ANL.
    let synth = standard_synth(64, 7);
    tb.publish_dataset("pcm_b06.61", 64, 8, 12_600_000, &[1, 3]);
    println!("published dataset pcm_b06.61 (replicas at LLNL and ANL)\n");

    // 3. Warm NWS so replica selection has forecasts.
    tb.start_nws(SimDuration::from_secs(30));
    tb.sim.run_until(SimTime::from_secs(120));

    // 4. The Figure 2 selection screen.
    let screen = selection_screen(&tb.sim, "pcm_b06.61").expect("dataset registered");
    println!("{screen}");

    // 5. Fetch steps 16..48 of surface temperature and analyze.
    let (outcome, product) = fetch_and_analyze(
        &mut tb,
        "pcm_b06.61",
        "tas",
        (16, 48),
        synth,
        SimTime::from_secs(36_000),
    )
    .expect("request completes");

    println!(
        "request {} complete: {} files, {:.1} MB in {:.1} s of simulated time",
        outcome.id,
        outcome.files.len(),
        outcome.total_bytes as f64 / 1e6,
        outcome.finished.since(outcome.started).as_secs_f64()
    );
    for f in &outcome.files {
        println!(
            "  {} <- {} ({} attempt{})",
            f.name,
            f.replica_host.as_deref().unwrap_or("?"),
            f.attempts,
            if f.attempts == 1 { "" } else { "s" }
        );
    }

    // 6. The Figure 3 visualization: time-mean surface temperature.
    println!(
        "\ntime-mean surface air temperature, steps 16..48 \
         (min {:.1} K, max {:.1} K, mean {:.1} K):\n",
        product.stats.min, product.stats.max, product.stats.mean
    );
    println!("{}", product.ascii);
    println!("(dense glyphs = warm; the equatorial band should be densest)");
}
