//! A self-describing binary file format for climate data.
//!
//! The prototype's datasets are "stored in a self-describing binary format
//! such as netCDF" (§3). This module implements such a format ("ESG1"):
//! a little-endian container with named axes, attributes and f32 variables,
//! readable without external schema — the files GridFTP moves around in the
//! experiments are real instances of this format, so checksums and partial
//! reads act on meaningful bytes.
//!
//! Layout (all integers little-endian):
//! ```text
//! magic "ESG1" | version u32 |
//! name str | attr count u32 | (key str, value str)* |
//! axis count u32 | (name str, units str, len u64, f64*)* |
//! var count u32 | (name str, units str, long str,
//!                  rank u32, dim u32*, len u64, f32*)*
//! str = len u32 | utf8 bytes
//! ```

use crate::model::{Axis, Dataset, Variable};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ESG1";
const VERSION: u32 = 1;

/// Errors reading an ESG1 file.
#[derive(Debug)]
pub enum NcError {
    Io(io::Error),
    BadMagic([u8; 4]),
    UnsupportedVersion(u32),
    Corrupt(String),
}

impl std::fmt::Display for NcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NcError::Io(e) => write!(f, "i/o error: {e}"),
            NcError::BadMagic(m) => write!(f, "bad magic: {m:?}"),
            NcError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            NcError::Corrupt(s) => write!(f, "corrupt file: {s}"),
        }
    }
}

impl std::error::Error for NcError {}

impl From<io::Error> for NcError {
    fn from(e: io::Error) -> Self {
        NcError::Io(e)
    }
}

/// Hard cap on any length field, to fail fast on corrupt files rather than
/// attempting enormous allocations.
const MAX_LEN: u64 = 1 << 34; // 16 GiB of elements

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, NcError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, NcError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> Result<String, NcError> {
    let len = read_u32(r)? as u64;
    if len > MAX_LEN {
        return Err(NcError::Corrupt(format!("string length {len}")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| NcError::Corrupt("non-utf8 string".into()))
}

/// Serialize a dataset.
pub fn write_dataset(w: &mut impl Write, ds: &Dataset) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_str(w, &ds.name)?;
    w.write_all(&(ds.attributes.len() as u32).to_le_bytes())?;
    for (k, v) in &ds.attributes {
        write_str(w, k)?;
        write_str(w, v)?;
    }
    w.write_all(&(ds.axes.len() as u32).to_le_bytes())?;
    for axis in &ds.axes {
        write_str(w, &axis.name)?;
        write_str(w, &axis.units)?;
        w.write_all(&(axis.values.len() as u64).to_le_bytes())?;
        for &v in &axis.values {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.write_all(&(ds.variables.len() as u32).to_le_bytes())?;
    for var in &ds.variables {
        write_str(w, &var.name)?;
        write_str(w, &var.units)?;
        write_str(w, &var.long_name)?;
        w.write_all(&(var.dims.len() as u32).to_le_bytes())?;
        for &d in &var.dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        w.write_all(&(var.data.len() as u64).to_le_bytes())?;
        for &x in &var.data {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a dataset.
pub fn read_dataset(r: &mut impl Read) -> Result<Dataset, NcError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NcError::BadMagic(magic));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(NcError::UnsupportedVersion(version));
    }
    let mut ds = Dataset::new(read_str(r)?);
    let nattrs = read_u32(r)?;
    for _ in 0..nattrs {
        let k = read_str(r)?;
        let v = read_str(r)?;
        ds.set_attr(k, v);
    }
    let naxes = read_u32(r)?;
    for _ in 0..naxes {
        let name = read_str(r)?;
        let units = read_str(r)?;
        let n = read_u64(r)?;
        if n > MAX_LEN {
            return Err(NcError::Corrupt(format!("axis length {n}")));
        }
        let mut values = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            values.push(f64::from_le_bytes(b));
        }
        ds.add_axis(Axis::new(name, units, values));
    }
    let nvars = read_u32(r)?;
    for _ in 0..nvars {
        let name = read_str(r)?;
        let units = read_str(r)?;
        let long_name = read_str(r)?;
        let rank = read_u32(r)?;
        if rank > 16 {
            return Err(NcError::Corrupt(format!("rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank as usize);
        let mut expected = 1u64;
        for _ in 0..rank {
            let d = read_u32(r)? as usize;
            if d >= ds.axes.len() {
                return Err(NcError::Corrupt(format!("dim index {d}")));
            }
            expected = expected.saturating_mul(ds.axes[d].len() as u64);
            dims.push(d);
        }
        let n = read_u64(r)?;
        if n > MAX_LEN {
            return Err(NcError::Corrupt(format!("variable length {n}")));
        }
        if n != expected {
            return Err(NcError::Corrupt(format!(
                "variable {name}: data length {n} != shape product {expected}"
            )));
        }
        let mut data = Vec::with_capacity(n as usize);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        ds.variables.push(Variable {
            name,
            units,
            long_name,
            dims,
            data,
        });
    }
    Ok(ds)
}

/// Serialize to a byte vector.
pub fn to_bytes(ds: &Dataset) -> Vec<u8> {
    let mut v = Vec::new();
    write_dataset(&mut v, ds).expect("writing to Vec cannot fail");
    v
}

/// Deserialize from a byte slice.
pub fn from_bytes(bytes: &[u8]) -> Result<Dataset, NcError> {
    let mut cursor = bytes;
    read_dataset(&mut cursor)
}

/// Write a dataset to a file on disk.
pub fn save(path: &std::path::Path, ds: &Dataset) -> Result<(), NcError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_dataset(&mut w, ds)?;
    w.flush()?;
    Ok(())
}

/// Read a dataset from a file on disk.
pub fn load(path: &std::path::Path) -> Result<Dataset, NcError> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read_dataset(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new("pcm_b06.61");
        ds.set_attr("model", "PCM");
        ds.set_attr("experiment", "b06.61");
        ds.add_axis(Axis::time(2, 6.0));
        ds.add_axis(Axis::latitude(3));
        ds.add_axis(Axis::longitude(4));
        ds.add_variable(
            "tas",
            "K",
            "surface air temperature",
            &["time", "latitude", "longitude"],
            (0..24).map(|i| i as f32 * 0.5).collect(),
        )
        .unwrap();
        ds.add_variable(
            "zonal",
            "K",
            "zonal mean",
            &["time", "latitude"],
            (0..6).map(|i| i as f32).collect(),
        )
        .unwrap();
        ds
    }

    #[test]
    fn round_trip_bytes() {
        let ds = sample();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn round_trip_file() {
        let dir = std::env::temp_dir().join("esg-ncio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.esg");
        let ds = sample();
        save(&path, &ds).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(NcError::BadMagic(_))));
    }

    #[test]
    fn bad_version_detected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(NcError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&sample());
        for cut in [5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = Dataset::new("empty");
        assert_eq!(from_bytes(&to_bytes(&ds)).unwrap(), ds);
    }

    #[test]
    fn shape_mismatch_in_file_detected() {
        // Craft a file whose variable length disagrees with its dims by
        // corrupting the length field of the data section. Easiest: build
        // bytes and flip the variable's u64 length. Locate it by rebuilding
        // a minimal file manually.
        let mut ds = Dataset::new("d");
        ds.add_axis(Axis::latitude(2));
        ds.add_variable("v", "", "", &["latitude"], vec![1.0, 2.0])
            .unwrap();
        let mut bytes = to_bytes(&ds);
        // The final 2*4 data bytes are preceded by the u64 length field.
        let len_pos = bytes.len() - 8 - 8;
        bytes[len_pos] = 3;
        assert!(matches!(from_bytes(&bytes), Err(NcError::Corrupt(_))));
    }

    #[test]
    fn special_floats_preserved() {
        let mut ds = Dataset::new("nanny");
        ds.add_axis(Axis::latitude(4));
        ds.add_variable(
            "v",
            "",
            "",
            &["latitude"],
            vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0],
        )
        .unwrap();
        let back = from_bytes(&to_bytes(&ds)).unwrap();
        let v = back.variable("v").unwrap();
        assert!(v.data[0].is_nan());
        assert_eq!(v.data[1], f32::INFINITY);
        assert_eq!(v.data[2], f32::NEG_INFINITY);
        assert_eq!(v.data[3].to_bits(), (-0.0f32).to_bits());
    }
}
