//! A real GridFTP-style server over TCP (loopback-grade).
//!
//! This is the protocol engine running against actual sockets: GSI
//! authentication on the control channel, MODE E parallel data connections,
//! partial retrieval (ERET), restart markers, STOR with out-of-order block
//! placement, SIZE and SHA-256 checksums. The WAN experiments use the
//! simulator instead ([`crate::simxfer`]); this server exists so the
//! protocol logic is exercised end-to-end with real I/O and real threads —
//! and it is what the loopback integration tests drive.
//!
//! Fault injection: [`ServerConfig::fail_after_bytes`] makes the *first*
//! transfer's data connections die after roughly that many payload bytes,
//! reproducing the mid-transfer failures of Figure 8 so client restart
//! logic can be tested for real.

use crate::auth_wire;
use crate::eblock::{self, BlockHeader};
use crate::protocol::{feature_list, Command, ParseError, Reply};
use crate::ranges::RangeSet;

use esg_gsi::{CertificateAuthority, Credential, Handshake};

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Data-connection block payload size.
pub const BLOCK_SIZE: u64 = 64 * 1024;

/// Server configuration.
pub struct ServerConfig {
    /// Directory served; all paths resolve beneath it.
    pub root: PathBuf,
    /// Accept `USER anonymous` without GSI.
    pub allow_anonymous: bool,
    /// Server credential + trust anchor for `AUTH GSSAPI`.
    pub gsi: Option<(Arc<Credential>, Arc<CertificateAuthority>)>,
    /// Fault injection: first transfer aborts its data connections after
    /// this many payload bytes.
    pub fail_after_bytes: Option<u64>,
}

impl ServerConfig {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            root: root.into(),
            allow_anonymous: true,
            gsi: None,
            fail_after_bytes: None,
        }
    }
}

/// A running server; dropped or `stop()`ped to shut down.
pub struct GridFtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl GridFtpServer {
    /// Bind 127.0.0.1 on an ephemeral port and start serving.
    pub fn start(config: ServerConfig) -> std::io::Result<GridFtpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SharedState {
            config,
            fault_budget: AtomicU64::new(u64::MAX),
            fault_armed: AtomicBool::new(false),
        });
        if let Some(n) = shared.config.fail_after_bytes {
            shared.fault_budget.store(n, Ordering::SeqCst);
            shared.fault_armed.store(true, Ordering::SeqCst);
        }
        let sd = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut sessions = Vec::new();
            while !sd.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = shared.clone();
                        sessions.push(std::thread::spawn(move || {
                            let _ = Session::new(shared, stream).run();
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for s in sessions {
                let _ = s.join();
            }
        });
        Ok(GridFtpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and wind down.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GridFtpServer {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

struct SharedState {
    config: ServerConfig,
    /// Remaining bytes before injected failure (u64::MAX = disarmed).
    fault_budget: AtomicU64,
    fault_armed: AtomicBool,
}

impl SharedState {
    /// Consume fault budget; true if the connection should now die.
    fn should_fail(&self, bytes: u64) -> bool {
        if !self.fault_armed.load(Ordering::SeqCst) {
            return false;
        }
        let prev = self
            .fault_budget
            .fetch_sub(bytes.min(1 << 40), Ordering::SeqCst);
        if prev <= bytes || prev > (1 << 60) {
            // Budget exhausted (or wrapped): fire once, then disarm so the
            // retry succeeds.
            self.fault_armed.store(false, Ordering::SeqCst);
            return prev <= bytes;
        }
        false
    }
}

enum AuthState {
    NotAuthenticated,
    AwaitingAdat(Box<Handshake>),
    AwaitingProof {
        keys: esg_gsi::SessionKeys,
        handshake: Box<Handshake>,
    },
    /// Logged in; holds the authenticated identity (for audit logging).
    Authenticated(#[allow(dead_code)] String),
}

struct Session {
    shared: Arc<SharedState>,
    ctrl: TcpStream,
    auth: AuthState,
    parallelism: u32,
    restart: Option<RangeSet>,
    data_listener: Option<TcpListener>,
    /// Active-mode peers (PORT/SPOR): used for third-party transfers,
    /// where the remote "client" is actually another server's PASV (or
    /// striped-passive) data ports. Multiple addresses = striped port.
    active_addrs: Vec<std::net::SocketAddrV4>,
    mode: char,
}

type Ranges = Vec<(u64, u64)>;

impl Session {
    fn new(shared: Arc<SharedState>, ctrl: TcpStream) -> Session {
        Session {
            shared,
            ctrl,
            auth: AuthState::NotAuthenticated,
            parallelism: 1,
            restart: None,
            data_listener: None,
            active_addrs: Vec::new(),
            mode: 'S',
        }
    }

    fn send(&mut self, reply: Reply) -> std::io::Result<()> {
        self.ctrl.write_all(reply.to_wire().as_bytes())
    }

    fn authenticated(&self) -> bool {
        matches!(self.auth, AuthState::Authenticated(_))
    }

    fn run(mut self) -> std::io::Result<()> {
        self.send(Reply::new(220, "ESG GridFTP server ready"))?;
        let reader = self.ctrl.try_clone()?;
        let mut reader = BufReader::new(reader);
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok(()); // client hung up
            }
            let cmd = match Command::parse(&line) {
                Ok(c) => c,
                Err(ParseError::UnknownCommand(c)) => {
                    self.send(Reply::new(500, format!("Unknown command {c}")))?;
                    continue;
                }
                Err(ParseError::BadArguments(c)) => {
                    self.send(Reply::new(501, format!("Bad arguments: {c}")))?;
                    continue;
                }
            };
            if self.handle(cmd)? {
                return Ok(());
            }
        }
    }

    /// Returns true when the session should close.
    fn handle(&mut self, cmd: Command) -> std::io::Result<bool> {
        match cmd {
            Command::Quit => {
                self.send(Reply::new(221, "Goodbye"))?;
                return Ok(true);
            }
            Command::Noop => self.send(Reply::new(200, "NOOP ok"))?,
            Command::Feat => self.send(Reply::multiline(211, feature_list()))?,
            Command::User(u) => {
                if self.shared.config.allow_anonymous && u == "anonymous" {
                    self.send(Reply::new(331, "Send PASS"))?;
                } else {
                    self.send(Reply::new(530, "Only anonymous or GSI"))?;
                }
            }
            Command::Pass(_) => {
                if self.shared.config.allow_anonymous {
                    self.auth = AuthState::Authenticated("anonymous".to_string());
                    self.send(Reply::new(230, "User logged in"))?;
                } else {
                    self.send(Reply::new(530, "Anonymous access disabled"))?;
                }
            }
            Command::AuthGssapi => match &self.shared.config.gsi {
                Some((cred, _)) => {
                    let hs = Handshake::new(cred, b"server-session");
                    self.auth = AuthState::AwaitingAdat(Box::new(hs));
                    self.send(Reply::new(334, "ADAT must follow"))?;
                }
                None => self.send(Reply::new(431, "GSI not configured"))?,
            },
            Command::Adat(token) => return self.handle_adat(&token).map(|_| false),
            Command::Type(_) => self.send(Reply::new(200, "Type set"))?,
            Command::Mode(m) => {
                self.mode = m;
                self.send(Reply::new(200, format!("Mode set to {m}")))?;
            }
            Command::Sbuf(n) => {
                // Applied to subsequently-created data sockets (best effort;
                // loopback ignores it, WAN experiments live in the sim).
                self.send(Reply::new(200, format!("SBUF {n} accepted")))?;
            }
            Command::OptsRetrParallelism(n) => {
                self.parallelism = n.clamp(1, 64);
                self.send(Reply::new(
                    200,
                    format!("Parallelism set to {}", self.parallelism),
                ))?;
            }
            Command::Rest(marker) => {
                self.restart = Some(marker);
                self.send(Reply::new(350, "Restart marker accepted"))?;
            }
            Command::Pasv | Command::Spas => {
                if !self.authenticated() {
                    self.send(Reply::new(530, "Not logged in"))?;
                    return Ok(false);
                }
                let listener = TcpListener::bind("127.0.0.1:0")?;
                let addr = listener.local_addr()?;
                self.data_listener = Some(listener);
                let port = addr.port();
                let reply = if matches!(cmd_kind(&cmd), 's') {
                    // SPAS: multiline 229 (we expose one endpoint; striping
                    // across hosts is a simulator-level experiment).
                    Reply::multiline(
                        229,
                        vec![
                            "Entering Striped Passive Mode".to_string(),
                            format!(" 127,0,0,1,{},{}", port >> 8, port & 0xff),
                            "End".to_string(),
                        ],
                    )
                } else {
                    Reply::new(
                        227,
                        format!(
                            "Entering Passive Mode (127,0,0,1,{},{})",
                            port >> 8,
                            port & 0xff
                        ),
                    )
                };
                self.send(reply)?;
            }
            Command::Port(addr) => {
                if !self.authenticated() {
                    self.send(Reply::new(530, "Not logged in"))?;
                    return Ok(false);
                }
                self.active_addrs = vec![addr];
                self.data_listener = None;
                self.send(Reply::new(200, "PORT command successful"))?;
            }
            Command::Spor(addrs) => {
                if !self.authenticated() {
                    self.send(Reply::new(530, "Not logged in"))?;
                    return Ok(false);
                }
                self.active_addrs = addrs;
                self.data_listener = None;
                self.send(Reply::new(200, "SPOR command successful"))?;
            }
            Command::Size(path) => match self.resolve(&path) {
                Ok(p) => match std::fs::metadata(&p) {
                    Ok(md) if md.is_file() => {
                        self.send(Reply::new(213, format!("{}", md.len())))?
                    }
                    _ => self.send(Reply::new(550, "No such file"))?,
                },
                Err(r) => self.send(r)?,
            },
            Command::Cksm {
                offset,
                length,
                path,
            } => match self.checksum(&path, offset, length) {
                Ok(hex) => self.send(Reply::new(213, hex))?,
                Err(r) => self.send(r)?,
            },
            Command::Retr(path) => self.do_retr(&path, None)?,
            Command::EretPartial {
                offset,
                length,
                path,
            } => self.do_retr(&path, Some((offset, length)))?,
            Command::EretSubset {
                variable,
                t0,
                t1,
                path,
            } => self.do_eret_subset(&path, &variable, t0, t1)?,
            Command::Stor(path) => self.do_stor(&path, 0)?,
            Command::EstoAdjusted { offset, path } => self.do_stor(&path, offset)?,
        }
        Ok(false)
    }

    fn handle_adat(&mut self, token: &str) -> std::io::Result<()> {
        let Some((_, ca)) = &self.shared.config.gsi else {
            return self.send(Reply::new(431, "GSI not configured"));
        };
        let ca = ca.clone();
        let Some(bytes) = auth_wire::hex_decode(token) else {
            return self.send(Reply::new(501, "Bad ADAT token"));
        };
        let state = std::mem::replace(&mut self.auth, AuthState::NotAuthenticated);
        match state {
            AuthState::AwaitingAdat(mut hs) => {
                let Some(client_hello) = auth_wire::decode_hello(&bytes) else {
                    return self.send(Reply::new(535, "Malformed hello"));
                };
                let server_hello = hs.hello(b"server-nonce");
                match hs.receive_hello(&client_hello, &ca, 0, &|_| None) {
                    Ok((identity, keys, proof)) => {
                        // Reply: our hello + our proof, hex in one token.
                        let mut payload = Vec::new();
                        let hello_bytes = auth_wire::encode_hello(&server_hello);
                        payload.extend_from_slice(&(hello_bytes.len() as u32).to_be_bytes());
                        payload.extend_from_slice(&hello_bytes);
                        payload.extend_from_slice(&auth_wire::encode_proof(&proof));
                        self.auth = AuthState::AwaitingProof {
                            keys,
                            handshake: hs,
                        };
                        let _ = identity;
                        self.send(Reply::new(
                            335,
                            format!("ADAT={}", auth_wire::hex_encode(&payload)),
                        ))
                    }
                    Err(e) => self.send(Reply::new(535, format!("Authentication failed: {e}"))),
                }
            }
            AuthState::AwaitingProof { keys, handshake } => {
                let Some(proof) = auth_wire::decode_proof(&bytes) else {
                    return self.send(Reply::new(535, "Malformed proof"));
                };
                match handshake.verify_proof(&keys, &proof) {
                    Ok(()) => {
                        self.auth = AuthState::Authenticated("gsi".to_string());
                        self.send(Reply::new(235, "GSSAPI authentication succeeded"))
                    }
                    Err(e) => self.send(Reply::new(535, format!("Bad proof: {e}"))),
                }
            }
            other => {
                self.auth = other;
                self.send(Reply::new(503, "ADAT out of sequence"))
            }
        }
    }

    fn resolve(&self, path: &str) -> Result<PathBuf, Reply> {
        let rel = Path::new(path.trim_start_matches('/'));
        for comp in rel.components() {
            match comp {
                std::path::Component::Normal(_) => {}
                _ => return Err(Reply::new(550, "Illegal path")),
            }
        }
        Ok(self.shared.config.root.join(rel))
    }

    fn checksum(&self, path: &str, offset: u64, length: u64) -> Result<String, Reply> {
        let p = self.resolve(path)?;
        let data = std::fs::read(&p).map_err(|_| Reply::new(550, "No such file"))?;
        let start = (offset as usize).min(data.len());
        let end = if length == 0 {
            data.len()
        } else {
            (start + length as usize).min(data.len())
        };
        Ok(esg_gsi::hex(&esg_gsi::sha256(&data[start..end])))
    }

    /// Establish `n` data connections: accept from the PASV listener, or
    /// (active mode / third-party) connect out to the PORT address.
    fn accept_data(&mut self, n: usize) -> std::io::Result<Vec<TcpStream>> {
        if !self.active_addrs.is_empty() {
            // Third-party: this server dials the other server's data
            // port(s), round-robin across striped endpoints.
            let addrs = std::mem::take(&mut self.active_addrs);
            let mut conns = Vec::with_capacity(n);
            for i in 0..n {
                conns.push(TcpStream::connect(addrs[i % addrs.len()])?);
            }
            return Ok(conns);
        }
        let listener = self
            .data_listener
            .take()
            .ok_or_else(|| std::io::Error::other("no PASV listener"))?;
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut conns = Vec::with_capacity(n);
        while conns.len() < n {
            match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    conns.push(s);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "data connections not established",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(conns)
    }

    fn do_retr(&mut self, path: &str, partial: Option<(u64, u64)>) -> std::io::Result<()> {
        if !self.authenticated() {
            return self.send(Reply::new(530, "Not logged in"));
        }
        if self.mode != 'E' {
            return self.send(Reply::new(504, "RETR requires MODE E"));
        }
        let resolved = match self.resolve(path) {
            Ok(p) => p,
            Err(r) => return self.send(r),
        };
        let size = match std::fs::metadata(&resolved) {
            Ok(md) if md.is_file() => md.len(),
            _ => return self.send(Reply::new(550, "No such file")),
        };

        // Which ranges to send.
        let ranges: Ranges = match partial {
            Some((offset, length)) => {
                if offset >= size {
                    vec![]
                } else {
                    vec![(offset, (offset + length).min(size))]
                }
            }
            None => match self.restart.take() {
                Some(marker) => marker.gaps(size),
                None => vec![(0, size)],
            },
        };
        let total: u64 = ranges.iter().map(|&(s, e)| e - s).sum();

        self.send(Reply::new(
            150,
            format!("Opening BINARY mode data connection for {path} ({total} bytes)"),
        ))?;

        let streams = self.parallelism as usize;
        let conns = match self.accept_data(streams) {
            Ok(c) => c,
            Err(_) => return self.send(Reply::new(425, "Can't open data connection")),
        };

        // Build per-stream block lists round-robin over all ranges.
        let mut per_stream: Vec<Vec<(u64, u64)>> = vec![Vec::new(); streams];
        let mut s = 0;
        for &(start, end) in &ranges {
            let mut off = start;
            while off < end {
                let len = BLOCK_SIZE.min(end - off);
                per_stream[s].push((off, len));
                off += len;
                s = (s + 1) % streams;
            }
        }

        let shared = self.shared.clone();
        let mut handles = Vec::new();
        for (conn, blocks) in conns.into_iter().zip(per_stream) {
            let file_path = resolved.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                send_blocks(conn, &file_path, &blocks, &shared)
            }));
        }
        let mut ok = true;
        for h in handles {
            ok &= h.join().map(|r| r.is_ok()).unwrap_or(false);
        }
        if ok {
            self.send(Reply::new(226, "Transfer complete"))
        } else {
            self.send(Reply::new(426, "Connection closed; transfer aborted"))
        }
    }

    fn do_stor(&mut self, path: &str, base_offset: u64) -> std::io::Result<()> {
        if !self.authenticated() {
            return self.send(Reply::new(530, "Not logged in"));
        }
        if self.mode != 'E' {
            return self.send(Reply::new(504, "STOR requires MODE E"));
        }
        let resolved = match self.resolve(path) {
            Ok(p) => p,
            Err(r) => return self.send(r),
        };
        if let Some(parent) = resolved.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let file = match std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&resolved)
        {
            Ok(f) => Arc::new(f),
            Err(_) => return self.send(Reply::new(550, "Cannot create file")),
        };
        self.send(Reply::new(150, format!("Ready to receive {path}")))?;
        let streams = self.parallelism as usize;
        let conns = match self.accept_data(streams) {
            Ok(c) => c,
            Err(_) => return self.send(Reply::new(425, "Can't open data connection")),
        };
        let mut handles = Vec::new();
        for conn in conns {
            let file = file.clone();
            handles.push(std::thread::spawn(move || {
                receive_blocks(conn, &file, base_offset)
            }));
        }
        let mut ok = true;
        for h in handles {
            ok &= h.join().map(|r| r.is_ok()).unwrap_or(false);
        }
        if ok {
            self.send(Reply::new(226, "Transfer complete"))
        } else {
            self.send(Reply::new(426, "Connection closed; transfer aborted"))
        }
    }
}

impl Session {
    /// Server-side processing (`ERET X`): open the ESG1 dataset, extract
    /// the requested variable over time steps `[t0, t1)`, and send only
    /// the serialized subset. The paper's §6.1 "server side processing"
    /// hook, instantiated with the extraction/subsetting operation ESG-II
    /// planned ("at least extraction and subsetting, similar to those
    /// available with DODS ... performed local to the data").
    fn do_eret_subset(
        &mut self,
        path: &str,
        variable: &str,
        t0: usize,
        t1: usize,
    ) -> std::io::Result<()> {
        if !self.authenticated() {
            return self.send(Reply::new(530, "Not logged in"));
        }
        if self.mode != 'E' {
            return self.send(Reply::new(504, "ERET requires MODE E"));
        }
        let resolved = match self.resolve(path) {
            Ok(p) => p,
            Err(r) => return self.send(r),
        };
        let ds = match esg_cdms::load(&resolved) {
            Ok(ds) => ds,
            Err(_) => return self.send(Reply::new(550, "Not a readable ESG1 dataset")),
        };
        let subset_bytes = match subset_dataset(&ds, variable, t0, t1) {
            Ok(b) => b,
            Err(msg) => return self.send(Reply::new(501, msg)),
        };
        self.send(Reply::new(
            150,
            format!(
                "Opening BINARY mode data connection for {path} subset ({} bytes)",
                subset_bytes.len()
            ),
        ))?;
        let streams = self.parallelism as usize;
        let conns = match self.accept_data(streams) {
            Ok(c) => c,
            Err(_) => return self.send(Reply::new(425, "Can't open data connection")),
        };
        let assignments =
            crate::eblock::round_robin_blocks(0, subset_bytes.len() as u64, BLOCK_SIZE, streams);
        let payload = Arc::new(subset_bytes);
        let mut handles = Vec::new();
        for (conn, blocks) in conns.into_iter().zip(assignments) {
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || -> std::io::Result<()> {
                let mut conn = conn;
                for (off, len) in blocks {
                    let b = &payload[off as usize..(off + len) as usize];
                    eblock::write_block(&mut conn, off, b)?;
                }
                eblock::write_trailer(&mut conn, BlockHeader::eod())?;
                conn.flush()
            }));
        }
        let mut ok = true;
        for h in handles {
            ok &= h.join().map(|r| r.is_ok()).unwrap_or(false);
        }
        if ok {
            self.send(Reply::new(226, "Transfer complete"))
        } else {
            self.send(Reply::new(426, "Connection closed; transfer aborted"))
        }
    }
}

/// Extract `[t0, t1)` of one variable as a serialized single-variable
/// dataset.
fn subset_dataset(
    ds: &esg_cdms::Dataset,
    variable: &str,
    t0: usize,
    t1: usize,
) -> Result<Vec<u8>, String> {
    let var = ds
        .variable(variable)
        .map_err(|e| format!("bad variable: {e}"))?;
    if var.dims.is_empty() {
        return Err("variable has no dimensions".into());
    }
    let shape = ds.shape_of(var);
    if t0 >= t1 || t1 > shape[0] {
        return Err(format!("bad time range {t0}..{t1} for length {}", shape[0]));
    }
    let slab = esg_cdms::Hyperslab::all(ds, var).narrow(0, t0, t1 - t0);
    let sub = esg_cdms::extract_dataset(ds, variable, &slab)
        .map_err(|e| format!("extract failed: {e}"))?;
    Ok(esg_cdms::to_bytes(&sub))
}

fn cmd_kind(cmd: &Command) -> char {
    match cmd {
        Command::Spas => 's',
        _ => 'p',
    }
}

fn send_blocks(
    mut conn: TcpStream,
    path: &Path,
    blocks: &[(u64, u64)],
    shared: &SharedState,
) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    let file = std::fs::File::open(path)?;
    let mut buf = vec![0u8; BLOCK_SIZE as usize];
    for &(offset, len) in blocks {
        let b = &mut buf[..len as usize];
        file.read_exact_at(b, offset)?;
        if shared.should_fail(len) {
            // Injected fault: die mid-transfer without EOD.
            conn.shutdown(std::net::Shutdown::Both).ok();
            return Err(std::io::Error::other("injected failure"));
        }
        eblock::write_block(&mut conn, offset, b)?;
    }
    eblock::write_trailer(&mut conn, BlockHeader::eod())?;
    conn.flush()
}

fn receive_blocks(
    mut conn: TcpStream,
    file: &std::fs::File,
    base_offset: u64,
) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    loop {
        let (header, payload) = eblock::read_block(&mut conn, BLOCK_SIZE * 4)?;
        if !payload.is_empty() {
            file.write_all_at(&payload, base_offset + header.offset)?;
        }
        if header.is_eod() {
            return Ok(());
        }
    }
}
