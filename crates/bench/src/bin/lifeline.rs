//! A13: causal tracing and Figure-8 lifeline analysis.
//!
//! `cargo run --release -p esg-bench --bin lifeline [seed] [requests] [out.json]`
//!
//! Replays the A12 mixed hot/cold workload (sixteen replicated disk files
//! plus two tape-only files per request, scheduler on) with the request
//! manager's causal tracing enabled, exports the NetLogger ULM trace, and
//! reconstructs every file's lifeline offline — exactly the path the
//! paper's Figure 8 took from instrumented GridFTP runs to per-phase
//! lifeline plots.
//!
//! Asserts (exits non-zero on violation):
//!   * the ULM trace survives export -> parse -> export byte-identically;
//!   * every delivered file reconstructs to a complete span tree whose
//!     phase durations tile the file's makespan exactly (float residue
//!     <= 1e-6 s);
//!   * transfer spans account for 100% of delivered bytes (banked restart
//!     deltas telescope to the file size);
//!   * every request yields a critical path.
//!
//! Writes `BENCH_lifeline.json` (committed baseline) with the aggregate
//! phase breakdown, per-request critical paths, stall report and the
//! unified metrics snapshot; the raw trace lands next to it as
//! `BENCH_lifeline_trace.ulm` for CI artifact upload.

use esg_core::esg_testbed;
use esg_netlogger::{LifelineSet, NetLog};
use esg_reqman::submit_request;
use esg_simnet::{SimDuration, SimTime};
use esg_storage::{Hrm, TapeParams};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const DISK_DS: &str = "pcm_life.disk";
const TAPE_DS: &str = "pcm_life.tape";
const DISK_STEPS: usize = 96;
const DISK_SPF: usize = 4;
const DISK_BPS: u64 = 10_000_000;
const TAPE_STEPS: usize = 16;
const TAPE_SPF: usize = 2;
const TAPE_BPS: u64 = 15_000_000;
const MIN_RATE: f64 = 2.6e6;
/// Stall detector threshold: generous enough that healthy transfers pass,
/// tight enough to flag tape-stage queueing.
const STALL_S: f64 = 120.0;

fn sha_hex(s: &str) -> String {
    esg_gsi::sha256(s.as_bytes())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(23);
    let n_requests: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let out_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_lifeline.json".into());
    let trace_path = out_path.replace(".json", "_trace.ulm");

    println!(
        "== A13: lifeline reconstruction over {n_requests} mixed hot/cold requests \
         (seed {seed}) ==\n"
    );

    let mut tb = esg_testbed(seed);
    tb.sim.world.rm.min_rate = MIN_RATE;
    tb.sim.world.rm.grace = SimDuration::from_secs(6);
    tb.sim.world.rm.retry.base = SimDuration::from_secs(6);
    tb.sim.world.rm.add_hrm(
        "hpss.lbl.gov",
        Hrm::new(
            TapeParams {
                drives: 4,
                mount: SimDuration::from_secs(10),
                seek: SimDuration::from_secs(5),
                rate: 25e6,
            },
            1 << 38,
        ),
    );
    tb.publish_dataset(DISK_DS, DISK_STEPS, DISK_SPF, DISK_BPS, &[1, 2, 3]);
    tb.publish_dataset(TAPE_DS, TAPE_STEPS, TAPE_SPF, TAPE_BPS, &[0]);
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let disk_coll = tb.sim.world.metadata.collection_of(DISK_DS).unwrap();
    let tape_coll = tb.sim.world.metadata.collection_of(TAPE_DS).unwrap();
    let disk_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(DISK_DS)
        .unwrap()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let tape_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(TAPE_DS)
        .unwrap()
        .iter()
        .map(|f| f.name.clone())
        .collect();

    let client = tb.client;
    for r in 0..n_requests {
        let mut files: Vec<(String, String)> = (0..16)
            .map(|k| {
                let f = &disk_files[(r * 16 + k) % disk_files.len()];
                (disk_coll.clone(), f.clone())
            })
            .collect();
        for k in 0..2 {
            let f = &tape_files[(r * 2 + k) % tape_files.len()];
            files.push((tape_coll.clone(), f.clone()));
        }
        let at = SimTime::from_secs(100 + 2 * r as u64);
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }
    tb.sim.run_until(SimTime::from_secs(3600));

    let outcomes = &tb.sim.world.outcomes;
    let mut failed = false;
    if outcomes.len() != n_requests {
        eprintln!(
            "BENCH FAILED: {} of {n_requests} requests finished by the horizon",
            outcomes.len()
        );
        std::process::exit(1);
    }

    // -- ULM round-trip: export -> parse -> export must be byte-identical. --
    let ulm = tb.sim.world.rm.log.to_ulm();
    let parsed = match NetLog::from_ulm(&ulm) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("BENCH FAILED: trace does not parse back: {e}");
            std::process::exit(1);
        }
    };
    if parsed.to_ulm() != ulm {
        eprintln!("BENCH FAILED: ULM round-trip is not byte-identical");
        failed = true;
    }

    // -- Lifeline reconstruction from the *parsed* trace. -------------------
    let set = LifelineSet::from_log(&parsed);
    if !set.orphans.is_empty() {
        eprintln!(
            "BENCH FAILED: {} orphan spans in the trace",
            set.orphans.len()
        );
        failed = true;
    }
    let mut max_gap = 0.0f64;
    let mut delivered_bytes = 0u64;
    let mut span_bytes = 0u64;
    let mut n_files = 0usize;
    for o in outcomes {
        for f in &o.files {
            if !f.done {
                eprintln!("BENCH FAILED: {}/{} did not deliver", o.id, f.name);
                failed = true;
                continue;
            }
            n_files += 1;
            delivered_bytes += f.size;
            let Some(l) = set.lifeline(o.id, &f.name) else {
                eprintln!("BENCH FAILED: no lifeline for {}/{}", o.id, f.name);
                failed = true;
                continue;
            };
            if !l.is_complete() {
                eprintln!(
                    "BENCH FAILED: lifeline {}/{} is not a complete tiling",
                    o.id, f.name
                );
                failed = true;
            }
            let gap = l.tiling_gap_s().unwrap_or(f64::INFINITY);
            max_gap = max_gap.max(gap);
            if gap > 1e-6 {
                eprintln!(
                    "BENCH FAILED: {}/{} phase sum off makespan by {gap:.3e} s",
                    o.id, f.name
                );
                failed = true;
            }
            span_bytes += l.transfer_bytes();
            if l.transfer_bytes() != f.size {
                eprintln!(
                    "BENCH FAILED: {}/{} transfer spans cover {} of {} bytes",
                    o.id,
                    f.name,
                    l.transfer_bytes(),
                    f.size
                );
                failed = true;
            }
            if l.status() != Some("done") {
                eprintln!(
                    "BENCH FAILED: {}/{} closed with status {:?}",
                    o.id,
                    f.name,
                    l.status()
                );
                failed = true;
            }
        }
    }

    // -- Critical paths: one per request. -----------------------------------
    let cps = set.critical_paths();
    if cps.len() != n_requests {
        eprintln!(
            "BENCH FAILED: {} critical paths for {n_requests} requests",
            cps.len()
        );
        failed = true;
    }

    // -- Aggregate phase breakdown (the Figure-8 view). ---------------------
    let mut phase_totals: BTreeMap<&'static str, f64> = BTreeMap::new();
    for l in &set.lifelines {
        for (p, d) in l.phase_totals() {
            *phase_totals.entry(p).or_insert(0.0) += d;
        }
    }
    let stalls = set.detect_stalls(STALL_S);

    println!(
        "  {} lifelines reconstructed, {} complete, max tiling gap {:.1e} s",
        set.lifelines.len(),
        set.lifelines.iter().filter(|l| l.is_complete()).count(),
        max_gap
    );
    println!(
        "  transfer spans cover {span_bytes} of {delivered_bytes} delivered bytes \
         across {n_files} files"
    );
    println!("  aggregate phase breakdown (s):");
    for (p, d) in &phase_totals {
        println!("    {p:<10} {d:>10.1}");
    }
    println!("  critical paths:");
    for cp in &cps {
        let dominant = cp
            .breakdown
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(p, d)| format!("{p} {d:.1}s"))
            .unwrap_or_default();
        println!(
            "    request {:<2} gated by {:<22} makespan {:>7.1} s  (dominant: {dominant})",
            cp.request, cp.file, cp.makespan_s
        );
    }
    println!(
        "  stalls over {STALL_S:.0}s threshold: {} ({} still open at trace end)",
        stalls.len(),
        stalls.iter().filter(|s| s.open).count()
    );

    if failed {
        std::process::exit(1);
    }

    // -- Unified metrics snapshot: RM + allocator + GridFTP + integrity. ----
    let mut reg = tb.sim.world.rm.metrics.clone();
    reg.import_alloc(&tb.sim.net.alloc_stats());
    tb.sim.world.gridftp.export_metrics(&mut reg);
    tb.sim.world.rm.integrity.export_metrics(&mut reg);

    let trace_sha = sha_hex(&ulm);
    let mut json = String::new();
    write!(
        json,
        concat!(
            "{{\n  \"bench\": \"lifeline\",\n  \"seed\": {},\n  \"requests\": {},\n",
            "  \"files\": {},\n  \"lifelines\": {},\n  \"complete\": {},\n",
            "  \"orphans\": {},\n  \"max_tiling_gap_s\": {:.3e},\n",
            "  \"delivered_bytes\": {},\n  \"transfer_span_bytes\": {},\n",
            "  \"roundtrip_identical\": true,\n  \"stall_threshold_s\": {:.0},\n",
            "  \"stalls\": {},\n  \"trace_sha256\": \"{}\",\n"
        ),
        seed,
        n_requests,
        n_files,
        set.lifelines.len(),
        set.lifelines.iter().filter(|l| l.is_complete()).count(),
        set.orphans.len(),
        max_gap,
        delivered_bytes,
        span_bytes,
        STALL_S,
        stalls.len(),
        trace_sha,
    )
    .unwrap();
    json.push_str("  \"phase_totals_s\": {");
    for (i, (p, d)) in phase_totals.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        write!(json, "\"{p}\": {d:.3}").unwrap();
    }
    json.push_str("},\n  \"critical_paths\": [\n");
    for (i, cp) in cps.iter().enumerate() {
        writeln!(
            json,
            "    {{\"request\": {}, \"file\": \"{}\", \"makespan_s\": {:.3}}}{}",
            cp.request,
            cp.file,
            cp.makespan_s,
            if i + 1 < cps.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ],\n  \"metrics\": ");
    // to_json emits a compact object; indent it under the top level as-is.
    json.push_str(&reg.to_json());
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    std::fs::write(&trace_path, &ulm).expect("write ulm trace");
    println!("\n  trace sha256: {trace_sha}");
    println!("  wrote {out_path} and {trace_path}");
}
