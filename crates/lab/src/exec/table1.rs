//! Table 1 executor: the SC'00 striped wide-area transfer, migrated from
//! the one-off `table1` bench bin onto the lab harness. The simulation
//! (`esg_core::run_table1`) is deterministic for a given configuration —
//! the seed only labels the trial — so the gates pin the paper's shape
//! claims: peak(0.1 s) >= peak(5 s) >= sustained, aggregate under the
//! OC-48 ceiling, and the full 8 x 4 stream fan-out actually reached.

use super::TrialCtx;
use crate::journal::{AuxFile, MetricValue, TrialKey, TrialRecord};
use esg_core::{run_table1, Table1Config};
use esg_simnet::SimDuration;

fn num(v: f64) -> MetricValue {
    MetricValue::Num(v)
}

pub fn run(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let minutes = p.u64("minutes", 60);
    let file_bytes = p.u64("file_bytes", 2_000_000_000);
    let per_server = p.usize("max_concurrent_per_server", 4);

    let cfg = Table1Config {
        duration: SimDuration::from_mins(minutes),
        file_bytes,
        max_concurrent_per_server: per_server,
        ..Table1Config::default()
    };

    let wall = std::time::Instant::now();
    let r = run_table1(cfg);
    let wall = wall.elapsed();

    Ok(TrialRecord {
        key: TrialKey {
            variant: ctx.variant.clone(),
            seed: ctx.seed,
            rep: ctx.rep,
        },
        metrics: vec![
            ("minutes".into(), num(minutes as f64)),
            (
                "striped_servers_source".into(),
                num(r.striped_servers_source as f64),
            ),
            (
                "striped_servers_destination".into(),
                num(r.striped_servers_destination as f64),
            ),
            (
                "max_streams_per_server".into(),
                num(r.max_streams_per_server as f64),
            ),
            ("max_streams_total".into(), num(r.max_streams_total as f64)),
            (
                "peak_0_1s_gbps".into(),
                num((r.peak_0_1s_gbps * 1e4).round() / 1e4),
            ),
            (
                "peak_5s_gbps".into(),
                num((r.peak_5s_gbps * 1e4).round() / 1e4),
            ),
            (
                "sustained_gbps".into(),
                num((r.sustained_mbps * 10.0).round() / 1e4),
            ),
            (
                "sustained_mbps".into(),
                num((r.sustained_mbps * 10.0).round() / 10.0),
            ),
            (
                "total_gbytes".into(),
                num((r.total_gbytes * 10.0).round() / 10.0),
            ),
            (
                "transfers_completed".into(),
                num(r.transfers_completed as f64),
            ),
        ],
        timing: vec![("wall_ms".into(), wall.as_secs_f64() * 1e3)],
        fragment: None,
        aux: Vec::<AuxFile>::new(),
    })
}
