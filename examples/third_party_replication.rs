//! Third-party transfer and server-side subsetting over real sockets.
//!
//! Demonstrates two GridFTP features on the *real* TCP implementation:
//!
//! 1. **Third-party control** (§6.1): this process starts two GridFTP
//!    servers ("LLNL" and "NCAR"), then — acting as a controller that
//!    never touches the data path — replicates a climate file from one to
//!    the other, verifying by remote checksum.
//! 2. **Server-side processing** (§6.1 / ESG-II): asks the server to
//!    extract a time-range subset of one variable and ship only that,
//!    comparing bytes moved against a whole-file transfer.
//!
//! Run with: `cargo run --release --example third_party_replication`

use esg::cdms::SynthParams;
use esg::gridftp::server::{GridFtpServer, ServerConfig};
use esg::gridftp::{third_party_transfer, GridFtpClient, TransferOptions};

fn main() {
    // Two independent server roots = two "sites".
    let base = std::env::temp_dir().join(format!("esg-3pt-{}", std::process::id()));
    let llnl_root = base.join("llnl");
    let ncar_root = base.join("ncar");
    std::fs::create_dir_all(&llnl_root).unwrap();
    std::fs::create_dir_all(&ncar_root).unwrap();

    // Generate one month of model output as a real ESG1 file at "LLNL".
    let params = SynthParams {
        lat_points: 48,
        lon_points: 96,
        time_steps: 120,
        hours_per_step: 6.0,
        seed: 2001,
    };
    let chunks = esg::cdms::write_chunks(&llnl_root, "pcm_b06.61", params, 120).unwrap();
    let (_, path, size) = &chunks[0];
    let file = path.file_name().unwrap().to_str().unwrap().to_string();
    println!("published {file} at LLNL ({size} bytes of real ESG1 data)");

    let llnl = GridFtpServer::start(ServerConfig::new(&llnl_root)).unwrap();
    let ncar = GridFtpServer::start(ServerConfig::new(&ncar_root)).unwrap();
    println!("servers: llnl={}  ncar={}", llnl.addr(), ncar.addr());

    // --- third-party replication -----------------------------------------
    let mut src = GridFtpClient::connect(llnl.addr()).unwrap();
    src.login_anonymous().unwrap();
    let mut dst = GridFtpClient::connect(ncar.addr()).unwrap();
    dst.login_anonymous().unwrap();

    let t0 = std::time::Instant::now();
    third_party_transfer(&mut src, &mut dst, &file, &file, 4).unwrap();
    let elapsed = t0.elapsed();

    let src_sum = src.checksum(&file, 0, 0).unwrap();
    let dst_sum = dst.checksum(&file, 0, 0).unwrap();
    assert_eq!(src_sum, dst_sum, "replica must be byte-identical");
    println!(
        "\nthird-party replication: {size} bytes LLNL->NCAR in {elapsed:?} \
         (4 streams, controller untouched)"
    );
    println!("remote checksums agree: {}", &dst_sum[..16]);

    // --- server-side subsetting ------------------------------------------
    let t0 = std::time::Instant::now();
    let subset = dst
        .get_subset(&file, "tas", 40, 68, TransferOptions::default())
        .unwrap();
    let sub_elapsed = t0.elapsed();
    let ds = esg::cdms::from_bytes(&subset).unwrap();
    let v = ds.variable("tas").unwrap();
    println!(
        "\nserver-side subset (tas, steps 40..68): {} bytes in {sub_elapsed:?} \
         — {:.1}% of the file",
        subset.len(),
        subset.len() as f64 / *size as f64 * 100.0
    );
    println!("subset shape: {:?}", ds.shape_of(v));
    let stats = esg::cdms::stats(&ds, "tas").unwrap();
    println!(
        "analysis on the subset: min {:.1} K, max {:.1} K, mean {:.1} K",
        stats.min, stats.max, stats.mean
    );

    src.quit();
    dst.quit();
    std::fs::remove_dir_all(&base).ok();
    println!("\n(the ESG-II plan — 'extraction and subsetting ... performed local");
    println!(" to the data before it is transferred' — implemented and measured.)");
}
