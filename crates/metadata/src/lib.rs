//! # esg-metadata — the CDMS metadata catalog
//!
//! "A metadata catalog that is used to map specified attributes describing
//! the data into logical file names that identify which simulation data
//! set elements contain the data of interest" (§2). Figure 2 of the paper
//! shows the VCDAT selection screen this catalog powers: the user picks a
//! model, variable and time range; the catalog answers with logical file
//! names to hand to the request manager.
//!
//! Built on the LDAP substrate (`esg-directory`), exactly as CDMS's
//! catalog was ("Based on Lightweight Directory Access Protocol").

use esg_cdms::partition::{files_for_range, LogicalFile};
use esg_directory::{Directory, Dn, Entry, Filter, Scope};

/// A variable offered by a dataset, with the descriptive text Figure 2
/// displays next to each selection row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableInfo {
    pub name: String,
    pub units: String,
    pub description: String,
}

/// Everything needed to register a dataset.
#[derive(Debug, Clone)]
pub struct DatasetDescription {
    /// Dataset id, e.g. `pcm_b06.61`.
    pub name: String,
    /// Model name (PCM, CCSM, ...).
    pub model: String,
    /// Experiment / run id.
    pub experiment: String,
    pub institution: String,
    pub variables: Vec<VariableInfo>,
    /// Total time steps in the dataset.
    pub total_steps: usize,
    /// Steps per physical file (chunking).
    pub steps_per_file: usize,
    /// Serialized bytes per time step (all variables).
    pub bytes_per_step: u64,
    /// The replica-catalog logical collection holding the files.
    pub collection: String,
}

/// Errors from the metadata catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataError {
    NoSuchDataset(String),
    NoSuchVariable { dataset: String, variable: String },
    AlreadyRegistered(String),
    BadQuery(String),
}

impl std::fmt::Display for MetadataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetadataError::NoSuchDataset(d) => write!(f, "no such dataset: {d}"),
            MetadataError::NoSuchVariable { dataset, variable } => {
                write!(f, "dataset {dataset} has no variable {variable}")
            }
            MetadataError::AlreadyRegistered(d) => write!(f, "already registered: {d}"),
            MetadataError::BadQuery(q) => write!(f, "bad query: {q}"),
        }
    }
}

impl std::error::Error for MetadataError {}

fn mc_base() -> Dn {
    Dn::parse("mc=ESG Metadata Catalog, o=Grid").expect("static DN")
}

/// The metadata catalog.
#[derive(Debug, Default)]
pub struct MetadataCatalog {
    dir: Directory,
    /// Partition tables per dataset (kept structured; the directory holds
    /// the searchable attributes).
    partitions: std::collections::HashMap<String, Vec<LogicalFile>>,
}

impl MetadataCatalog {
    pub fn new() -> Self {
        let mut dir = Directory::new();
        dir.add_with_ancestors(Entry::new(mc_base()).with("objectclass", "CdmsCatalog"))
            .expect("fresh directory");
        MetadataCatalog {
            dir,
            partitions: Default::default(),
        }
    }

    fn dataset_dn(name: &str) -> Dn {
        mc_base().child("ds", name)
    }

    /// Register a dataset and compute its logical-file partition.
    pub fn register(&mut self, desc: &DatasetDescription) -> Result<(), MetadataError> {
        let dn = Self::dataset_dn(&desc.name);
        if self.dir.get(&dn).is_some() {
            return Err(MetadataError::AlreadyRegistered(desc.name.clone()));
        }
        let mut entry = Entry::new(dn.clone())
            .with("objectclass", "CdmsDataset")
            .with("model", desc.model.clone())
            .with("experiment", desc.experiment.clone())
            .with("institution", desc.institution.clone())
            .with("collection", desc.collection.clone())
            .with("timesteps", desc.total_steps.to_string());
        for v in &desc.variables {
            entry.add("variable", v.name.clone());
        }
        self.dir.add(entry).expect("parent exists");
        for v in &desc.variables {
            self.dir
                .add(
                    Entry::new(dn.child("var", &v.name))
                        .with("objectclass", "CdmsVariable")
                        .with("units", v.units.clone())
                        .with("description", v.description.clone()),
                )
                .expect("parent exists");
        }
        self.partitions.insert(
            desc.name.clone(),
            esg_cdms::partition_by_time(
                &desc.name,
                desc.total_steps,
                desc.steps_per_file,
                desc.bytes_per_step,
            ),
        );
        Ok(())
    }

    /// All dataset names.
    pub fn datasets(&self) -> Vec<String> {
        self.dir
            .search(
                &mc_base(),
                Scope::OneLevel,
                &Filter::eq("objectclass", "CdmsDataset"),
            )
            .into_iter()
            .map(|e| e.dn.leaf().unwrap().value.clone())
            .collect()
    }

    /// Dataset names matching an LDAP-style filter over dataset attributes
    /// (model, experiment, institution, variable, timesteps).
    pub fn search(&self, filter: &str) -> Result<Vec<String>, MetadataError> {
        let f = Filter::parse(filter).map_err(|e| MetadataError::BadQuery(e.to_string()))?;
        Ok(self
            .dir
            .search(&mc_base(), Scope::OneLevel, &f)
            .into_iter()
            .filter(|e| e.values("objectclass").iter().any(|c| c == "CdmsDataset"))
            .map(|e| e.dn.leaf().unwrap().value.clone())
            .collect())
    }

    /// The variables of a dataset with their descriptions (the Figure 2
    /// listing).
    pub fn variables(&self, dataset: &str) -> Result<Vec<VariableInfo>, MetadataError> {
        let dn = Self::dataset_dn(dataset);
        if self.dir.get(&dn).is_none() {
            return Err(MetadataError::NoSuchDataset(dataset.to_string()));
        }
        Ok(self
            .dir
            .search(
                &dn,
                Scope::OneLevel,
                &Filter::eq("objectclass", "CdmsVariable"),
            )
            .into_iter()
            .map(|e| VariableInfo {
                name: e.dn.leaf().unwrap().value.clone(),
                units: e.first("units").unwrap_or("").to_string(),
                description: e.first("description").unwrap_or("").to_string(),
            })
            .collect())
    }

    /// The replica-catalog collection holding a dataset's files.
    pub fn collection_of(&self, dataset: &str) -> Result<String, MetadataError> {
        self.dir
            .get(&Self::dataset_dn(dataset))
            .and_then(|e| e.first("collection").map(|s| s.to_string()))
            .ok_or_else(|| MetadataError::NoSuchDataset(dataset.to_string()))
    }

    /// The core mapping of §3: (dataset, variable, time range in steps) →
    /// logical file names. "A CDAT client ... contains the logic to query
    /// the metadata catalog and translate a dataset name, variable name,
    /// and spatiotemporal region into the logical file names stored in the
    /// replica catalog."
    pub fn resolve(
        &self,
        dataset: &str,
        variable: &str,
        step_range: (usize, usize),
    ) -> Result<Vec<LogicalFile>, MetadataError> {
        let dn = Self::dataset_dn(dataset);
        let entry = self
            .dir
            .get(&dn)
            .ok_or_else(|| MetadataError::NoSuchDataset(dataset.to_string()))?;
        if !entry.values("variable").iter().any(|v| v == variable) {
            return Err(MetadataError::NoSuchVariable {
                dataset: dataset.to_string(),
                variable: variable.to_string(),
            });
        }
        let files = self
            .partitions
            .get(dataset)
            .ok_or_else(|| MetadataError::NoSuchDataset(dataset.to_string()))?;
        Ok(files_for_range(files, step_range.0, step_range.1)
            .into_iter()
            .cloned()
            .collect())
    }

    /// Every logical file of a dataset.
    pub fn all_files(&self, dataset: &str) -> Result<&[LogicalFile], MetadataError> {
        self.partitions
            .get(dataset)
            .map(|v| v.as_slice())
            .ok_or_else(|| MetadataError::NoSuchDataset(dataset.to_string()))
    }
}

/// A convenient standard description for synthetic PCM-like output.
pub fn synthetic_description(
    name: &str,
    total_steps: usize,
    steps_per_file: usize,
    bytes_per_step: u64,
) -> DatasetDescription {
    DatasetDescription {
        name: name.to_string(),
        model: "PCM".to_string(),
        experiment: "b06.61".to_string(),
        institution: "NCAR/LLNL (synthetic)".to_string(),
        variables: vec![
            VariableInfo {
                name: "tas".into(),
                units: "K".into(),
                description: "surface air temperature".into(),
            },
            VariableInfo {
                name: "pr".into(),
                units: "mm/day".into(),
                description: "precipitation rate".into(),
            },
            VariableInfo {
                name: "clt".into(),
                units: "1".into(),
                description: "cloud fraction".into(),
            },
        ],
        total_steps,
        steps_per_file,
        bytes_per_step,
        collection: format!("{name} collection"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> MetadataCatalog {
        let mut mc = MetadataCatalog::new();
        mc.register(&synthetic_description("pcm_b06.61", 120, 8, 1_000_000))
            .unwrap();
        let mut ccsm = synthetic_description("ccsm_run1", 64, 16, 2_000_000);
        ccsm.model = "CCSM".to_string();
        mc.register(&ccsm).unwrap();
        mc
    }

    #[test]
    fn register_and_list() {
        let mc = catalog();
        let mut ds = mc.datasets();
        ds.sort();
        assert_eq!(ds, vec!["ccsm_run1", "pcm_b06.61"]);
    }

    #[test]
    fn duplicate_rejected() {
        let mut mc = catalog();
        let err = mc
            .register(&synthetic_description("pcm_b06.61", 10, 2, 1))
            .unwrap_err();
        assert!(matches!(err, MetadataError::AlreadyRegistered(_)));
    }

    #[test]
    fn attribute_search() {
        let mc = catalog();
        assert_eq!(mc.search("(model=PCM)").unwrap(), vec!["pcm_b06.61"]);
        assert_eq!(
            mc.search("(&(variable=tas)(timesteps>=100))").unwrap(),
            vec!["pcm_b06.61"]
        );
        assert_eq!(mc.search("(model=ECHAM)").unwrap(), Vec::<String>::new());
        assert!(mc.search("not a filter").is_err());
    }

    #[test]
    fn variables_listed_with_descriptions() {
        let mc = catalog();
        let vars = mc.variables("pcm_b06.61").unwrap();
        assert_eq!(vars.len(), 3);
        let tas = vars.iter().find(|v| v.name == "tas").unwrap();
        assert_eq!(tas.units, "K");
        assert!(tas.description.contains("temperature"));
        assert!(mc.variables("nope").is_err());
    }

    #[test]
    fn resolve_maps_time_range_to_files() {
        let mc = catalog();
        // Steps 10..30 over 8-step chunks → chunks [8,16), [16,24), [24,32).
        let files = mc.resolve("pcm_b06.61", "tas", (10, 30)).unwrap();
        assert_eq!(files.len(), 3);
        assert_eq!(files[0].start_step, 8);
        assert_eq!(files[2].end_step, 32);
        // Sizes derive from bytes_per_step.
        assert_eq!(files[0].size, 8_000_000);
    }

    #[test]
    fn resolve_validates_variable() {
        let mc = catalog();
        assert!(matches!(
            mc.resolve("pcm_b06.61", "salinity", (0, 10)),
            Err(MetadataError::NoSuchVariable { .. })
        ));
    }

    #[test]
    fn whole_dataset_files() {
        let mc = catalog();
        assert_eq!(mc.all_files("pcm_b06.61").unwrap().len(), 15);
        assert_eq!(mc.all_files("ccsm_run1").unwrap().len(), 4);
    }

    #[test]
    fn collection_mapping() {
        let mc = catalog();
        assert_eq!(
            mc.collection_of("pcm_b06.61").unwrap(),
            "pcm_b06.61 collection"
        );
    }
}
