//! Scenario executors: one module per scenario *kind*.
//!
//! An executor is the imperative half of a spec — it builds the
//! simulated world from the merged trial parameters, runs it, and
//! returns a `TrialRecord`. The migrated executors reproduce their
//! pre-migration bench bins operation-for-operation (same construction
//! order, same RNG streams, same event schedule), so the golden trace
//! pins and committed `BENCH_*.json` baselines carry over bit-for-bit —
//! `tests/lab_equivalence.rs` at the workspace root holds inline copies
//! of the old bin logic and asserts exactly that.

use crate::gate::Baseline;
use crate::journal::TrialRecord;
use crate::json::Json;
use crate::spec::{FaultSpec, Params, ScenarioSpec};
use esg_core::scenario::Site;
use esg_simnet::prelude::{Fault, FaultKind};
use esg_simnet::{SimDuration, SimTime};

pub mod campaign;
pub mod lifeline;
pub mod mixed;
pub mod pipeline;
pub mod rm_profile;
pub mod rm_scaling;
pub mod soak;
pub mod table1;
pub mod user_scaling;

/// One trial's resolved inputs: the spec, the merged (base + variant
/// override) parameters, and the matrix coordinates.
pub struct TrialCtx<'a> {
    pub spec: &'a ScenarioSpec,
    pub params: Params,
    pub variant: String,
    pub seed: u64,
    pub rep: u32,
}

/// Dispatch a trial to its kind's executor.
pub fn run_trial(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let mut record = match ctx.spec.kind.as_str() {
        "user_scaling" => user_scaling::run(ctx),
        "request_pipeline" => pipeline::run(ctx),
        "lifeline" => lifeline::run(ctx),
        "soak_faults" => soak::run_faults(ctx),
        "soak_corruption" => soak::run_corruption(ctx),
        "campaign_soak" => campaign::run(ctx),
        "rm_scaling" => rm_scaling::run(ctx),
        "rm_profile" => rm_profile::run(ctx),
        "table1" => table1::run(ctx),
        other => Err(format!("unknown scenario kind '{other}'")),
    }?;
    record.sort_metrics();
    Ok(record)
}

/// Assemble the committed `BENCH_*.json` artifact from the finished rows
/// (byte-format-identical to what the pre-migration bin wrote). Kinds
/// without an artifact return `None`.
pub fn assemble_artifact(spec: &ScenarioSpec, rows: &[TrialRecord]) -> Option<String> {
    match spec.kind.as_str() {
        "user_scaling" => user_scaling::assemble(spec, rows),
        "request_pipeline" => pipeline::assemble(spec, rows),
        "lifeline" => lifeline::assemble(rows),
        "campaign_soak" => campaign::assemble(spec, rows),
        "rm_scaling" => rm_scaling::assemble(spec, rows),
        "rm_profile" => rm_profile::assemble(spec, rows),
        _ => None,
    }
}

/// Extract per-variant baseline metrics from a committed artifact, for
/// `wall_regression` gates.
pub fn baseline_metrics(spec: &ScenarioSpec, artifact: &Json) -> Result<Baseline, String> {
    match spec.kind.as_str() {
        "user_scaling" => user_scaling::baseline(spec, artifact),
        "request_pipeline" => pipeline::baseline(artifact),
        "rm_scaling" => rm_scaling::baseline(spec, artifact),
        other => Err(format!("kind '{other}' has no baseline extractor")),
    }
}

/// Translate a spec-level declarative fault schedule into simnet faults
/// against a testbed's site list. Applied *in addition to* whatever
/// seeded faults the scenario kind generates itself.
pub fn spec_faults(faults: &[FaultSpec], sites: &[Site]) -> Result<Vec<Fault>, String> {
    let site_node = |i: usize| {
        sites.get(i).map(|s| s.node).ok_or(format!(
            "fault site {i} out of range ({} sites)",
            sites.len()
        ))
    };
    faults
        .iter()
        .map(|f| {
            Ok(match *f {
                FaultSpec::NodeDown { at_s, for_s, site } => Fault::new(
                    SimTime::from_secs(at_s),
                    SimDuration::from_secs(for_s),
                    FaultKind::NodeDown(site_node(site)?),
                ),
                FaultSpec::NameServiceDown { at_s, for_s } => Fault::new(
                    SimTime::from_secs(at_s),
                    SimDuration::from_secs(for_s),
                    FaultKind::NameServiceDown,
                ),
                FaultSpec::WireCorrupt { at_s, for_s, site } => Fault::new(
                    SimTime::from_secs(at_s),
                    SimDuration::from_secs(for_s),
                    FaultKind::WireCorrupt(site_node(site)?),
                ),
            })
        })
        .collect()
}
