//! # esg-gridftp — the GridFTP data transfer protocol
//!
//! "The data transfer facilities need to be secure, fast, and reliable"
//! (§6.1). This crate implements GridFTP's mechanisms twice over, sharing
//! one protocol layer:
//!
//! * **Protocol layer** — [`protocol`] (FTP commands + GridFTP extensions),
//!   [`eblock`] (extended block mode: 64-bit offsets, out-of-order parallel
//!   delivery), [`ranges`] (restart markers), [`url`] (`gsiftp://`),
//!   [`auth_wire`] (GSI tokens in ADAT commands).
//! * **Real transport** — [`server`] and [`client`]: a threaded TCP
//!   implementation with GSI login, MODE E parallel streams, ERET partial
//!   retrieval, restartable GET with hole-filling ([`client::ReliableClient`])
//!   and SHA-256 end-to-end verification. Driven by loopback integration
//!   tests and fault injection.
//! * **Simulated transport** — [`simxfer`]: the same transfer semantics
//!   expressed over the `esg-simnet` flow simulator (parallel streams,
//!   striping across hosts, slow-start + handshake costs, data-channel
//!   caching, stall detection and restart), used for every WAN-scale
//!   experiment in the paper.

pub mod auth_wire;
pub mod client;
pub mod eblock;
pub mod protocol;
pub mod ranges;
pub mod server;
pub mod simxfer;
pub mod url;
pub mod verify;

pub use client::{
    third_party_transfer, ClientError, GridFtpClient, ReliableClient, ReliableOutcome,
    TransferOptions,
};
pub use protocol::{Command, Reply};
pub use ranges::RangeSet;
pub use server::{GridFtpServer, ServerConfig};
pub use url::GridUrl;
pub use verify::{mismatched_blocks, repair_ranges};

pub use simxfer::{
    cancel_transfer, start_transfer, transfer_bytes, transfer_rate, transfer_stalled, GridFtpSim,
    HasGridFtp, TransferError, TransferHandle, TransferResult, TransferSpec,
};
