//! MDS information service publication.
//!
//! "NWS information is accessed by the MDS information service" (§5) — MDS
//! (the Globus Metacomputing Directory Service) is itself an LDAP
//! directory. This module publishes the registry's current forecasts into
//! an [`esg_directory::Directory`] under `ou=NWS, o=Grid`, one entry per
//! directed path, and reads them back.

use crate::registry::NwsRegistry;
use esg_directory::{Directory, Dn, Entry, Filter, Scope};
use esg_simnet::NodeId;

/// The DN under which NWS data is published.
pub fn nws_base() -> Dn {
    Dn::parse("ou=NWS, o=Grid").expect("static DN")
}

/// Publish (or refresh) every path forecast into the directory.
///
/// `node_name` maps node ids to host names for the entry attributes.
pub fn publish(
    registry: &NwsRegistry,
    pairs: &[(NodeId, NodeId)],
    node_name: &dyn Fn(NodeId) -> String,
    dir: &mut Directory,
) {
    let base = nws_base();
    if dir.get(&base).is_none() {
        dir.add_with_ancestors(Entry::new(base.clone()).with("objectclass", "MdsNwsRoot"))
            .expect("publishing base");
    }
    for &(src, dst) in pairs {
        let Some(bw) = registry.forecast_bandwidth(src, dst) else {
            continue;
        };
        let lat = registry.forecast_latency(src, dst).unwrap_or(0.0);
        let dn = base.child("pair", format!("{}->{}", node_name(src), node_name(dst)));
        let mut entry = Entry::new(dn.clone())
            .with("objectclass", "MdsNwsPath")
            .with("srchost", node_name(src))
            .with("dsthost", node_name(dst));
        entry.set("bandwidthbytespersec", vec![format!("{bw:.0}")]);
        entry.set("latencyseconds", vec![format!("{lat:.6}")]);
        match dir.get_mut(&dn) {
            Some(e) => *e = entry,
            None => dir.add(entry).expect("parent exists"),
        }
    }
}

/// Read a published bandwidth forecast (bytes/sec) back out of MDS.
pub fn lookup_bandwidth(dir: &Directory, src_host: &str, dst_host: &str) -> Option<f64> {
    let filter = Filter::And(vec![
        Filter::eq("objectclass", "MdsNwsPath"),
        Filter::eq("srchost", src_host),
        Filter::eq("dsthost", dst_host),
    ]);
    let hits = dir.search(&nws_base(), Scope::OneLevel, &filter);
    hits.first()?.first("bandwidthbytespersec")?.parse().ok()
}

/// Read a published latency forecast (seconds).
pub fn lookup_latency(dir: &Directory, src_host: &str, dst_host: &str) -> Option<f64> {
    let filter = Filter::And(vec![
        Filter::eq("objectclass", "MdsNwsPath"),
        Filter::eq("srchost", src_host),
        Filter::eq("dsthost", dst_host),
    ]);
    let hits = dir.search(&nws_base(), Scope::OneLevel, &filter);
    hits.first()?.first("latencyseconds")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_simnet::SimTime;

    fn names(id: NodeId) -> String {
        ["lbnl", "anl", "isi"][id.0].to_string()
    }

    #[test]
    fn publish_and_lookup() {
        let mut r = NwsRegistry::new();
        let (a, b) = (NodeId(0), NodeId(1));
        for i in 0..5 {
            r.observe_bandwidth(a, b, SimTime::from_secs(i), 40e6);
            r.observe_latency(a, b, 0.025);
        }
        let mut dir = Directory::new();
        publish(&r, &[(a, b)], &names, &mut dir);
        let bw = lookup_bandwidth(&dir, "lbnl", "anl").unwrap();
        assert!((bw - 40e6).abs() < 1.0);
        let lat = lookup_latency(&dir, "lbnl", "anl").unwrap();
        assert!((lat - 0.025).abs() < 1e-6);
    }

    #[test]
    fn republish_updates_in_place() {
        let mut r = NwsRegistry::new();
        let (a, b) = (NodeId(0), NodeId(1));
        r.observe_bandwidth(a, b, SimTime::ZERO, 10e6);
        let mut dir = Directory::new();
        publish(&r, &[(a, b)], &names, &mut dir);
        let n_before = dir.len();
        for i in 1..20 {
            r.observe_bandwidth(a, b, SimTime::from_secs(i), 90e6);
        }
        publish(&r, &[(a, b)], &names, &mut dir);
        assert_eq!(dir.len(), n_before, "no duplicate entries");
        let bw = lookup_bandwidth(&dir, "lbnl", "anl").unwrap();
        assert!(bw > 50e6);
    }

    #[test]
    fn unmeasured_pairs_are_skipped() {
        let r = NwsRegistry::new();
        let mut dir = Directory::new();
        publish(&r, &[(NodeId(0), NodeId(1))], &names, &mut dir);
        assert_eq!(lookup_bandwidth(&dir, "lbnl", "anl"), None);
    }

    #[test]
    fn missing_pair_lookup_is_none() {
        let dir = Directory::new();
        assert_eq!(lookup_bandwidth(&dir, "x", "y"), None);
        assert_eq!(lookup_latency(&dir, "x", "y"), None);
    }
}
