//! Disk subsystem models.
//!
//! "We used multiple disks with software RAID to ensure that disk was not
//! the bottleneck" (§7). The model is deliberately simple: positioning
//! latency plus streaming at a fixed rate, with RAID-0 striping multiplying
//! the streaming rate.

use esg_simnet::SimDuration;

/// A single spindle, year-2000 class by default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average positioning (seek + rotational) latency per access.
    pub position: SimDuration,
    /// Sequential read bandwidth, bytes/sec.
    pub read_rate: f64,
    /// Sequential write bandwidth, bytes/sec.
    pub write_rate: f64,
}

impl DiskModel {
    /// A ~2000-era SCSI disk: 8 ms positioning, ~25 MB/s streaming.
    pub fn year2000_scsi() -> Self {
        DiskModel {
            position: SimDuration::from_millis(8),
            read_rate: 25e6,
            write_rate: 20e6,
        }
    }

    /// Time to read `bytes` sequentially.
    pub fn read_time(&self, bytes: f64) -> SimDuration {
        self.position + SimDuration::from_secs_f64(bytes / self.read_rate)
    }

    /// Time to write `bytes` sequentially.
    pub fn write_time(&self, bytes: f64) -> SimDuration {
        self.position + SimDuration::from_secs_f64(bytes / self.write_rate)
    }
}

/// RAID level: the prototype used striping (RAID-0) for bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidLevel {
    /// Striping: aggregate bandwidth, no redundancy.
    Raid0,
    /// Mirroring: read bandwidth scales, writes go everywhere.
    Raid1,
}

/// A software RAID array of identical disks.
#[derive(Debug, Clone, Copy)]
pub struct RaidArray {
    pub disk: DiskModel,
    pub disks: usize,
    pub level: RaidLevel,
}

impl RaidArray {
    pub fn new(disk: DiskModel, disks: usize, level: RaidLevel) -> Self {
        assert!(disks >= 1);
        RaidArray { disk, disks, level }
    }

    /// Aggregate sequential read bandwidth, bytes/sec.
    pub fn read_rate(&self) -> f64 {
        self.disk.read_rate * self.disks as f64
    }

    /// Aggregate sequential write bandwidth, bytes/sec.
    pub fn write_rate(&self) -> f64 {
        match self.level {
            RaidLevel::Raid0 => self.disk.write_rate * self.disks as f64,
            RaidLevel::Raid1 => self.disk.write_rate, // every mirror writes everything
        }
    }

    pub fn read_time(&self, bytes: f64) -> SimDuration {
        self.disk.position + SimDuration::from_secs_f64(bytes / self.read_rate())
    }

    pub fn write_time(&self, bytes: f64) -> SimDuration {
        self.disk.position + SimDuration::from_secs_f64(bytes / self.write_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_disk_read_time() {
        let d = DiskModel::year2000_scsi();
        let t = d.read_time(25e6); // 1 second of streaming + 8 ms position
        assert!((t.as_secs_f64() - 1.008).abs() < 1e-9);
    }

    #[test]
    fn raid0_scales_both_ways() {
        let arr = RaidArray::new(DiskModel::year2000_scsi(), 4, RaidLevel::Raid0);
        assert!((arr.read_rate() - 100e6).abs() < 1.0);
        assert!((arr.write_rate() - 80e6).abs() < 1.0);
    }

    #[test]
    fn raid1_write_does_not_scale() {
        let arr = RaidArray::new(DiskModel::year2000_scsi(), 4, RaidLevel::Raid1);
        assert!((arr.read_rate() - 100e6).abs() < 1.0);
        assert!((arr.write_rate() - 20e6).abs() < 1.0);
    }

    #[test]
    fn raid_keeps_disk_faster_than_gige() {
        // The paper's point: enough spindles to beat the NIC (125 MB/s).
        let arr = RaidArray::new(DiskModel::year2000_scsi(), 6, RaidLevel::Raid0);
        assert!(arr.read_rate() > 125e6);
    }

    #[test]
    fn zero_bytes_costs_position_only() {
        let d = DiskModel::year2000_scsi();
        assert_eq!(d.read_time(0.0), d.position);
        assert_eq!(d.write_time(0.0), d.position);
    }
}
