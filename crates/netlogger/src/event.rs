//! NetLogger-style structured events.
//!
//! NetLogger [Gunter et al., 2000] records timestamped key-value events from
//! every component of a distributed system and correlates them afterwards —
//! it produced the paper's Figure 8. We reproduce its event model: an event
//! has a time, a dotted event name (`gridftp.transfer.start`), and a flat
//! set of string/number fields — plus the second half of the NetLogger
//! story: a ULM parser ([`LogEvent::from_ulm`], [`NetLog::from_ulm`]) whose
//! export→parse→export round-trip is byte-identical, which is what makes
//! offline lifeline reconstruction trustworthy.

use esg_simnet::SimTime;
use std::fmt;

/// A field value: NetLogger fields are strings or numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Int(i64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(x) => write!(f, "{x}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

/// Normalise a field key to the ULM-safe alphabet `[a-z0-9._-]`.
///
/// ULM keys are case-insensitive on the wire, so uppercase is folded to
/// lowercase rather than rejected; any other character outside the alphabet
/// (spaces, `=`, `%`, control characters) would make the line unparseable and
/// is replaced with `_`. An empty key becomes `_`.
pub fn sanitize_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            'a'..='z' | '0'..='9' | '.' | '_' | '-' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Percent-escape the characters that would break ULM tokenisation in an
/// event name or field value: space, `=`, `%`, and line/tab controls.
fn escape_value(s: &str) -> String {
    if !s
        .bytes()
        .any(|b| matches!(b, b' ' | b'=' | b'%' | b'\n' | b'\r' | b'\t'))
    {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            // The specials are all single-byte ASCII; everything else
            // (including multi-byte UTF-8) passes through untouched.
            ' ' | '=' | '%' | '\n' | '\r' | '\t' => {
                let b = c as u8;
                out.push('%');
                out.push(
                    char::from_digit((b >> 4) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit((b & 0xf) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
            }
            _ => out.push(c),
        }
    }
    out
}

fn unescape_value(s: &str) -> Result<String, UlmError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| UlmError::BadEscape(s.to_string()))?;
            let b = u8::from_str_radix(hex, 16).map_err(|_| UlmError::BadEscape(s.to_string()))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| UlmError::BadEscape(s.to_string()))
}

/// Why a ULM line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum UlmError {
    /// Line does not start with a `DATE=` token.
    MissingDate(String),
    /// `DATE=` value is not a non-negative decimal timestamp.
    BadDate(String),
    /// Second token is not `EVNT=`.
    MissingEvent(String),
    /// A field token has no `=` separator.
    BadField(String),
    /// A percent-escape in a value is malformed.
    BadEscape(String),
}

impl fmt::Display for UlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UlmError::MissingDate(l) => write!(f, "ULM line missing DATE=: {l:?}"),
            UlmError::BadDate(t) => write!(f, "bad DATE value: {t:?}"),
            UlmError::MissingEvent(l) => write!(f, "ULM line missing EVNT=: {l:?}"),
            UlmError::BadField(t) => write!(f, "field token without '=': {t:?}"),
            UlmError::BadEscape(t) => write!(f, "malformed percent-escape: {t:?}"),
        }
    }
}

impl std::error::Error for UlmError {}

/// Parse a `DATE=` timestamp exactly: the exporter writes `{:.6}` seconds, so
/// decoding digit-by-digit into nanoseconds (instead of going through an f64
/// multiply) guarantees a byte-identical re-export.
fn parse_date_nanos(tok: &str) -> Result<SimTime, UlmError> {
    let bad = || UlmError::BadDate(tok.to_string());
    let (secs, frac) = match tok.split_once('.') {
        Some((s, f)) => (s, f),
        None => (tok, ""),
    };
    if secs.is_empty() || !secs.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad());
    }
    if frac.len() > 9 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad());
    }
    let secs: u64 = secs.parse().map_err(|_| bad())?;
    let mut frac_nanos: u64 = 0;
    for (i, b) in frac.bytes().enumerate() {
        frac_nanos += (b - b'0') as u64 * 10u64.pow(8 - i as u32);
    }
    secs.checked_mul(1_000_000_000)
        .and_then(|n| n.checked_add(frac_nanos))
        .map(SimTime)
        .ok_or_else(bad)
}

/// Classify a parsed value token. A token becomes numeric only when its
/// canonical `Display` reprints the exact original text, so that a parsed
/// log re-exports byte-identically (`007` stays a string, `7` becomes an
/// integer, `55.5` a float).
fn classify_value(raw: String) -> Value {
    if raw.len() <= 20 {
        if let Ok(i) = raw.parse::<i64>() {
            if i.to_string() == raw {
                return Value::Int(i);
            }
        }
    }
    if raw.len() <= 32
        && raw
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'.' | b'-' | b'e' | b'E' | b'+'))
    {
        if let Ok(x) = raw.parse::<f64>() {
            if x.is_finite() && format!("{x}") == raw {
                return Value::Num(x);
            }
        }
    }
    Value::Str(raw)
}

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    pub time: SimTime,
    pub name: String,
    pub fields: Vec<(String, Value)>,
}

impl LogEvent {
    pub fn new(time: SimTime, name: impl Into<String>) -> Self {
        LogEvent {
            time,
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Append a field. The key is normalised via [`sanitize_key`] so every
    /// event this builder produces is exportable and re-parseable.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        let key = key.into();
        let key = if key
            .bytes()
            .all(|b| matches!(b, b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-'))
            && !key.is_empty()
        {
            key
        } else {
            sanitize_key(&key)
        };
        self.fields.push((key, value.into()));
        self
    }

    /// True if the event already carries a field with this key.
    pub fn has(&self, key: &str) -> bool {
        self.fields.iter().any(|(k, _)| k == key)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::Str(_) => None,
        }
    }

    /// NetLogger ULM text format:
    /// `DATE=<secs> EVNT=<name> key=value ...`
    ///
    /// Keys are emitted verbatim (they were sanitised at [`field`]); values
    /// and the event name are percent-escaped so that spaces, `=`, and `%`
    /// survive tokenisation.
    ///
    /// [`field`]: LogEvent::field
    pub fn to_ulm(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        write!(
            s,
            "DATE={:.6} EVNT={}",
            self.time.as_secs_f64(),
            escape_value(&self.name)
        )
        .unwrap();
        for (k, v) in &self.fields {
            match v {
                Value::Str(raw) => write!(s, " {}={}", k, escape_value(raw)).unwrap(),
                _ => write!(s, " {k}={v}").unwrap(),
            }
        }
        s
    }

    /// Parse one ULM line produced by [`LogEvent::to_ulm`].
    pub fn from_ulm(line: &str) -> Result<LogEvent, UlmError> {
        let mut toks = line.split(' ').filter(|t| !t.is_empty());
        let date = toks
            .next()
            .and_then(|t| t.strip_prefix("DATE="))
            .ok_or_else(|| UlmError::MissingDate(line.to_string()))?;
        let time = parse_date_nanos(date)?;
        let name = toks
            .next()
            .and_then(|t| t.strip_prefix("EVNT="))
            .ok_or_else(|| UlmError::MissingEvent(line.to_string()))?;
        let mut event = LogEvent::new(time, unescape_value(name)?);
        for tok in toks {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| UlmError::BadField(tok.to_string()))?;
            event
                .fields
                .push((k.to_string(), classify_value(unescape_value(v)?)));
        }
        Ok(event)
    }
}

/// What [`NetLog::push`] does with an event whose timestamp precedes the tail
/// of the log. The seed only `debug_assert`ed, so release builds silently
/// produced logs that broke `between()`'s half-open scan; now the policy is
/// explicit and counted in both profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Clamp the event's time up to the tail time and keep it (default:
    /// causality is preserved, nothing is lost, `between()` stays correct).
    #[default]
    Clamp,
    /// Drop the event entirely.
    Drop,
}

/// An append-only event log with simple queries.
#[derive(Debug, Default, Clone)]
pub struct NetLog {
    events: Vec<LogEvent>,
    order_policy: OrderPolicy,
    out_of_order: u64,
}

impl NetLog {
    pub fn new() -> Self {
        NetLog::default()
    }

    pub fn with_order_policy(policy: OrderPolicy) -> Self {
        NetLog {
            order_policy: policy,
            ..NetLog::default()
        }
    }

    /// Append an event, enforcing time order under the configured
    /// [`OrderPolicy`] in every build profile. Out-of-order submissions are
    /// counted (see [`out_of_order_count`]) whether clamped or dropped.
    ///
    /// [`out_of_order_count`]: NetLog::out_of_order_count
    pub fn push(&mut self, mut event: LogEvent) {
        if let Some(last) = self.events.last() {
            if event.time < last.time {
                self.out_of_order += 1;
                match self.order_policy {
                    OrderPolicy::Clamp => event.time = last.time,
                    OrderPolicy::Drop => return,
                }
            }
        }
        self.events.push(event);
    }

    /// How many pushed events violated time order so far.
    pub fn out_of_order_count(&self) -> u64 {
        self.out_of_order
    }

    pub fn order_policy(&self) -> OrderPolicy {
        self.order_policy
    }

    pub fn log(&mut self, time: SimTime, name: impl Into<String>) -> &mut Self {
        self.push(LogEvent::new(time, name));
        self
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &LogEvent> {
        self.events.iter()
    }

    /// The last `n` events (fewer if the log is shorter). O(1) — a slice
    /// of the tail, for live displays that re-render every tick and must
    /// not walk the whole log each time.
    pub fn tail(&self, n: usize) -> &[LogEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }

    /// Events with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a LogEvent> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Events in the half-open interval `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &LogEvent> {
        self.events
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// Export everything in NetLogger's ULM text format.
    pub fn to_ulm(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_ulm());
            s.push('\n');
        }
        s
    }

    /// Parse a multi-line ULM export back into a log. Round-trips
    /// [`NetLog::to_ulm`] byte-identically; blank lines are skipped.
    pub fn from_ulm(text: &str) -> Result<NetLog, UlmError> {
        let mut log = NetLog::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            log.push(LogEvent::from_ulm(line)?);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_getters() {
        let e = LogEvent::new(SimTime::from_secs(1), "gridftp.transfer.start")
            .field("host", "dallas0")
            .field("bytes", 2_000_000_000u64)
            .field("rate", 55.5);
        assert_eq!(e.get("host"), Some(&Value::Str("dallas0".into())));
        assert_eq!(e.get_num("bytes"), Some(2e9));
        assert_eq!(e.get_num("rate"), Some(55.5));
        assert_eq!(e.get_num("host"), None);
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn ulm_format_preserves_key_case_distinctly() {
        let e = LogEvent::new(SimTime::from_secs_f64(1.5), "x.y").field("n", 3u64);
        assert_eq!(e.to_ulm(), "DATE=1.500000 EVNT=x.y n=3");
        // Uppercase keys fold to lowercase at the builder, so `HOST` and
        // `host` are the *same* field rather than two colliding columns.
        let e = LogEvent::new(SimTime::ZERO, "x").field("HOST", "a");
        assert_eq!(e.get("host"), Some(&Value::Str("a".into())));
        assert_eq!(e.to_ulm(), "DATE=0.000000 EVNT=x host=a");
    }

    #[test]
    fn hostile_keys_are_sanitized_and_values_escaped() {
        let e = LogEvent::new(SimTime::ZERO, "x")
            .field("bad key=here", "v")
            .field("", "empty")
            .field("msg", "a b=c%d");
        let ulm = e.to_ulm();
        assert_eq!(
            ulm,
            "DATE=0.000000 EVNT=x bad_key_here=v _=empty msg=a%20b%3Dc%25d"
        );
        let back = LogEvent::from_ulm(&ulm).unwrap();
        assert_eq!(back.get("msg"), Some(&Value::Str("a b=c%d".into())));
        assert_eq!(back.to_ulm(), ulm);
    }

    #[test]
    fn ulm_parse_round_trips_value_types() {
        let e = LogEvent::new(SimTime::from_secs_f64(12.25), "a.b")
            .field("i", 42u64)
            .field("neg", -7i64)
            .field("f", 55.5)
            .field("s", "plain")
            .field("oct", "007");
        let ulm = e.to_ulm();
        let back = LogEvent::from_ulm(&ulm).unwrap();
        assert_eq!(back.get("i"), Some(&Value::Int(42)));
        assert_eq!(back.get("neg"), Some(&Value::Int(-7)));
        assert_eq!(back.get("f"), Some(&Value::Num(55.5)));
        assert_eq!(back.get("s"), Some(&Value::Str("plain".into())));
        // Leading zeros must stay a string or the re-export would differ.
        assert_eq!(back.get("oct"), Some(&Value::Str("007".into())));
        assert_eq!(back.to_ulm(), ulm);
        assert_eq!(back.time, SimTime::from_secs_f64(12.25));
    }

    #[test]
    fn ulm_parse_rejects_garbage() {
        assert!(matches!(
            LogEvent::from_ulm("EVNT=x"),
            Err(UlmError::MissingDate(_))
        ));
        assert!(matches!(
            LogEvent::from_ulm("DATE=abc EVNT=x"),
            Err(UlmError::BadDate(_))
        ));
        assert!(matches!(
            LogEvent::from_ulm("DATE=1.0 nope"),
            Err(UlmError::MissingEvent(_))
        ));
        assert!(matches!(
            LogEvent::from_ulm("DATE=1.0 EVNT=x badtoken"),
            Err(UlmError::BadField(_))
        ));
        assert!(matches!(
            LogEvent::from_ulm("DATE=1.0 EVNT=x k=%zz"),
            Err(UlmError::BadEscape(_))
        ));
    }

    #[test]
    fn log_queries() {
        let mut log = NetLog::new();
        for i in 0..10u64 {
            let name = if i % 2 == 0 { "even" } else { "odd" };
            log.push(LogEvent::new(SimTime::from_secs(i), name).field("i", i));
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.named("even").count(), 5);
        assert_eq!(
            log.between(SimTime::from_secs(2), SimTime::from_secs(5))
                .count(),
            3
        );
    }

    #[test]
    fn queries_on_empty_log() {
        let log = NetLog::new();
        assert!(log.is_empty());
        assert_eq!(log.named("anything").count(), 0);
        assert_eq!(log.between(SimTime::ZERO, SimTime::MAX).count(), 0);
        assert_eq!(log.to_ulm(), "");
        assert_eq!(NetLog::from_ulm("").unwrap().len(), 0);
    }

    #[test]
    fn queries_on_single_event_log() {
        let mut log = NetLog::new();
        log.push(LogEvent::new(SimTime::from_secs(5), "only").field("k", 1u64));
        assert_eq!(log.len(), 1);
        assert_eq!(log.named("only").count(), 1);
        assert_eq!(log.named("other").count(), 0);
        // Half-open: [5, 5) is empty, [5, 6) contains it, [4, 5) does not.
        assert_eq!(
            log.between(SimTime::from_secs(5), SimTime::from_secs(5))
                .count(),
            0
        );
        assert_eq!(
            log.between(SimTime::from_secs(5), SimTime::from_secs(6))
                .count(),
            1
        );
        assert_eq!(
            log.between(SimTime::from_secs(4), SimTime::from_secs(5))
                .count(),
            0
        );
    }

    #[test]
    fn out_of_order_clamp_policy() {
        let mut log = NetLog::new();
        log.log(SimTime::from_secs(10), "a");
        log.push(LogEvent::new(SimTime::from_secs(3), "late"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.out_of_order_count(), 1);
        // Clamped to the tail time so between() stays a correct scan.
        let late = log.named("late").next().unwrap();
        assert_eq!(late.time, SimTime::from_secs(10));
    }

    #[test]
    fn out_of_order_drop_policy() {
        let mut log = NetLog::with_order_policy(OrderPolicy::Drop);
        log.log(SimTime::from_secs(10), "a");
        log.push(LogEvent::new(SimTime::from_secs(3), "late"));
        assert_eq!(log.len(), 1);
        assert_eq!(log.out_of_order_count(), 1);
        assert_eq!(log.named("late").count(), 0);
    }

    #[test]
    fn netlog_ulm_round_trip_is_byte_identical() {
        let mut log = NetLog::new();
        log.push(
            LogEvent::new(SimTime::ZERO, "rm.request.submit")
                .field("request", 3u64)
                .field("files", 12u64),
        );
        log.push(
            LogEvent::new(SimTime(1_234_567_000), "gridftp.transfer.start")
                .field("file", "pcm.run1.f003")
                .field("rate", 12.5),
        );
        let ulm = log.to_ulm();
        let back = NetLog::from_ulm(&ulm).unwrap();
        assert_eq!(back.to_ulm(), ulm);
        assert_eq!(back.len(), log.len());
    }

    #[test]
    fn ulm_export_lines() {
        let mut log = NetLog::new();
        log.log(SimTime::ZERO, "a");
        log.log(SimTime::from_secs(1), "b");
        let text = log.to_ulm();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("DATE=0.000000 EVNT=a"));
    }
}
