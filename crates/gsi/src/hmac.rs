//! HMAC-SHA-256 (RFC 2104) for message authentication and key derivation.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs.
pub fn verify_mac(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Simple HKDF-like key derivation: expand a shared secret into labelled
/// session keys (`derive(secret, "data-integrity")`, etc.).
pub fn derive_key(secret: &[u8], label: &str) -> [u8; 32] {
    hmac_sha256(secret, label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b_u8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_long_key() {
        // Case 6: 131-byte key (forces the key-hashing path).
        let key = [0xaa_u8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        b[31] ^= 1;
        assert!(verify_mac(&a, &a.clone()));
        assert!(!verify_mac(&a, &b));
    }

    #[test]
    fn derived_keys_differ_by_label() {
        let s = b"shared secret";
        assert_ne!(derive_key(s, "integrity"), derive_key(s, "confidentiality"));
        assert_eq!(derive_key(s, "integrity"), derive_key(s, "integrity"));
    }
}
