//! Integrity soak: randomized silent-corruption schedules against the
//! request manager's block-digest verification + ERET repair layer.
//!
//! `cargo run --release -p esg-bench --bin soak_corruption [seed] [requests] [trace_path]`
//!
//! Pushes `requests` randomized requests through the Figure 1 testbed
//! while blocks silently rot at rest on disk caches, tape reads corrupt
//! cold stages at the HPSS site, and wire-corruption windows flip frames
//! in flight. Reports detection/repair/quarantine statistics from the
//! NetLogger trace, writes the full ULM trace to `trace_path` (default
//! `SOAK_corruption.ulm`), and exits non-zero if any file fails, any
//! request stalls, or any completion was not digest-verified.

use esg_core::esg_testbed;
use esg_reqman::submit_request;
use esg_simnet::prelude::{inject_all, Fault, FaultKind};
use esg_simnet::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

const DATASET: &str = "pcm_intg.b06";
const FILE_SIZE: u64 = 8_000_000;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);
    let n_requests: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let trace_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "SOAK_corruption.ulm".into());

    let mut tb = esg_testbed(seed);
    tb.sim
        .world
        .rm
        .hrms
        .get_mut("hpss.lbl.gov")
        .unwrap()
        .enable_tape_errors(3, seed);
    tb.sim.world.rm.integrity.quarantine_threshold = 1;
    tb.publish_dataset(DATASET, 24, 4, 2_000_000, &[0, 1, 2, 3, 4, 5]);
    let collection = tb.sim.world.metadata.collection_of(DATASET).unwrap();
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let names: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files(DATASET)
        .unwrap()
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_B10C_C0DE_C0DE);

    // At-rest block flips on the disk sites, capped at three of the five
    // disk replicas per file so a clean repair source always survives.
    let mut corrupted: HashMap<String, HashSet<usize>> = HashMap::new();
    let mut flips = 0usize;
    for _ in 0..30 {
        let si = rng.gen_range(1usize..6);
        let (_, name) = names[rng.gen_range(0usize..names.len())].clone();
        let hit_sites = corrupted.entry(name.clone()).or_default();
        if !hit_sites.contains(&si) && hit_sites.len() >= 3 {
            continue;
        }
        hit_sites.insert(si);
        let host = tb.sites[si].host.clone();
        let block = rng.gen_range(0u64..FILE_SIZE.div_ceil(1 << 20));
        let nonce = rng.gen::<u64>() | 1;
        let at = SimTime::from_secs(rng.gen_range(50u64..1200));
        flips += 1;
        tb.sim.schedule_at(at, move |sim| {
            sim.world.rm.corrupt_at_rest(&host, &name, block, nonce, at);
        });
    }

    // In-flight corruption windows at the storage sites.
    let mut faults = Vec::new();
    for _ in 0..8 {
        let at = SimTime::from_secs(rng.gen_range(120u64..1200));
        let duration = SimDuration::from_secs(rng.gen_range(10u64..60));
        let site = rng.gen_range(1usize..6);
        faults.push(Fault::new(
            at,
            duration,
            FaultKind::WireCorrupt(tb.sites[site].node),
        ));
    }
    inject_all(&mut tb.sim, &faults);
    println!(
        "seed {seed}: {flips} at-rest flips, {} wire windows, 1-in-3 tape errors, \
         {n_requests} requests over [100, 1300) s",
        faults.len()
    );

    let client = tb.client;
    for _ in 0..n_requests {
        let at = SimTime::from_secs(rng.gen_range(100u64..1300));
        let k = rng.gen_range(1usize..=2);
        let files: Vec<_> = (0..k)
            .map(|_| names[rng.gen_range(0usize..names.len())].clone())
            .collect();
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }

    let wall = std::time::Instant::now();
    tb.sim.run_until(SimTime::from_secs(3600));
    let wall = wall.elapsed();

    let outcomes = &tb.sim.world.outcomes;
    let log = &tb.sim.world.rm.log;
    let count = |name: &str| log.named(name).count();
    let files: usize = outcomes.iter().map(|o| o.files.len()).sum();
    let complete = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .filter(|f| f.done && f.bytes_done == f.size)
        .count();
    let bytes: u64 = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .map(|f| f.bytes_done)
        .sum();
    let repair_bytes: f64 = log
        .named("integrity.repair.eret")
        .filter_map(|e| e.get_num("bytes"))
        .sum();

    println!("\n== corruption soak report (sim horizon 3600 s, wall {wall:.1?}) ==");
    println!("requests completed:   {:>8} / {n_requests}", outcomes.len());
    println!("files delivered:      {:>8} / {files}", complete);
    println!("bytes delivered:      {:>8.2} GB", bytes as f64 / 1e9);
    println!(
        "files verified:       {:>8}",
        count("integrity.file.verified")
    );
    println!(
        "block mismatches:     {:>8}",
        count("integrity.block.mismatch")
    );
    println!(
        "ERET repairs:         {:>8}",
        count("integrity.repair.eret")
    );
    println!("repair traffic:       {:>8.2} MB", repair_bytes / 1e6);
    println!(
        "escalations:          {:>8}",
        count("integrity.repair.escalate")
    );
    println!(
        "quarantines:          {:>8}",
        count("integrity.replica.quarantine")
    );
    println!(
        "rehabilitations:      {:>8}",
        count("integrity.replica.rehabilitated")
    );
    println!("files failed:         {:>8}", count("rm.file.failed"));

    let trace = log.to_ulm();
    std::fs::write(&trace_path, &trace).expect("write trace");
    println!("trace: {trace_path} ({} events)", log.len());

    let verified = count("integrity.file.verified");
    let completes = count("rm.file.complete");
    if outcomes.len() != n_requests || complete != files {
        eprintln!("SOAK FAILED: incomplete requests remain at the horizon");
        std::process::exit(1);
    }
    if verified != completes {
        eprintln!("SOAK FAILED: {completes} completions but only {verified} verified");
        std::process::exit(1);
    }
    println!("\nall requests complete; every delivery digest-verified bit-exact");
}
