//! GridFTP transfer semantics over the WAN simulator.
//!
//! Every wide-area experiment in the paper (Table 1, Figure 8, the
//! parallelism/striping/buffer sweeps) runs through this engine. It prices
//! what the real implementation pays:
//!
//! * **Connection establishment** — TCP + GSI handshake round trips per
//!   data connection ([`esg_gsi::HANDSHAKE_ROUND_TRIPS`]), plus the control
//!   exchange (PASV/RETR + final 226). The SC'2000 implementation
//!   "destroys and rebuilds its TCP connections between consecutive
//!   transfers"; with [`TransferSpec::channel_cache`] the engine reuses
//!   established channels and skips both the handshake and slow start —
//!   the post-SC'00 data-channel-caching feature.
//! * **Parallel streams** — `streams_per_source` TCP flows per source,
//!   each with its own window and slow-start ramp.
//! * **Striping** — multiple source hosts each serving a partition of the
//!   file ("a 2-gigabyte file partitioned across the eight workstations").
//! * **Stalls** — network faults stall flows; the engine exposes progress
//!   so the request manager's monitor (polling "every few seconds", §4)
//!   can notice and restart from the byte ranges already delivered.

use esg_simnet::{FlowId, FlowSpec, NodeId, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Per-block protection overhead fraction (sequence + MAC per 64 KiB
/// block; see `esg_gsi::channel`).
pub fn protection_overhead(p: esg_gsi::Protection) -> f64 {
    match p {
        esg_gsi::Protection::Clear => 0.0,
        esg_gsi::Protection::Safe | esg_gsi::Protection::Private => 40.0 / 65_536.0,
    }
}

/// What to transfer and how.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    /// Source hosts; more than one = striped transfer, each serving an
    /// equal partition.
    pub sources: Vec<NodeId>,
    /// Destination host (striped destinations are modeled as multiple
    /// concurrent transfers by the caller).
    pub dst: NodeId,
    /// File bytes to move.
    pub size: u64,
    /// Parallel TCP streams per source host.
    pub streams_per_source: u32,
    /// TCP socket buffer (SBUF) per stream, bytes.
    pub window: f64,
    /// Maximum segment size (jumbo frames = 8960).
    pub mss: f64,
    /// Whether endpoints touch disk (false for memory-to-memory tests).
    pub use_disk: bool,
    /// Reuse cached data channels (skip handshake + slow start) when
    /// available; cache channels on completion.
    pub channel_cache: bool,
    /// Data-channel protection level (adds per-block overhead bytes).
    pub protection: esg_gsi::Protection,
    /// CPU time for the GSI handshake's public-key operations plus process
    /// setup on year-2000 hardware; paid once per un-cached connection
    /// establishment. (This, with the round trips, is the "costly
    /// breakdown, restart, and re-authentication" of §7.)
    pub auth_compute: SimDuration,
}

impl TransferSpec {
    pub fn new(src: NodeId, dst: NodeId, size: u64) -> Self {
        TransferSpec {
            sources: vec![src],
            dst,
            size,
            streams_per_source: 1,
            window: (1u64 << 20) as f64,
            mss: esg_simnet::tcp::MSS,
            use_disk: true,
            channel_cache: false,
            protection: esg_gsi::Protection::Clear,
            auth_compute: SimDuration::from_millis(800),
        }
    }

    pub fn striped(sources: Vec<NodeId>, dst: NodeId, size: u64) -> Self {
        assert!(!sources.is_empty());
        let mut s = TransferSpec::new(sources[0], dst, size);
        s.sources = sources;
        s
    }

    pub fn streams(mut self, n: u32) -> Self {
        self.streams_per_source = n.max(1);
        self
    }

    pub fn window(mut self, bytes: f64) -> Self {
        self.window = bytes;
        self
    }

    pub fn mss(mut self, mss: f64) -> Self {
        self.mss = mss;
        self
    }

    pub fn memory_to_memory(mut self) -> Self {
        self.use_disk = false;
        self
    }

    pub fn cached(mut self) -> Self {
        self.channel_cache = true;
        self
    }

    pub fn protection(mut self, p: esg_gsi::Protection) -> Self {
        self.protection = p;
        self
    }

    /// Total streams across all sources.
    pub fn total_streams(&self) -> u32 {
        self.streams_per_source * self.sources.len() as u32
    }
}

/// Why a transfer could not start or finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// Name service down: cannot resolve/connect new channels.
    NameServiceDown,
    /// No route from a source to the destination at start time.
    NoRoute { source: NodeId },
    /// Cancelled by the owner (restart, failover).
    Cancelled,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::NameServiceDown => write!(f, "name service unavailable"),
            TransferError::NoRoute { source } => {
                write!(f, "no route from source node {}", source.0)
            }
            TransferError::Cancelled => write!(f, "transfer cancelled"),
        }
    }
}

impl std::error::Error for TransferError {}

/// Completed-transfer statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferResult {
    pub bytes: u64,
    pub started: SimTime,
    pub finished: SimTime,
}

impl TransferResult {
    /// Mean end-to-end rate including setup costs, bytes/sec.
    pub fn mean_rate(&self) -> f64 {
        let dt = self.finished.since(self.started).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / dt
        }
    }
}

/// Identifies an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferHandle(pub u64);

struct TransferState {
    flows: Vec<FlowId>,
    /// Bytes banked from flows that already completed.
    banked: f64,
    remaining_flows: usize,
    size: u64,
    started: SimTime,
    done: bool,
    cancelled: bool,
    spec: TransferSpec,
}

type SharedTransfer = Rc<RefCell<TransferState>>;

/// The simulated GridFTP service state living inside the world.
#[derive(Default)]
pub struct GridFtpSim {
    transfers: HashMap<u64, SharedTransfer>,
    next_id: u64,
    /// Cached data channels per (src, dst): how many streams are kept warm.
    cache: HashMap<(NodeId, NodeId), u32>,
    /// Counters for reporting.
    pub transfers_started: u64,
    pub transfers_completed: u64,
    pub handshakes_performed: u64,
    pub cache_hits: u64,
}

impl GridFtpSim {
    pub fn new() -> Self {
        GridFtpSim::default()
    }

    /// Cached channel count for a pair.
    pub fn cached_channels(&self, src: NodeId, dst: NodeId) -> u32 {
        self.cache.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Drop all cached channels (e.g. after long idle / server restart).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }

    /// Export the service counters into a metrics registry (a set, not an
    /// add — safe to call repeatedly).
    pub fn export_metrics(&self, reg: &mut esg_netlogger::MetricsRegistry) {
        reg.counter_set("gridftp.transfers_started", self.transfers_started);
        reg.counter_set("gridftp.transfers_completed", self.transfers_completed);
        reg.counter_set("gridftp.handshakes_performed", self.handshakes_performed);
        reg.counter_set("gridftp.cache_hits", self.cache_hits);
    }
}

/// World-access trait for the engine.
pub trait HasGridFtp {
    fn gridftp(&mut self) -> &mut GridFtpSim;
}

type DoneCb<W> = Box<dyn FnOnce(&mut Sim<W>, Result<TransferResult, TransferError>)>;

/// Start a transfer; `on_done` fires with the result or error.
///
/// Returns a handle for progress queries and cancellation, or an error if
/// the transfer cannot even begin (name service down, no route).
pub fn start_transfer<W: HasGridFtp + 'static>(
    sim: &mut Sim<W>,
    spec: TransferSpec,
    on_done: impl FnOnce(&mut Sim<W>, Result<TransferResult, TransferError>) + 'static,
) -> Result<TransferHandle, TransferError> {
    // Determine per-source setup latency and cache state.
    let dst = spec.dst;
    let mut max_setup = SimDuration::ZERO;
    let mut needs_handshake = false;
    for &src in &spec.sources {
        let cached = spec.channel_cache
            && sim.world.gridftp().cached_channels(src, dst) >= spec.streams_per_source;
        let rtt = sim
            .net
            .path_rtt(src, dst)
            .ok_or(TransferError::NoRoute { source: src })?;
        let setup = if cached {
            // Reused channel: a single command round trip (RETR … 150).
            rtt
        } else {
            needs_handshake = true;
            // TCP connect + GSI handshake + PASV/RETR exchange, plus the
            // public-key compute cost of authentication.
            rtt * (esg_gsi::HANDSHAKE_ROUND_TRIPS as u64 + 2) + spec.auth_compute
        };
        if setup > max_setup {
            max_setup = setup;
        }
    }
    if needs_handshake && !sim.name_service_up() {
        return Err(TransferError::NameServiceDown);
    }

    let id = {
        let g = sim.world.gridftp();
        g.transfers_started += 1;
        if needs_handshake {
            g.handshakes_performed += 1;
        } else if spec.channel_cache {
            g.cache_hits += 1;
        }
        let id = g.next_id;
        g.next_id += 1;
        id
    };
    let handle = TransferHandle(id);
    let state: SharedTransfer = Rc::new(RefCell::new(TransferState {
        flows: Vec::new(),
        banked: 0.0,
        remaining_flows: 0,
        size: spec.size,
        started: sim.now(),
        done: false,
        cancelled: false,
        spec: spec.clone(),
    }));
    sim.world.gridftp().transfers.insert(id, state.clone());

    // One completion closure shared across all flows.
    let on_done: Rc<RefCell<Option<DoneCb<W>>>> = Rc::new(RefCell::new(Some(Box::new(on_done))));

    // After the setup delay, launch the flows.
    let launch_state = state;
    let launch_done = on_done;
    let transfer_id = id;
    sim.schedule(max_setup, move |s| {
        if launch_state.borrow().cancelled {
            return;
        }
        let spec = launch_state.borrow().spec.clone();
        let n_sources = spec.sources.len() as u64;
        let streams = spec.streams_per_source as u64;
        let overhead = 1.0 + protection_overhead(spec.protection);
        let wire_bytes = (spec.size as f64 * overhead).ceil();
        let per_stream = wire_bytes / (n_sources * streams) as f64;

        let mut flow_specs = Vec::new();
        for &src in &spec.sources {
            let skip_ss = spec.channel_cache
                && s.world.gridftp().cached_channels(src, spec.dst) >= spec.streams_per_source;
            for _ in 0..streams {
                let mut fs = FlowSpec::new(src, spec.dst, per_stream)
                    .window(spec.window)
                    .mss(spec.mss);
                fs.uses_src_disk = spec.use_disk;
                fs.uses_dst_disk = spec.use_disk;
                fs.slow_start = !skip_ss;
                flow_specs.push(fs);
            }
        }
        launch_state.borrow_mut().remaining_flows = flow_specs.len();

        for fs in flow_specs {
            let st = launch_state.clone();
            let od = launch_done.clone();
            let tid = transfer_id;
            let flow_bytes = fs.size;
            match s.start_flow(fs, move |s2| {
                let finished_all = {
                    let mut stb = st.borrow_mut();
                    stb.banked += flow_bytes;
                    stb.remaining_flows -= 1;
                    stb.remaining_flows == 0 && !stb.cancelled
                };
                if finished_all {
                    // Final 226 reply costs half an RTT (server→client).
                    let st2 = st.clone();
                    let od2 = od.clone();
                    let rtt = {
                        let stb = st2.borrow();
                        s2.net
                            .path_rtt(stb.spec.sources[0], stb.spec.dst)
                            .unwrap_or(SimDuration::ZERO)
                    };
                    s2.schedule(rtt / 2, move |s3| {
                        let result = {
                            let mut stb = st2.borrow_mut();
                            stb.done = true;
                            TransferResult {
                                bytes: stb.size,
                                started: stb.started,
                                finished: s3.now(),
                            }
                        };
                        // Cache or tear down the channels.
                        {
                            let stb = st2.borrow();
                            let g = s3.world.gridftp();
                            for &src in &stb.spec.sources {
                                if stb.spec.channel_cache {
                                    g.cache
                                        .insert((src, stb.spec.dst), stb.spec.streams_per_source);
                                } else {
                                    g.cache.remove(&(src, stb.spec.dst));
                                }
                            }
                            g.transfers_completed += 1;
                            // Retire the transfer so progress queries
                            // return zero and the map doesn't grow without
                            // bound.
                            g.transfers.remove(&tid);
                        }
                        if let Some(cb) = od2.borrow_mut().take() {
                            cb(s3, Ok(result));
                        }
                    });
                }
            }) {
                Ok(fid) => launch_state.borrow_mut().flows.push(fid),
                Err(_) => {
                    // Route vanished during setup: fail the transfer once.
                    {
                        let mut stb = launch_state.borrow_mut();
                        stb.cancelled = true;
                        for &f in &stb.flows {
                            // Cancel already-started sibling flows.
                            s.net.remove_flow(f);
                        }
                    }
                    if let Some(cb) = launch_done.borrow_mut().take() {
                        let src = launch_state.borrow().spec.sources[0];
                        cb(s, Err(TransferError::NoRoute { source: src }));
                    }
                    return;
                }
            }
        }
    });
    Ok(handle)
}

/// Bytes delivered so far (across all streams), including completed flows.
pub fn transfer_bytes<W: HasGridFtp>(sim: &mut Sim<W>, handle: TransferHandle) -> u64 {
    let Some(state) = sim.world.gridftp().transfers.get(&handle.0).cloned() else {
        return 0;
    };
    let st = state.borrow();
    if st.done {
        return st.size;
    }
    let mut bytes = st.banked;
    for &f in &st.flows {
        bytes += sim.net.flow_bytes(f);
    }
    // Clamp: protection overhead means wire bytes ≥ payload bytes.
    (bytes as u64).min(st.size)
}

/// Current aggregate rate of the transfer's live flows, bytes/sec.
pub fn transfer_rate<W: HasGridFtp>(sim: &mut Sim<W>, handle: TransferHandle) -> f64 {
    let Some(state) = sim.world.gridftp().transfers.get(&handle.0).cloned() else {
        return 0.0;
    };
    let st = state.borrow();
    st.flows.iter().map(|&f| sim.net.flow_rate(f)).sum()
}

/// Whether every live flow of the transfer is stalled (faulted path).
pub fn transfer_stalled<W: HasGridFtp>(sim: &mut Sim<W>, handle: TransferHandle) -> bool {
    let Some(state) = sim.world.gridftp().transfers.get(&handle.0).cloned() else {
        return false;
    };
    let st = state.borrow();
    if st.done || st.flows.is_empty() {
        return false;
    }
    st.flows.iter().all(|&f| {
        matches!(
            sim.net.flow_state(f),
            Some(esg_simnet::FlowState::Stalled) | None
        )
    })
}

/// Cancel a transfer; returns the bytes already delivered (the restart
/// marker a retry can resume from). The pending `on_done` callback is
/// dropped.
pub fn cancel_transfer<W: HasGridFtp>(sim: &mut Sim<W>, handle: TransferHandle) -> u64 {
    let bytes = transfer_bytes(sim, handle);
    let Some(state) = sim.world.gridftp().transfers.remove(&handle.0) else {
        return bytes;
    };
    let mut st = state.borrow_mut();
    st.cancelled = true;
    for &f in &st.flows {
        sim.cancel_flow(f);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_simnet::{Node, Topology};

    struct World {
        gridftp: GridFtpSim,
        results: Vec<Result<TransferResult, TransferError>>,
    }

    impl HasGridFtp for World {
        fn gridftp(&mut self) -> &mut GridFtpSim {
            &mut self.gridftp
        }
    }

    fn world() -> World {
        World {
            gridftp: GridFtpSim::new(),
            results: Vec::new(),
        }
    }

    fn two_hosts(cap: f64, latency_ms: u64) -> (Sim<World>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node(Node::host("src"));
        let b = topo.add_node(Node::host("dst"));
        topo.add_link(a, b, cap, SimDuration::from_millis(latency_ms));
        (Sim::new(topo, world()), a, b)
    }

    fn record() -> impl FnOnce(&mut Sim<World>, Result<TransferResult, TransferError>) + 'static {
        |s, r| s.world.results.push(r)
    }

    #[test]
    fn simple_transfer_completes() {
        let (mut sim, a, b) = two_hosts(100e6, 5);
        let spec = TransferSpec::new(a, b, 100_000_000).memory_to_memory();
        start_transfer(&mut sim, spec, record()).unwrap();
        sim.run();
        assert_eq!(sim.world.results.len(), 1);
        let r = sim.world.results[0].as_ref().unwrap();
        assert_eq!(r.bytes, 100_000_000);
        // ≥ 1 s of data + setup RTTs + slow start.
        let dt = r.finished.since(r.started).as_secs_f64();
        assert!(dt > 1.0 && dt < 3.0, "took {dt}");
        assert_eq!(sim.world.gridftp.transfers_completed, 1);
    }

    #[test]
    fn parallel_streams_not_slower_on_clean_link() {
        let run = |streams: u32| -> f64 {
            let (mut sim, a, b) = two_hosts(100e6, 5);
            start_transfer(
                &mut sim,
                TransferSpec::new(a, b, 50_000_000)
                    .memory_to_memory()
                    .streams(streams),
                record(),
            )
            .unwrap();
            sim.run();
            sim.world.results[0].as_ref().unwrap().mean_rate()
        };
        let r1 = run(1);
        let r4 = run(4);
        assert!(r4 > 0.8 * r1, "r1 {r1} r4 {r4}");
    }

    #[test]
    fn parallel_streams_win_on_window_limited_path() {
        // 100 ms RTT, 256 KB windows: single stream caps at ~2.6 MB/s;
        // four streams should approach 4x.
        let run = |streams: u32| -> f64 {
            let (mut sim, a, b) = two_hosts(1e9, 50);
            start_transfer(
                &mut sim,
                TransferSpec::new(a, b, 50_000_000)
                    .memory_to_memory()
                    .window(256.0 * 1024.0)
                    .streams(streams),
                record(),
            )
            .unwrap();
            sim.run();
            sim.world.results[0].as_ref().unwrap().mean_rate()
        };
        let r1 = run(1);
        let r4 = run(4);
        assert!(r4 > 3.0 * r1, "1 stream {r1}, 4 streams {r4}");
    }

    #[test]
    fn striping_overcomes_source_nic() {
        // Each source NIC is 12.5 MB/s; WAN is wide. 4 sources ≈ 4x one.
        let build = |n_sources: usize| -> (Sim<World>, Vec<NodeId>, NodeId) {
            let mut topo = Topology::new();
            let r = topo.add_node(Node::router("r"));
            let dst = topo.add_node(Node::host("dst"));
            topo.add_link(r, dst, 1e9, SimDuration::from_millis(5));
            let mut sources = Vec::new();
            for i in 0..n_sources {
                let s = topo.add_node(Node::host(format!("s{i}")).with_nic(12.5e6));
                topo.add_link(s, r, 1e9, SimDuration::from_millis(1));
                sources.push(s);
            }
            (Sim::new(topo, world()), sources, dst)
        };
        let mut rates = Vec::new();
        for n in [1usize, 4] {
            let (mut sim, sources, dst) = build(n);
            start_transfer(
                &mut sim,
                TransferSpec::striped(sources, dst, 100_000_000)
                    .memory_to_memory()
                    .window(1e9),
                record(),
            )
            .unwrap();
            sim.run();
            rates.push(sim.world.results[0].as_ref().unwrap().mean_rate());
        }
        assert!(
            rates[1] > 3.0 * rates[0],
            "striping 4x: {} vs {}",
            rates[1],
            rates[0]
        );
    }

    #[test]
    fn channel_cache_skips_handshake_on_second_transfer() {
        let (mut sim, a, b) = two_hosts(100e6, 20);
        let spec = TransferSpec::new(a, b, 1_000_000)
            .memory_to_memory()
            .cached();
        let spec2 = spec.clone();
        start_transfer(&mut sim, spec, move |s, r| {
            s.world.results.push(r);
            start_transfer(s, spec2, record()).unwrap();
        })
        .unwrap();
        sim.run();
        assert_eq!(sim.world.results.len(), 2);
        let g = &sim.world.gridftp;
        assert_eq!(g.handshakes_performed, 1);
        assert_eq!(g.cache_hits, 1);
        let d1 = {
            let r = sim.world.results[0].as_ref().unwrap();
            r.finished.since(r.started).as_secs_f64()
        };
        let d2 = {
            let r = sim.world.results[1].as_ref().unwrap();
            r.finished.since(r.started).as_secs_f64()
        };
        assert!(
            d2 < d1 * 0.7,
            "cached transfer should be much faster: {d1} vs {d2}"
        );
    }

    #[test]
    fn uncached_transfers_pay_every_time() {
        let (mut sim, a, b) = two_hosts(100e6, 20);
        let spec = TransferSpec::new(a, b, 1_000_000).memory_to_memory();
        let spec2 = spec.clone();
        start_transfer(&mut sim, spec, move |s, r| {
            s.world.results.push(r);
            start_transfer(s, spec2, record()).unwrap();
        })
        .unwrap();
        sim.run();
        assert_eq!(sim.world.gridftp.handshakes_performed, 2);
        assert_eq!(sim.world.gridftp.cache_hits, 0);
    }

    #[test]
    fn name_service_outage_blocks_new_transfers() {
        let (mut sim, a, b) = two_hosts(100e6, 5);
        sim.net_set_name_service(false);
        let err =
            start_transfer(&mut sim, TransferSpec::new(a, b, 1_000_000), record()).unwrap_err();
        assert_eq!(err, TransferError::NameServiceDown);
    }

    #[test]
    fn cached_channel_survives_name_service_outage() {
        // DNS down: existing (cached) channels keep working — the Figure 8
        // behaviour where established flows continued through DNS problems.
        let (mut sim, a, b) = two_hosts(100e6, 5);
        let spec = TransferSpec::new(a, b, 1_000_000)
            .memory_to_memory()
            .cached();
        let spec2 = spec.clone();
        start_transfer(&mut sim, spec, move |s, r| {
            s.world.results.push(r);
            s.net_set_name_service(false);
            start_transfer(s, spec2, record()).unwrap();
        })
        .unwrap();
        sim.run();
        assert_eq!(sim.world.results.len(), 2);
        assert!(sim.world.results[1].is_ok());
    }

    #[test]
    fn progress_and_rate_observable() {
        let (mut sim, a, b) = two_hosts(10e6, 0);
        let h = start_transfer(
            &mut sim,
            TransferSpec::new(a, b, 100_000_000).memory_to_memory(),
            record(),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(5));
        let bytes = transfer_bytes(&mut sim, h);
        assert!(bytes > 40_000_000 && bytes < 60_000_000, "{bytes}");
        let rate = transfer_rate(&mut sim, h);
        assert!((rate - 10e6).abs() < 1e5, "{rate}");
        assert!(!transfer_stalled(&mut sim, h));
    }

    #[test]
    fn stall_detected_and_restart_resumes() {
        let (mut sim, a, b) = two_hosts(10e6, 0);
        let h = start_transfer(
            &mut sim,
            TransferSpec::new(a, b, 100_000_000).memory_to_memory(),
            record(),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(4));
        sim.net.set_link_up(esg_simnet::LinkId(0), false);
        sim.run_until(SimTime::from_secs(6));
        assert!(transfer_stalled(&mut sim, h));
        // Cancel, note the restart marker, bring the net back, resume.
        let done = cancel_transfer(&mut sim, h);
        assert!(done > 30_000_000, "{done}");
        sim.net.set_link_up(esg_simnet::LinkId(0), true);
        let remaining = 100_000_000 - done;
        start_transfer(
            &mut sim,
            TransferSpec::new(a, b, remaining).memory_to_memory(),
            record(),
        )
        .unwrap();
        sim.run();
        let r = sim.world.results[0].as_ref().unwrap();
        assert_eq!(r.bytes, remaining);
    }

    #[test]
    fn protection_adds_overhead_time() {
        let run = |p: esg_gsi::Protection| -> f64 {
            let (mut sim, a, b) = two_hosts(10e6, 0);
            start_transfer(
                &mut sim,
                TransferSpec::new(a, b, 50_000_000)
                    .memory_to_memory()
                    .protection(p),
                record(),
            )
            .unwrap();
            sim.run();
            let r = sim.world.results[0].as_ref().unwrap();
            r.finished.since(r.started).as_secs_f64()
        };
        let clear = run(esg_gsi::Protection::Clear);
        let safe = run(esg_gsi::Protection::Safe);
        assert!(safe > clear, "protection must cost time");
        assert!(safe < clear * 1.01, "but well under 1%");
    }

    #[test]
    fn no_route_fails_cleanly() {
        let mut topo = Topology::new();
        let a = topo.add_node(Node::host("a"));
        let b = topo.add_node(Node::host("b"));
        let mut sim: Sim<World> = Sim::new(topo, world());
        let err = start_transfer(&mut sim, TransferSpec::new(a, b, 1), record()).unwrap_err();
        assert_eq!(err, TransferError::NoRoute { source: a });
    }
}
