//! Fault injection for wide-area experiments.
//!
//! Figure 8 of the paper shows a 14-hour run punctuated by real incidents —
//! "a power failure for the SC network (SCiNet), DNS problems, and backbone
//! problems on the exhibition floor". This module schedules equivalent
//! synthetic faults on the virtual clock:
//!
//! * **Power failure** — a node (or every link at a site) goes down; existing
//!   transfers stall, new connections fail.
//! * **Backbone problem** — a link's capacity is degraded for a while.
//! * **DNS problem** — the control plane is unavailable: *new* connection
//!   setups fail while established flows keep moving. Modeled as a flag on
//!   [`crate::flownet::FlowNet`] that connection-establishing protocols
//!   check.

use crate::kernel::Sim;
use crate::network::{LinkId, NodeId};
use crate::time::{SimDuration, SimTime};

/// What a fault affects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Take a link fully down (fiber cut, switch power loss).
    LinkDown(LinkId),
    /// Take a node down (host/router power failure).
    NodeDown(NodeId),
    /// Degrade a link to the given fraction of its capacity (congestion or
    /// a flapping backbone).
    LinkDegrade(LinkId, f64),
    /// Name service outage: new connections cannot be established, existing
    /// flows continue.
    NameServiceDown,
}

/// A fault with a start time and duration.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    pub at: SimTime,
    pub duration: SimDuration,
    pub kind: FaultKind,
}

impl Fault {
    pub fn new(at: SimTime, duration: SimDuration, kind: FaultKind) -> Self {
        Fault { at, duration, kind }
    }

    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// Schedule a fault (onset and recovery) on the simulator.
pub fn inject<W: 'static>(sim: &mut Sim<W>, fault: Fault) {
    match fault.kind {
        FaultKind::LinkDown(l) => {
            sim.schedule_at(fault.at, move |s| s.net.set_link_up(l, false));
            sim.schedule_at(fault.end(), move |s| s.net.set_link_up(l, true));
        }
        FaultKind::NodeDown(n) => {
            sim.schedule_at(fault.at, move |s| s.net.set_node_up(n, false));
            sim.schedule_at(fault.end(), move |s| s.net.set_node_up(n, true));
        }
        FaultKind::LinkDegrade(l, frac) => {
            sim.schedule_at(fault.at, move |s| {
                let cap = s.net.topo.link(l).capacity;
                // Store the original capacity by restoring it at the end
                // from the closure below, which captured it here.
                s.net.set_link_capacity(l, cap * frac);
            });
            // Recovery must restore the *pre-fault* capacity. Capture it at
            // onset by scheduling recovery from inside the onset event.
            sim.schedule_at(fault.at, move |s| {
                let degraded = s.net.topo.link(l).capacity;
                let original = degraded / frac;
                s.schedule_at(fault.end(), move |s2| {
                    s2.net.set_link_capacity(l, original);
                });
            });
        }
        FaultKind::NameServiceDown => {
            sim.schedule_at(fault.at, |s| s.net_set_name_service(false));
            sim.schedule_at(fault.end(), |s| s.net_set_name_service(true));
        }
    }
}

/// Schedule a whole plan of faults.
pub fn inject_all<W: 'static>(sim: &mut Sim<W>, faults: &[Fault]) {
    for &f in faults {
        inject(sim, f);
    }
}

// Name-service availability rides on the kernel so that the fault injector
// doesn't need to know about the world type.
impl<W> Sim<W> {
    pub fn net_set_name_service(&mut self, up: bool) {
        self.net.name_service_up = up;
    }

    /// Whether new connections can currently be established (DNS reachable).
    pub fn name_service_up(&self) -> bool {
        self.net.name_service_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flownet::{FlowSpec, FlowState};
    use crate::network::{Node, Topology};

    fn two_hosts() -> (Topology, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let l = t.add_link(a, b, 100e6, SimDuration::ZERO);
        (t, a, b, l)
    }

    #[test]
    fn link_outage_stalls_then_recovers() {
        let (t, a, b, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                FaultKind::LinkDown(l),
            ),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Stalled));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn degrade_reduces_then_restores_capacity() {
        let (t, _, _, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::LinkDegrade(l, 0.25),
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!((sim.net.topo.link(l).capacity - 25e6).abs() < 1.0);
        sim.run_until(SimTime::from_secs(3));
        assert!((sim.net.topo.link(l).capacity - 100e6).abs() < 1.0);
    }

    #[test]
    fn node_outage_round_trip() {
        let (t, a, b, _) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::NodeDown(b),
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Stalled));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn name_service_outage_sets_flag() {
        let (t, ..) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        assert!(sim.name_service_up());
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::NameServiceDown,
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!(!sim.name_service_up());
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.name_service_up());
    }

    #[test]
    fn inject_all_schedules_everything() {
        let (t, _, _, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(1),
                    FaultKind::LinkDown(l),
                ),
                Fault::new(
                    SimTime::from_secs(5),
                    SimDuration::from_secs(1),
                    FaultKind::NameServiceDown,
                ),
            ],
        );
        assert_eq!(sim.pending_events(), 4);
    }
}
