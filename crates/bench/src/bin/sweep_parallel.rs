//! A1: aggregate bandwidth vs number of parallel TCP streams.
//! "Parallel data transfer ... can improve aggregate bandwidth" (§6.1).

use esg_bench::sweep;
use esg_core::sweep_parallel_streams;

fn main() {
    let rows = sweep_parallel_streams(&[1, 2, 4, 8, 16, 32]);
    sweep(
        "A1: parallel streams on a lossy WAN (622 Mb/s, 24 ms RTT, p=0.1%)",
        "streams",
        "Mb/s",
        &rows
            .iter()
            .map(|&(n, r)| (n, format!("{r:.1}")))
            .collect::<Vec<_>>(),
    );
    println!("\nshape: ~linear growth while loss-limited, saturating at the");
    println!("link/window ceiling — the paper's rationale for parallelism.");
}
