//! A12: pipelined transfer scheduler — admission control, BDP auto-tuning
//! and stage-ahead prefetch vs. the legacy start-everything-at-once loop.
//!
//! `cargo run --release -p esg-bench --bin request_pipeline [seed] [requests] [out.json]`
//!
//! Thin shim since the scenario-lab migration: the workload, both arms,
//! the equivalence/invariant/speedup checks and the committed
//! `BENCH_request_pipeline.json` artifact are all declared in
//! `crates/lab/scenarios/request_pipeline.json`; this bin just loads that
//! spec, applies the legacy CLI overrides and hands it to the lab runner
//! (which reproduces the pre-migration output bit for bit). Exits
//! non-zero if any gate fails.

use esg_lab::json::Json;
use esg_lab::runner::{run_and_report, RunOptions};
use esg_lab::spec::ScenarioSpec;

fn main() {
    let mut spec = ScenarioSpec::load("request_pipeline").expect("builtin scenario parses");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(seed) = args.first().and_then(|s| s.parse().ok()) {
        spec.seeds = vec![seed];
    }
    if let Some(n) = args.get(1).and_then(|s| s.parse::<i128>().ok()) {
        spec.params.0.push(("requests".into(), Json::Int(n)));
    }
    if let Some(out) = args.get(2) {
        spec.artifact = Some(out.clone());
    }

    // The pre-migration bin always recomputed; keep that contract here
    // (journal resume stays a `lab` CLI feature).
    let opts = RunOptions {
        fresh: true,
        ..RunOptions::default()
    };
    match run_and_report(&spec, &opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("request_pipeline: {e}");
            std::process::exit(1);
        }
    }
}
