//! A10: concurrent-user scaling — the abstract's "potentially thousands of
//! users" motivation, at testbed scale.

use esg_core::user_scaling;

fn main() {
    println!("== A10: N concurrent single-file requests (100 MB, 3 replica sites) ==\n");
    println!(
        "{:>8} {:>18} {:>20}",
        "users", "mean request (s)", "aggregate (Mb/s)"
    );
    for (n, mean, agg) in user_scaling(&[1, 4, 8, 16, 32, 64]) {
        println!("{n:>8} {mean:>18.2} {agg:>20.1}");
    }
    println!("\nshape: replicated collections + NWS selection absorb load —");
    println!("latency grows sub-linearly while aggregate throughput holds.");
}
