//! Property test: ULM export → parse → export is byte-identical for
//! arbitrary events, including hostile keys (spaces, `=`, uppercase) and
//! values containing the full printable-unicode pool.

use esg_netlogger::{LogEvent, NetLog, Value};
use esg_simnet::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ulm_round_trip_is_byte_identical(
        raw in prop::collection::vec(
            (
                0u64..4_000_000_000_000u64,             // nanos, up to ~4000 s
                "[a-z.]{1,12}",                          // event name
                prop::collection::vec(
                    ("\\PC{0,12}", 0u8..3u8, "\\PC{0,16}", -1_000_000i64..1_000_000i64, 0.001f64..1e9),
                    0..5usize,
                ),
            ),
            0..12usize,
        )
    ) {
        let mut raw = raw;
        raw.sort_by_key(|(t, _, _)| *t);
        let mut log = NetLog::new();
        let mut originals = Vec::new();
        for (nanos, name, fields) in raw {
            let mut e = LogEvent::new(SimTime(nanos), name);
            for (key, tag, s, i, x) in fields {
                e = match tag {
                    0 => e.field(key, s),
                    1 => e.field(key, i),
                    _ => e.field(key, x),
                };
            }
            originals.push(e.clone());
            log.push(e);
        }
        let ulm = log.to_ulm();
        let parsed = NetLog::from_ulm(&ulm).unwrap();

        // Byte-identical re-export: the core round-trip property.
        prop_assert_eq!(parsed.to_ulm(), ulm);
        prop_assert_eq!(parsed.len(), log.len());

        // Semantic fidelity: names survive escaping, keys stay as the
        // builder sanitised them, and every value prints the same text.
        for (a, b) in originals.iter().zip(parsed.iter()) {
            prop_assert_eq!(&b.name, &a.name);
            prop_assert_eq!(b.fields.len(), a.fields.len());
            for ((ka, va), (kb, vb)) in a.fields.iter().zip(b.fields.iter()) {
                prop_assert_eq!(ka, kb);
                prop_assert_eq!(va.to_string(), vb.to_string());
                // A string value must come back as the exact same string.
                if let Value::Str(orig) = va {
                    prop_assert_eq!(Some(orig.as_str()), match vb {
                        Value::Str(s) => Some(s.as_str()),
                        // Numeric-looking strings may be reclassified; their
                        // Display was already proven equal above.
                        _ => Some(orig.as_str()),
                    });
                }
            }
        }
    }
}
