//! ChaCha20 stream cipher (RFC 8439) for data-channel confidentiality.
//!
//! GridFTP's GSI layer offers optional confidentiality on the data channel;
//! we implement it with ChaCha20, which is simple, fast and has published
//! test vectors.

/// ChaCha20 keystream generator / encryptor.
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Create a cipher from a 32-byte key and 12-byte nonce, starting at
    /// block `counter` (1 for RFC 8439 AEAD usage, 0 for raw streams).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
        }
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut offset = 0;
        while offset < data.len() {
            let ks = self.block(self.counter);
            self.counter = self.counter.wrapping_add(1);
            let n = (data.len() - offset).min(64);
            for i in 0..n {
                data[offset + i] ^= ks[i];
            }
            offset += n;
        }
    }
}

/// One-shot encryption helper.
pub fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2.
        let key = rfc_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let c = ChaCha20::new(&key, &nonce, 1);
        let block = c.block(1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2.
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
    }

    #[test]
    fn round_trip() {
        let key = rfc_key();
        let nonce = [7u8; 12];
        let original = b"climate model output bytes".to_vec();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn long_message_spans_blocks() {
        let key = rfc_key();
        let nonce = [1u8; 12];
        let original = vec![0xab_u8; 1000];
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 0, &mut data);
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let key = rfc_key();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[1u8; 12], 0, &mut a);
        chacha20_xor(&key, &[2u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }
}
