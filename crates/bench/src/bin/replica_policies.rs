//! A6: replica selection policy comparison.
//! §5: the RM "selects the 'best' replica based on the highest bandwidth";
//! this quantifies what that buys over random/round-robin.

use esg_core::replica_policy_comparison;

fn main() {
    println!("== A6: mean single-file request time by selection policy ==\n");
    let rows = replica_policy_comparison(6);
    for (name, secs) in &rows {
        println!("{name:>22}: {secs:>7.2} s/request");
    }
    let best = rows
        .iter()
        .find(|(n, _)| *n == "nws-best-bandwidth")
        .unwrap()
        .1;
    let worst = rows.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    println!(
        "\nshape: NWS-informed selection ({best:.2} s) beats the worst baseline \
         ({worst:.2} s) by {:.0}%.",
        (1.0 - best / worst) * 100.0
    );
}
