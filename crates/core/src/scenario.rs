//! Topologies and populated testbeds for the paper's experiments.
//!
//! Three scenarios:
//!
//! * [`esg_testbed`] — the Figure 1 multi-site prototype: storage at LBNL
//!   (HPSS behind an HRM), LLNL, ISI, ANL, NCAR and SDSC, a user client,
//!   year-2000 ESnet-class links, NWS sensors, and synthetic climate
//!   datasets registered in the metadata + replica catalogs.
//! * [`sc2000_scinet`] — the Table 1 testbed: 8 GigE workstations in
//!   Dallas and 8 at LBNL, dual-bonded GigE uplinks, an OC-48 WAN of which
//!   1.55 Gb/s was usable, 10–20 ms RTT, software RAID disks, CPUs that
//!   saturate near GigE line rate, and bursty exhibition-floor loss.
//! * [`fig8_testbed`] — the Figure 8 path: one Linux workstation with a
//!   100 Mb/s NIC pushing 2 GB files to Argonne over commodity Internet,
//!   disk-bandwidth limited to ~80 Mb/s.

use crate::world::{EsgSim, EsgWorld};
use esg_cdms::SynthParams;
use esg_gridftp::GridUrl;
use esg_metadata::synthetic_description;
use esg_nws::registry::DEFAULT_PROBE_BYTES;
use esg_simnet::{CpuModel, LinkId, Node, NodeId, Sim, SimDuration, Topology};
use esg_storage::{file_digest_hex, DiskModel, Hrm, RaidArray, RaidLevel, TapeParams};

/// One storage site in the ESG testbed.
#[derive(Debug, Clone)]
pub struct Site {
    pub host: String,
    pub node: NodeId,
    /// Whether the site's data lives on tape behind an HRM.
    pub tape_backed: bool,
}

/// The populated Figure 1 testbed.
pub struct EsgTestbed {
    pub sim: EsgSim,
    pub client: NodeId,
    pub sites: Vec<Site>,
}

/// Year-2000 workstation disk array: 4-way software RAID-0 of SCSI disks.
fn site_disk() -> RaidArray {
    RaidArray::new(DiskModel::year2000_scsi(), 4, RaidLevel::Raid0)
}

/// Build the multi-site ESG prototype testbed.
///
/// Sites hang off a national backbone router ("ESnet") with per-site access
/// capacities and latencies representative of 2000-era connectivity from a
/// West-coast client.
pub fn esg_testbed(seed: u64) -> EsgTestbed {
    let mut topo = Topology::new();
    let backbone = topo.add_node(Node::router("esnet"));

    let mk_host = |topo: &mut Topology, name: &str| -> NodeId {
        let disk = site_disk();
        topo.add_node(
            Node::host(name)
                .with_nic(1e9 / 8.0)
                .with_cpu(CpuModel::year2000_workstation())
                .with_disk(disk.read_rate(), disk.write_rate()),
        )
    };

    // (hostname, access bytes/sec, one-way latency ms, tape?)
    let site_specs: [(&str, f64, u64, bool); 6] = [
        ("hpss.lbl.gov", 622e6 / 8.0, 4, true), // LBNL + HPSS
        ("pcmdi.llnl.gov", 622e6 / 8.0, 5, false),
        ("jupiter.isi.edu", 155e6 / 8.0, 9, false),
        ("pitcairn.mcs.anl.gov", 622e6 / 8.0, 25, false),
        ("dataportal.ucar.edu", 155e6 / 8.0, 15, false),
        ("srb.sdsc.edu", 155e6 / 8.0, 8, false),
    ];

    // The demo client sat on a well-connected site LAN (the SC'00 floor
    // had OC-48): give it OC-12 access so site differences are visible.
    let client = mk_host(&mut topo, "vcdat.desktop");
    topo.add_link(client, backbone, 622e6 / 8.0, SimDuration::from_millis(2));

    let mut sites = Vec::new();
    for (host, cap, lat_ms, tape) in site_specs {
        let node = mk_host(&mut topo, host);
        topo.add_link(node, backbone, cap, SimDuration::from_millis(lat_ms));
        sites.push(Site {
            host: host.to_string(),
            node,
            tape_backed: tape,
        });
    }

    let mut world = EsgWorld::default();
    world.rm.selector = esg_replica::ReplicaSelector::new(esg_replica::Policy::BestBandwidth, seed);
    for site in &sites {
        world.rm.add_host(site.host.clone(), site.node);
        if site.tape_backed {
            world
                .rm
                .add_hrm(site.host.clone(), Hrm::new(TapeParams::default(), 1 << 38));
        }
    }

    let sim = Sim::new(topo, world);
    EsgTestbed { sim, client, sites }
}

/// Standard synthetic dataset shape used throughout the experiments:
/// 64×128 grid, 6-hourly steps. One step of all three variables is
/// ~100 KB; real PCM chunks were GBs — scale via `steps`.
pub fn standard_synth(steps: usize, seed: u64) -> SynthParams {
    SynthParams {
        lat_points: 64,
        lon_points: 128,
        time_steps: steps,
        hours_per_step: 6.0,
        seed,
    }
}

impl EsgTestbed {
    /// Register a synthetic dataset: metadata catalog entry, replica
    /// catalog collection, logical files, and replicas at the given sites
    /// (every listed site holds every chunk; pass partial lists to model
    /// partial collections).
    pub fn publish_dataset(
        &mut self,
        name: &str,
        total_steps: usize,
        steps_per_file: usize,
        bytes_per_step: u64,
        at_sites: &[usize],
    ) {
        let desc = synthetic_description(name, total_steps, steps_per_file, bytes_per_step);
        let collection = desc.collection.clone();
        self.sim.world.metadata.register(&desc).unwrap();
        let rm = &mut self.sim.world.rm;
        rm.catalog.create_collection(&collection).unwrap();
        let files: Vec<_> = self.sim.world.metadata.all_files(name).unwrap().to_vec();
        for f in &files {
            self.sim
                .world
                .rm
                .catalog
                .add_logical_file(&collection, &f.name, f.size)
                .unwrap();
            // Pin the expected content digest so every delivery is verified
            // end-to-end (block checksums + ERET repair on mismatch).
            let key = format!("{collection}/{}", f.name);
            self.sim
                .world
                .rm
                .catalog
                .set_file_digest(&collection, &f.name, &file_digest_hex(&key, f.size))
                .unwrap();
        }
        let file_names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        for &si in at_sites {
            let site = &self.sites[si];
            self.sim
                .world
                .rm
                .catalog
                .register_location(
                    &collection,
                    &site.host,
                    &GridUrl::new(site.host.clone(), format!("/data/{name}")),
                    &file_names,
                )
                .unwrap();
        }
    }

    /// Start NWS sensors from every site to the client (the measurements
    /// replica selection needs), probing every `period`.
    pub fn start_nws(&mut self, period: SimDuration) {
        for site in &self.sites {
            esg_nws::start_sensor(
                &mut self.sim,
                site.node,
                self.client,
                period,
                DEFAULT_PROBE_BYTES,
            );
        }
    }
}

/// The SC2000 SciNet testbed for Table 1.
pub struct Sc2000Testbed {
    pub sim: EsgSim,
    /// The eight Dallas servers.
    pub servers: Vec<NodeId>,
    /// The eight LBNL receivers.
    pub receivers: Vec<NodeId>,
    /// The OC-48 span (for fault/congestion injection).
    pub wan: LinkId,
}

/// Configuration for [`sc2000_scinet`].
#[derive(Debug, Clone, Copy)]
pub struct Sc2000Config {
    pub hosts_per_side: usize,
    /// Usable WAN capacity, bytes/sec. The paper's network was rated
    /// 2.5 Gb/s with 1.5 Gb/s allotted; SciNet instrumentation recorded a
    /// 1.55 Gb/s peak — we use that as the usable ceiling.
    pub wan_capacity: f64,
    /// One-way WAN latency (paper: RTT "in the 10-20 ms range").
    pub wan_one_way: SimDuration,
    /// Baseline packet loss on the exhibition-floor path. The SC show
    /// floor was shared and bursty; this is the calibration knob that sets
    /// per-stream steady throughput (via the Mathis bound).
    pub base_loss: f64,
}

impl Default for Sc2000Config {
    fn default() -> Self {
        Sc2000Config {
            hosts_per_side: 8,
            wan_capacity: 1.55e9 / 8.0,
            wan_one_way: SimDuration::from_millis(7),
            base_loss: 0.0035,
        }
    }
}

/// Build the Table 1 testbed.
pub fn sc2000_scinet(cfg: Sc2000Config) -> Sc2000Testbed {
    let mut topo = Topology::new();
    let dallas = topo.add_node(Node::router("scinet-dallas"));
    let lbl = topo.add_node(Node::router("lbl-exit"));
    let wan = topo.add_link(dallas, lbl, cfg.wan_capacity, cfg.wan_one_way);
    topo.set_link_loss(wan, cfg.base_loss);

    let disk = site_disk(); // software RAID "to ensure disk was not the bottleneck"
    let mut servers = Vec::new();
    let mut receivers = Vec::new();
    for i in 0..cfg.hosts_per_side {
        let s = topo.add_node(
            Node::host(format!("dallas{i}"))
                .with_nic(1e9 / 8.0)
                .with_cpu(CpuModel::year2000_workstation())
                .with_disk(disk.read_rate(), disk.write_rate()),
        );
        // Cluster switch to exit router: dual-bonded GigE shared by the
        // cluster, but each host also has its own GigE access.
        topo.add_link(s, dallas, 2e9 / 8.0, SimDuration::from_micros(100));
        servers.push(s);
        let r = topo.add_node(
            Node::host(format!("lbl{i}"))
                .with_nic(1e9 / 8.0)
                .with_cpu(CpuModel::year2000_workstation())
                .with_disk(disk.read_rate(), disk.write_rate()),
        );
        topo.add_link(r, lbl, 2e9 / 8.0, SimDuration::from_micros(100));
        receivers.push(r);
    }

    Sc2000Testbed {
        sim: Sim::new(topo, EsgWorld::default()),
        servers,
        receivers,
        wan,
    }
}

/// The Figure 8 path: one workstation at the Dallas convention center
/// pushing to a workstation at Argonne over commodity Internet.
pub struct Fig8Testbed {
    pub sim: EsgSim,
    pub src: NodeId,
    pub dst: NodeId,
    /// The commodity-Internet span (fault target).
    pub wan: LinkId,
    /// SCinet floor link at the source (power-failure target).
    pub floor: LinkId,
}

/// Build the Figure 8 testbed. "Bandwidth between the two hosts reaches
/// approximately 80 Mbs ... most likely due to disk bandwidth limitations":
/// the NIC is 100 Mb/s, the source disk streams at ~10 MB/s.
pub fn fig8_testbed() -> Fig8Testbed {
    let mut topo = Topology::new();
    let src = topo.add_node(
        Node::host("scinet-ws")
            .with_nic(100e6 / 8.0)
            .with_cpu(CpuModel::year2000_workstation())
            .with_disk(10.2e6, 10.2e6),
    );
    let floor_router = topo.add_node(Node::router("scinet-floor"));
    let internet = topo.add_node(Node::router("commodity-internet"));
    let dst = topo.add_node(
        Node::host("pitcairn.mcs.anl.gov")
            .with_nic(100e6 / 8.0)
            .with_cpu(CpuModel::year2000_workstation())
            .with_disk(20e6, 20e6),
    );
    let floor = topo.add_link(src, floor_router, 100e6 / 8.0, SimDuration::from_millis(1));
    let wan = topo.add_link(
        floor_router,
        internet,
        155e6 / 8.0,
        SimDuration::from_millis(12),
    );
    topo.set_link_loss(wan, 0.0004); // commodity Internet, November 2000
    topo.add_link(internet, dst, 100e6 / 8.0, SimDuration::from_millis(12));

    Fig8Testbed {
        sim: Sim::new(topo, EsgWorld::default()),
        src,
        dst,
        wan,
        floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_gridftp::simxfer::{start_transfer, TransferSpec};
    use esg_simnet::SimTime;

    #[test]
    fn esg_testbed_shape() {
        let tb = esg_testbed(1);
        assert_eq!(tb.sites.len(), 6);
        // Every site reachable from the client.
        for site in &tb.sites {
            assert!(tb.sim.net.path_rtt(site.node, tb.client).is_some());
        }
        // HRM present at the tape site only.
        assert!(tb.sim.world.rm.hrms.contains_key("hpss.lbl.gov"));
        assert_eq!(tb.sim.world.rm.hrms.len(), 1);
    }

    #[test]
    fn publish_dataset_wires_catalogs() {
        let mut tb = esg_testbed(1);
        tb.publish_dataset("pcm_b06.61", 64, 8, 10_000_000, &[0, 1, 3]);
        let files = tb
            .sim
            .world
            .metadata
            .resolve("pcm_b06.61", "tas", (0, 16))
            .unwrap();
        assert_eq!(files.len(), 2);
        let collection = tb.sim.world.metadata.collection_of("pcm_b06.61").unwrap();
        let reps = tb
            .sim
            .world
            .rm
            .catalog
            .lookup_replicas(&collection, &files[0].name)
            .unwrap();
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn nws_sensors_measure_all_sites() {
        let mut tb = esg_testbed(1);
        tb.start_nws(SimDuration::from_secs(30));
        tb.sim.run_until(SimTime::from_secs(120));
        for site in &tb.sites {
            assert!(
                tb.sim
                    .world
                    .nws
                    .forecast_bandwidth(site.node, tb.client)
                    .is_some(),
                "no forecast for {}",
                site.host
            );
        }
    }

    #[test]
    fn sc2000_single_stream_rate_is_mathis_bound() {
        let cfg = Sc2000Config::default();
        let mut tb = sc2000_scinet(cfg);
        let (src, dst) = (tb.servers[0], tb.receivers[0]);
        start_transfer(
            &mut tb.sim,
            TransferSpec::new(src, dst, 256_000_000),
            |s, r| {
                let rate = r.unwrap().mean_rate();
                s.world.meter.add(SimTime::ZERO, rate);
            },
        )
        .unwrap();
        tb.sim.run();
        // Mathis with RTT ~14.4 ms, p=0.0035: ~2.1 MB/s (≈17 Mb/s).
        let rate = tb.sim.world.meter.bytes_at(SimTime::MAX);
        assert!(
            rate > 1.2e6 && rate < 3.5e6,
            "single-stream rate {rate} outside calibration band"
        );
    }

    #[test]
    fn fig8_rate_is_disk_limited_near_80mbps() {
        let mut tb = fig8_testbed();
        let (src, dst) = (tb.src, tb.dst);
        start_transfer(
            &mut tb.sim,
            TransferSpec::new(src, dst, 2_000_000_000).streams(8),
            |s, r| {
                let rate = r.unwrap().mean_rate();
                s.world.meter.add(SimTime::ZERO, rate);
            },
        )
        .unwrap();
        tb.sim.run();
        let rate = tb.sim.world.meter.bytes_at(SimTime::MAX);
        let mbps = rate * 8.0 / 1e6;
        assert!(
            mbps > 65.0 && mbps < 90.0,
            "Figure 8 plateau should be ~80 Mb/s, got {mbps}"
        );
    }
}
