//! # esg-nws — Network Weather Service
//!
//! "NWS is a distributed system that periodically monitors and dynamically
//! forecasts the performance that various network and computational
//! resources can deliver over a given time interval" (§5). The request
//! manager uses its bandwidth forecasts to pick the best replica.
//!
//! * [`forecast`] — Wolski's predictor portfolio (last value, means,
//!   medians, exponential smoothing) and the adaptive meta-forecaster that
//!   answers with the historically best method.
//! * [`registry`] — per-path measurement store + the periodic probe sensor
//!   that runs on the simulator.
//! * [`mds`] — publication of forecasts into an LDAP directory, matching
//!   how the prototype accessed NWS "by the MDS information service".

pub mod forecast;
pub mod mds;
pub mod registry;

pub use forecast::{
    AdaptiveForecaster, ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMean,
    SlidingMedian,
};
pub use registry::{start_cpu_sensor, start_sensor, HasNws, NwsRegistry, DEFAULT_PROBE_BYTES};
