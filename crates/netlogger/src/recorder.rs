//! Metrics flight recorder: periodic, deterministic, delta-encoded
//! snapshots of a [`MetricsRegistry`] as byte-stable JSONL.
//!
//! One end-of-run `to_json()` blob says where a campaign *ended up*; the
//! flight recorder says how it *got there*. Each [`snapshot`] call flattens
//! the registry to a sorted key → value map and appends one JSONL line
//! holding only the keys that changed since the previous snapshot (the
//! first line is the full state). Replaying `set` maps in order
//! reconstructs every intermediate state, which is what lets the campaign
//! monitor render live stall/phase summaries from the tape and what lets CI
//! gate byte-stability: same seed → identical snapshot stream, because
//! every input is sim-time-driven and the flattening order is `BTreeMap`'s.
//!
//! [`snapshot`]: FlightRecorder::snapshot

use crate::metrics::MetricsRegistry;
use esg_simnet::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Delta-encoding snapshot recorder over a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    /// Rendered value per key as of the last snapshot — the baseline the
    /// next delta is computed against, and the "current view" accessor.
    last: BTreeMap<String, String>,
    lines: Vec<String>,
}

impl FlightRecorder {
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Flatten a registry into sorted `key → rendered-number` pairs:
    /// counters and gauges by name, histograms through `.count` / `.sum` /
    /// `.min` / `.max` / `.p50` / `.p99` suffixes (the same fields
    /// `to_json` exports). Counters are rendered last so they win name
    /// collisions, matching [`MetricsRegistry::value`] precedence.
    fn flatten(reg: &MetricsRegistry) -> BTreeMap<String, String> {
        let mut flat = BTreeMap::new();
        for (k, v) in reg.gauges() {
            flat.insert(k.to_string(), format!("{v}"));
        }
        for (k, h) in reg.histograms() {
            flat.insert(format!("{k}.count"), format!("{}", h.count()));
            flat.insert(format!("{k}.sum"), format!("{}", h.sum()));
            flat.insert(format!("{k}.min"), format!("{}", h.min().unwrap_or(0.0)));
            flat.insert(format!("{k}.max"), format!("{}", h.max().unwrap_or(0.0)));
            flat.insert(
                format!("{k}.p50"),
                format!("{}", h.quantile(0.5).unwrap_or(0.0)),
            );
            flat.insert(
                format!("{k}.p99"),
                format!("{}", h.quantile(0.99).unwrap_or(0.0)),
            );
        }
        for (k, v) in reg.counters() {
            flat.insert(k.to_string(), format!("{v}"));
        }
        flat
    }

    /// Capture one snapshot at sim time `t`, appending (and returning) one
    /// JSONL line: `{"t": <secs>, "set": {<changed key>: <value>, ...}}`.
    /// The first snapshot's `set` is the full flattened state; later ones
    /// carry only keys whose rendered value changed. An unchanged registry
    /// still appends a line (empty `set`) so the cadence itself is on tape.
    pub fn snapshot(&mut self, t: SimTime, reg: &MetricsRegistry) -> &str {
        let flat = Self::flatten(reg);
        let mut line = format!("{{\"t\": {:.6}, \"set\": {{", t.as_secs_f64());
        let mut first = true;
        for (k, v) in &flat {
            if self.last.get(k) == Some(v) {
                continue;
            }
            if !first {
                line.push_str(", ");
            }
            first = false;
            write!(line, "\"{k}\": {v}").unwrap();
        }
        line.push_str("}}");
        self.last = flat;
        self.lines.push(line);
        self.lines.last().unwrap()
    }

    /// All lines recorded so far, in capture order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The full tape as newline-terminated JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            s.push_str(l);
            s.push('\n');
        }
        s
    }

    /// Current merged view (every key's latest rendered value) — what a
    /// reader replaying the whole tape would hold.
    pub fn current(&self) -> &BTreeMap<String, String> {
        &self.last
    }

    /// Latest rendered value of one key, parsed as f64.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.last.get(key)?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_snapshot_full_then_deltas() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("xfers", 2);
        reg.gauge_set("inflight", 1.5);
        let mut rec = FlightRecorder::new();
        let l0 = rec.snapshot(SimTime::from_secs(10), &reg).to_string();
        assert_eq!(
            l0,
            "{\"t\": 10.000000, \"set\": {\"inflight\": 1.5, \"xfers\": 2}}"
        );
        // Only the changed key appears in the second line.
        reg.counter_add("xfers", 3);
        let l1 = rec.snapshot(SimTime::from_secs(20), &reg).to_string();
        assert_eq!(l1, "{\"t\": 20.000000, \"set\": {\"xfers\": 5}}");
        // No change → empty set, cadence still on tape.
        let l2 = rec.snapshot(SimTime::from_secs(30), &reg).to_string();
        assert_eq!(l2, "{\"t\": 30.000000, \"set\": {}}");
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.value("xfers"), Some(5.0));
        assert_eq!(rec.value("inflight"), Some(1.5));
    }

    #[test]
    fn histograms_flatten_to_summary_fields() {
        let mut reg = MetricsRegistry::new();
        reg.observe("lat", 0.5);
        reg.observe("lat", 2.0);
        let mut rec = FlightRecorder::new();
        let line = rec.snapshot(SimTime::ZERO, &reg).to_string();
        assert!(line.contains("\"lat.count\": 2"));
        assert!(line.contains("\"lat.sum\": 2.5"));
        assert!(line.contains("\"lat.min\": 0.5"));
        assert!(line.contains("\"lat.max\": 2"));
        assert_eq!(rec.value("lat.count"), Some(2.0));
    }

    #[test]
    fn tape_is_byte_stable_across_build_order() {
        let build = |swap: bool| {
            let mut reg = MetricsRegistry::new();
            let mut rec = FlightRecorder::new();
            if swap {
                reg.gauge_set("g", 2.0);
                reg.counter_add("c", 1);
            } else {
                reg.counter_add("c", 1);
                reg.gauge_set("g", 2.0);
            }
            rec.snapshot(SimTime::from_secs(1), &reg);
            reg.counter_add("c", 1);
            rec.snapshot(SimTime::from_secs(2), &reg);
            rec.to_jsonl()
        };
        assert_eq!(build(false), build(true));
        assert!(build(false).ends_with('\n'));
    }
}
