//! The VCDAT-like client: attribute selection → transfer → analysis →
//! visualization.
//!
//! Reproduces the end-to-end flow of §7: "we selected parameters to be
//! visualized using the user interface shown in Figure 2 ... the CDAT
//! system consulted its metadata database and identified the logical files
//! of interest ... passed these logical file names to the request manager,
//! which performed replica selection and initiated gridFTP data transfers
//! ... Once data transfer was complete, the CDAT system analyzed and
//! visualized the desired data, producing output as shown in Figure 3."
//!
//! Content note: the simulator moves byte *counts*, not file contents, so
//! after the simulated transfer completes the client materializes the
//! dataset with the same deterministic generator the publisher used — the
//! analysis therefore runs on exactly the bytes that would have arrived.
//! (The loopback integration tests transfer real file contents.)

use crate::scenario::EsgTestbed;
use crate::world::EsgSim;
use esg_cdms::{ascii_map, time_mean, Field2d, Hyperslab, Stats, SynthParams};
use esg_reqman::{submit_request, RequestOutcome};
use esg_simnet::SimTime;

pub use esg_cdms::viz::ascii_map as render_field;

/// What the analysis step produces (the Figure 3 deliverable).
#[derive(Debug, Clone)]
pub struct AnalysisProduct {
    pub dataset: String,
    pub variable: String,
    /// Time-mean field over the requested steps.
    pub field: Field2d,
    /// ASCII rendering of the field.
    pub ascii: String,
    pub stats: Stats,
}

/// Client-facing errors.
#[derive(Debug)]
pub enum ClientError {
    Metadata(esg_metadata::MetadataError),
    Cdms(esg_cdms::ModelError),
    /// The request did not complete within the simulation horizon.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Metadata(e) => write!(f, "metadata: {e}"),
            ClientError::Cdms(e) => write!(f, "cdms: {e}"),
            ClientError::TimedOut => write!(f, "request did not complete"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<esg_metadata::MetadataError> for ClientError {
    fn from(e: esg_metadata::MetadataError) -> Self {
        ClientError::Metadata(e)
    }
}

impl From<esg_cdms::ModelError> for ClientError {
    fn from(e: esg_cdms::ModelError) -> Self {
        ClientError::Cdms(e)
    }
}

/// Render the Figure 2 selection screen for a dataset: its attributes and
/// variables with descriptions.
pub fn selection_screen(sim: &EsgSim, dataset: &str) -> Result<String, ClientError> {
    use std::fmt::Write;
    let vars = sim.world.metadata.variables(dataset)?;
    let mut out = String::new();
    writeln!(out, "=== VCDAT — dataset {dataset} ===").unwrap();
    writeln!(out, "{:<12} {:<10} description", "variable", "units").unwrap();
    for v in &vars {
        writeln!(out, "{:<12} {:<10} {}", v.name, v.units, v.description).unwrap();
    }
    Ok(out)
}

/// The full interactive loop: select → resolve → request → analyze.
///
/// `synth` must match the generator parameters the dataset was published
/// with (same seed ⇒ same content). `horizon` bounds the simulated wait.
pub fn fetch_and_analyze(
    tb: &mut EsgTestbed,
    dataset: &str,
    variable: &str,
    steps: (usize, usize),
    synth: SynthParams,
    horizon: SimTime,
) -> Result<(RequestOutcome, AnalysisProduct), ClientError> {
    // 1. Metadata: attributes → logical files.
    let files = tb.sim.world.metadata.resolve(dataset, variable, steps)?;
    let collection = tb.sim.world.metadata.collection_of(dataset)?;

    // 2. Request manager: logical files → transfers.
    let request: Vec<(String, String)> = files
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();
    let req_id = submit_request(&mut tb.sim, tb.client, request, |s, outcome| {
        s.world.outcomes.push(outcome);
    });
    tb.sim.run_until(horizon);
    let outcome = tb
        .sim
        .world
        .outcomes
        .iter()
        .find(|o| o.id == req_id)
        .cloned()
        .ok_or(ClientError::TimedOut)?;

    // 3. Analysis + visualization on the materialized content.
    let full = esg_cdms::generate(dataset, synth);
    let var = full.variable(variable)?;
    let slab = Hyperslab::all(&full, var).narrow(0, steps.0, steps.1 - steps.0);
    let sub = esg_cdms::extract_dataset(&full, variable, &slab)?;
    let field = time_mean(&sub, variable)?;
    let ascii = ascii_map(&field, 16);
    let stats = esg_cdms::stats(&sub, variable)?;
    Ok((
        outcome,
        AnalysisProduct {
            dataset: dataset.to_string(),
            variable: variable.to_string(),
            field,
            ascii,
            stats,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{esg_testbed, standard_synth};
    use esg_simnet::SimDuration;

    fn published_testbed() -> (EsgTestbed, SynthParams) {
        let mut tb = esg_testbed(3);
        let synth = standard_synth(32, 99);
        // ~100 KB per step per variable ⇒ bytes_per_step ≈ 3 * 32 KB... use
        // the true serialized size per step for honesty.
        let per_step = 3 * synth.lat_points as u64 * synth.lon_points as u64 * 4;
        tb.publish_dataset("pcm_b06.61", 32, 8, per_step * 100, &[1, 2]);
        tb.start_nws(SimDuration::from_secs(20));
        // Warm NWS before requesting.
        tb.sim.run_until(SimTime::from_secs(90));
        (tb, synth)
    }

    #[test]
    fn selection_screen_lists_variables() {
        let (tb, _) = published_testbed();
        let screen = selection_screen(&tb.sim, "pcm_b06.61").unwrap();
        assert!(screen.contains("tas"));
        assert!(screen.contains("surface air temperature"));
        assert!(screen.contains("mm/day"));
        assert!(selection_screen(&tb.sim, "missing").is_err());
    }

    #[test]
    fn end_to_end_fetch_analyze_visualize() {
        let (mut tb, synth) = published_testbed();
        let (outcome, product) = fetch_and_analyze(
            &mut tb,
            "pcm_b06.61",
            "tas",
            (8, 24),
            synth,
            SimTime::from_secs(4000),
        )
        .unwrap();
        // Two 8-step chunks requested.
        assert_eq!(outcome.files.len(), 2);
        assert!(outcome.files.iter().all(|f| f.done));
        // Physically plausible analysis output.
        assert!(product.stats.min > 200.0 && product.stats.max < 340.0);
        assert_eq!(product.field.lat.len(), 64);
        assert!(!product.ascii.is_empty());
        assert_eq!(product.ascii.lines().count(), 16);
    }

    #[test]
    fn unknown_variable_fails_before_transfer() {
        let (mut tb, synth) = published_testbed();
        let err = fetch_and_analyze(
            &mut tb,
            "pcm_b06.61",
            "salinity",
            (0, 8),
            synth,
            SimTime::from_secs(100),
        )
        .unwrap_err();
        assert!(matches!(err, ClientError::Metadata(_)));
    }
}
