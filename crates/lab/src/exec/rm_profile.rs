//! `rm_profile` executor: where does the wall go in an n-files-per-round
//! replication campaign?
//!
//! One trial drives the same campaign as `rm_scaling`'s indexed arm with
//! the whole streaming observability plane switched on — online lifeline
//! analyzer, live stall probes, metrics flight recorder — and the
//! [`esg_simnet::profile`] subsystem profiler wrapped around the single
//! `run_until` that does the work. The committed `BENCH_profile.json`
//! answers ROADMAP item 1's question with numbers: how much of the wall is
//! kernel shell, allocator, RM bookkeeping, per-transfer polling
//! (`net_poll` — the wall `rm_scaling` found), journal I/O, and event
//! callbacks — with the profiler's tiling guaranteeing the shares sum to
//! what was measured.
//!
//! Every trial runs **twice** and holds the two runs to byte-identical
//! flight tapes and traces (`snapshot_match`), and holds the online
//! analyzer to the offline `LifelineSet::from_log` pass over the finished
//! trace (`live_match`): same phase totals, same stall set, same critical
//! paths, same tiling verdicts.

use super::TrialCtx;
use crate::journal::{AuxFile, MetricValue, TrialKey, TrialRecord};
use crate::spec::ScenarioSpec;
use esg_netlogger::LifelineSet;
use esg_reqman::{start_campaign, CampaignOutcome, CampaignSpec};
use esg_simnet::prelude::inject_all;
use esg_simnet::profile;
use esg_simnet::{SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::rc::Rc;

/// Same source dataset shape as `rm_scaling`: replicated at two OC-12
/// sites, pulled to the OC-3 portal.
const DS: &str = "pcm_rmprof.b06";
const TARGET_SITE: usize = 4;

fn num(v: f64) -> MetricValue {
    MetricValue::Num(v)
}

fn tmp_path(ctx: &TrialCtx, tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "esg-lab-{}-{}-s{}-r{}-{tag}.{ext}",
        ctx.spec.name, ctx.variant, ctx.seed, ctx.rep
    ))
}

/// One instrumented run's harvest.
struct ProfRun {
    outcome: CampaignOutcome,
    trace_sha256: String,
    tape: String,
    live_match: bool,
    obs_stalls: u64,
    stall_events: u64,
    report: profile::ProfileReport,
    /// `reg.`-prefixed spec metrics harvested after `import_profile`.
    reg: Vec<(String, f64)>,
}

/// Does the online analyzer's view of the finished trace match the
/// offline pass bit-for-bit? Compared through `Debug` renderings so every
/// field (ids, times, bytes, open flags) participates in the equality.
fn live_matches_offline(
    live: &esg_netlogger::LiveLifelines,
    offline: &LifelineSet,
    stall_s: f64,
) -> bool {
    let snap = live.snapshot();
    let view = |s: &LifelineSet| {
        (
            format!("{:?}", s.lifelines),
            format!("{:?}", s.orphans),
            format!("{:?}", s.detect_stalls(stall_s)),
            format!("{:?}", s.critical_paths()),
            s.trace_end,
        )
    };
    if view(&snap) != view(offline) {
        return false;
    }
    // The incremental per-lifeline totals must agree with each offline
    // lifeline's closed-phase attribution (empty maps both ways count).
    offline.lifelines.iter().all(|l| {
        live.file_phase_totals(l.request, &l.file)
            .cloned()
            .unwrap_or_default()
            == l.phase_totals()
    }) && snap.lifelines.iter().all(|l| {
        l.is_complete()
            == offline
                .lifeline(l.request, &l.file)
                .is_some_and(|o| o.is_complete())
    })
}

fn run_once(ctx: &TrialCtx, tag: &str) -> Result<ProfRun, String> {
    let p = &ctx.params;
    let n = p.usize("n", 1000);
    let bpf = p.u64("bytes_per_file", 1_000_000);
    let max_active = p.usize("max_active", 24);
    let batch = match p.usize("batch_files", 0) {
        0 => n,
        b => b,
    };
    let ckpt_every = p.u64("checkpoint_every_s", 1);
    let recorder_every = p.u64("recorder_every_s", 30);
    let stall_s = p.f64("stall_threshold_s", 120.0);
    let horizon = SimTime::from_secs(p.u64("horizon_s", 6000));

    let mut tb = esg_core::esg_testbed(ctx.seed);
    tb.publish_dataset(DS, n, 1, bpf, &[1, 3]);
    {
        let rm = &mut tb.sim.world.rm;
        rm.scheduler.indexed = true;
        rm.scheduler.max_active_per_request = max_active;
        rm.enable_live_analysis(SimDuration::from_secs_f64(stall_s));
    }
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let faults = super::spec_faults(&ctx.spec.faults, &tb.sites)?;
    inject_all(&mut tb.sim, &faults);

    let coll = tb
        .sim
        .world
        .metadata
        .collection_of(DS)
        .map_err(|e| format!("collection_of: {e}"))?;
    let target = tb.sites[TARGET_SITE].host.clone();
    let ckpt = tmp_path(ctx, tag, "ckpt");
    let tape = tmp_path(ctx, tag, "jsonl");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&tape);

    let mut spec = CampaignSpec::new("rm-profile", coll, target);
    spec.batch_files = batch;
    spec.checkpoint = Some(ckpt.clone());
    spec.checkpoint_every = SimDuration::from_secs(ckpt_every);
    spec.recorder = Some(tape.clone());
    spec.recorder_every = SimDuration::from_secs(recorder_every);
    let outcome: Rc<RefCell<Option<CampaignOutcome>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&outcome);
    tb.sim.schedule_at(SimTime::from_secs(105), move |sim| {
        start_campaign(sim, spec, move |_, o| *sink.borrow_mut() = Some(o));
    });

    profile::start();
    tb.sim.run_until(horizon);
    let report = profile::stop();

    let outcome = outcome
        .borrow_mut()
        .take()
        .ok_or_else(|| format!("campaign did not finish by horizon (n={n})"))?;
    let tape_body =
        std::fs::read_to_string(&tape).map_err(|e| format!("read {}: {e}", tape.display()))?;
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&tape);

    let world = &mut tb.sim.world;
    let offline = LifelineSet::from_log(&world.rm.log);
    let live = world.rm.log.live().ok_or("live analyzer not attached")?;
    let live_match = live_matches_offline(live, &offline, stall_s)
        && live.events_seen() == world.rm.log.len() as u64;
    let obs_stalls = world.rm.metrics.counter("obs.stalls");
    let stall_events = world.rm.log.named("obs.stall").count() as u64;
    let trace_sha256 = crate::sha_hex(&world.rm.log.to_ulm());

    // Deterministic profiler counts flow into the registry (`profile.*`);
    // spec-declared metrics are harvested from the unified snapshot.
    world.rm.metrics.import_profile(&report);
    let reg = ctx
        .spec
        .metrics
        .iter()
        .filter_map(|name| world.rm.metrics.value(name).map(|v| (name.clone(), v)))
        .collect();

    Ok(ProfRun {
        outcome,
        trace_sha256,
        tape: tape_body,
        live_match,
        obs_stalls,
        stall_events,
        report,
        reg,
    })
}

pub fn run(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let n = ctx.params.usize("n", 1000);

    let a = run_once(ctx, "a")?;
    let b = run_once(ctx, "b")?;
    let snapshot_match = a.tape == b.tape && a.trace_sha256 == b.trace_sha256;

    // The committed flight tape rides along as an aux artifact.
    let tape_path = ctx
        .spec
        .artifact
        .as_deref()
        .unwrap_or("BENCH_profile.json")
        .replace(".json", &format!("_tape_{}.jsonl", ctx.variant));
    std::fs::write(&tape_path, &a.tape).map_err(|e| format!("write {tape_path}: {e}"))?;
    let tape_sha = crate::sha_hex(&a.tape);

    let r = &a.report;
    let total_ms = r.total_s * 1e3;
    let attributed_ms = r.attributed_s() * 1e3;
    let as01 = |v: bool| num(if v { 1.0 } else { 0.0 });

    let mut metrics = vec![
        ("n".into(), num(n as f64)),
        ("files_total".into(), num(a.outcome.files_total as f64)),
        (
            "files_delivered".into(),
            num(a.outcome.files_delivered as f64),
        ),
        ("rounds".into(), num(a.outcome.rounds as f64)),
        ("live_match".into(), as01(a.live_match && b.live_match)),
        ("snapshot_match".into(), as01(snapshot_match)),
        ("obs_stalls".into(), num(a.obs_stalls as f64)),
        ("obs_stall_events".into(), num(a.stall_events as f64)),
        ("recorder_lines".into(), num(a.tape.lines().count() as f64)),
        (
            "net_poll_calls".into(),
            num(r.count_of("net_poll.calls") as f64),
        ),
        (
            "kernel_events".into(),
            num(r.count_of("kernel.events") as f64),
        ),
        (
            "flow_callbacks".into(),
            num(r.count_of("kernel.flow_callbacks") as f64),
        ),
        (
            "journal_lines".into(),
            num(r.count_of("journal.lines") as f64),
        ),
        (
            "monitor_ticks".into(),
            num(r.count_of("rm.monitor_ticks") as f64),
        ),
        (
            "trace_sha256".into(),
            MetricValue::Str(a.trace_sha256.clone()),
        ),
        ("tape_sha256".into(), MetricValue::Str(tape_sha)),
    ];
    for (name, v) in &a.reg {
        metrics.push((format!("reg.{name}"), num(*v)));
    }

    let mut timing = vec![
        ("wall_ms_total".into(), total_ms),
        ("wall_ms_attributed".into(), attributed_ms),
    ];
    for name in [
        profile::KERNEL,
        profile::ALLOCATOR,
        profile::RM,
        profile::NET_POLL,
        profile::JOURNAL,
        profile::EVENTS,
    ] {
        timing.push((format!("wall_ms_{name}"), r.self_s_of(name) * 1e3));
    }

    let share = |name: &str| {
        if total_ms <= 0.0 {
            0.0
        } else {
            r.self_s_of(name) * 1e3 / total_ms
        }
    };
    let mut frag = String::new();
    write!(
        frag,
        concat!(
            "{{\"n\": {}, \"files_delivered\": {}, \"rounds\": {}, ",
            "\"wall_ms_total\": {:.3}, \"wall_ms_attributed\": {:.3}, ",
            "\"attributed_frac\": {:.4}, ",
            "\"share_kernel\": {:.4}, \"share_allocator\": {:.4}, ",
            "\"share_rm\": {:.4}, \"share_net_poll\": {:.4}, ",
            "\"share_journal\": {:.4}, \"share_events\": {:.4}, ",
            "\"net_poll_calls\": {}, \"kernel_events\": {}, ",
            "\"journal_lines\": {}, \"monitor_ticks\": {}, ",
            "\"obs_stalls\": {}, \"recorder_lines\": {}, ",
            "\"live_match\": {}, \"snapshot_match\": {}, ",
            "\"trace_sha256\": \"{}\"}}"
        ),
        n,
        a.outcome.files_delivered,
        a.outcome.rounds,
        total_ms,
        attributed_ms,
        if total_ms > 0.0 {
            attributed_ms / total_ms
        } else {
            0.0
        },
        share(profile::KERNEL),
        share(profile::ALLOCATOR),
        share(profile::RM),
        share(profile::NET_POLL),
        share(profile::JOURNAL),
        share(profile::EVENTS),
        r.count_of("net_poll.calls"),
        r.count_of("kernel.events"),
        r.count_of("journal.lines"),
        r.count_of("rm.monitor_ticks"),
        a.obs_stalls,
        a.tape.lines().count(),
        a.live_match && b.live_match,
        snapshot_match,
        a.trace_sha256,
    )
    .unwrap();

    Ok(TrialRecord {
        key: TrialKey {
            variant: ctx.variant.clone(),
            seed: ctx.seed,
            rep: ctx.rep,
        },
        metrics,
        timing,
        fragment: Some(frag),
        aux: vec![AuxFile {
            path: tape_path,
            sha256: crate::sha_hex(&a.tape),
        }],
    })
}

/// The committed `BENCH_profile.json`: one fragment per curve point.
pub fn assemble(spec: &ScenarioSpec, rows: &[TrialRecord]) -> Option<String> {
    let mut json = format!(
        "{{\n  \"bench\": \"rm_profile\",\n  \"seed\": {},\n  \"points\": [\n",
        spec.seeds.first().copied().unwrap_or(17),
    );
    let fragments: Vec<&str> = rows.iter().filter_map(|r| r.fragment.as_deref()).collect();
    for (i, frag) in fragments.iter().enumerate() {
        json.push_str("    ");
        json.push_str(frag);
        json.push_str(if i + 1 < fragments.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    Some(json)
}
