//! # esg-simnet — deterministic flow-level WAN simulator
//!
//! The substrate under the Earth System Grid reproduction: a discrete-event
//! simulator whose network model operates at *flow* granularity (SimGrid
//! style) rather than per-packet. Active TCP streams receive max-min fair
//! shares of every resource they cross — link directions, NICs, host CPU
//! interrupt budgets, disks — with per-flow ceilings from the TCP window
//! (`window/RTT`), the Mathis loss formula, and a slow-start ramp.
//!
//! This reproduces the phenomena the SC2001 paper measures (parallel-stream
//! and striping gains, buffer-size sensitivity, CPU saturation on GigE,
//! failure stalls and restarts) while simulating a 14-hour wide-area run in
//! milliseconds, deterministically.
//!
//! ## Layers
//!
//! * [`time`] — integer-nanosecond virtual clock.
//! * [`network`] — topology: nodes (hosts/routers), links, routing, CPU model.
//! * [`allocation`] — progressive-filling max-min fair bandwidth sharing.
//! * [`tcp`] — flow-level TCP throughput model (window, Mathis, slow start).
//! * [`flownet`] — the live network: flows, progress integration, stalls.
//! * [`kernel`] — the event loop: [`Sim`] with closure events and
//!   kernel-native flow-completion callbacks.
//! * [`failure`] — fault injection (link/node outages, degradation, DNS).
//! * [`background`] — seeded on/off cross-traffic generation.
//! * [`builders`] — dumbbell/star topology construction helpers.
//!
//! ## Example
//!
//! ```
//! use esg_simnet::prelude::*;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node(Node::host("dallas"));
//! let b = topo.add_node(Node::host("berkeley"));
//! topo.add_link(a, b, 100e6, SimDuration::from_millis(10));
//!
//! let mut sim: Sim<Vec<f64>> = Sim::new(topo, Vec::new());
//! sim.start_flow(
//!     FlowSpec::new(a, b, 50e6).memory_to_memory(),
//!     |s| { let t = s.now().as_secs_f64(); s.world.push(t); },
//! ).unwrap();
//! sim.run();
//! assert_eq!(sim.world.len(), 1);
//! ```

pub mod allocation;
pub mod background;
pub mod builders;
pub mod failure;
pub mod flownet;
pub mod kernel;
pub(crate) mod membership;
pub mod network;
pub mod profile;
pub mod tcp;
pub mod time;
pub mod timerwheel;

pub use flownet::{
    AllocStats, FlowError, FlowId, FlowNet, FlowSpec, FlowState, SolverConfig, SolverMode,
};
pub use kernel::Sim;
pub use network::{CpuModel, Dir, Link, LinkId, Node, NodeId, NodeKind, Topology};
pub use profile::ProfileReport;
pub use time::{SimDuration, SimTime};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::background::{start_background, BackgroundTraffic};
    pub use crate::builders::{dumbbell, star_sites, Dumbbell, DumbbellParams};
    pub use crate::failure::{inject, inject_all, Fault, FaultKind};
    pub use crate::flownet::{
        AllocStats, FlowError, FlowId, FlowNet, FlowSpec, FlowState, SolverConfig, SolverMode,
    };
    pub use crate::kernel::Sim;
    pub use crate::network::{CpuModel, Dir, Link, LinkId, Node, NodeId, NodeKind, Topology};
    pub use crate::profile::ProfileReport;
    pub use crate::tcp::{bandwidth_delay_product, TcpParams, MSS, MSS_JUMBO};
    pub use crate::time::{SimDuration, SimTime};
}
