//! Sharded flow↔resource membership index.
//!
//! The incremental allocator's central data structure maps each interned
//! resource to the set of running flows crossing it. A flat
//! `Vec<BTreeSet<u64>>` works until resource interning grows it mid-run: a
//! spine reallocation moves every set (at 100k flows and ~40k resources
//! that is megabytes of `BTreeSet` headers churned per growth step), and
//! any outstanding reference is invalidated, which in turn forces the
//! solver to copy member lists instead of borrowing them.
//!
//! Sharding fixes both: resources live in fixed-capacity *banks* allocated
//! once and never moved. Resources intern in first-encounter order and the
//! workloads this models intern one site/region's flows together, so a bank
//! naturally clusters a region's resources — the "shard by region" layout —
//! and dirty-set traversals touch few banks.

use std::collections::BTreeSet;

/// Resources per bank. Banks allocate this capacity up front so their
/// element addresses are stable for the index's lifetime.
const BANK_SIZE: usize = 1024;

/// Resource → member-flow sets, sharded into stable fixed-size banks.
#[derive(Debug, Default)]
pub(crate) struct MembershipIndex {
    banks: Vec<Vec<BTreeSet<u64>>>,
    len: usize,
}

impl MembershipIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered resources.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Register the next resource id (ids are dense, assigned in order).
    pub fn push_resource(&mut self) -> u32 {
        let id = self.len;
        if id.is_multiple_of(BANK_SIZE) {
            let mut bank = Vec::new();
            bank.reserve_exact(BANK_SIZE);
            self.banks.push(bank);
        }
        self.banks
            .last_mut()
            .expect("bank allocated above")
            .push(BTreeSet::new());
        self.len += 1;
        id as u32
    }

    pub fn insert(&mut self, r: u32, flow: u64) -> bool {
        self.set_mut(r).insert(flow)
    }

    pub fn remove(&mut self, r: u32, flow: u64) -> bool {
        self.set_mut(r).remove(&flow)
    }

    /// The member flows of resource `r`, in ascending flow-id order.
    pub fn members(&self, r: u32) -> &BTreeSet<u64> {
        &self.banks[r as usize / BANK_SIZE][r as usize % BANK_SIZE]
    }

    fn set_mut(&mut self, r: u32) -> &mut BTreeSet<u64> {
        &mut self.banks[r as usize / BANK_SIZE][r as usize % BANK_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_sets_independent() {
        let mut idx = MembershipIndex::new();
        for i in 0..5000u32 {
            assert_eq!(idx.push_resource(), i);
        }
        assert_eq!(idx.len(), 5000);
        idx.insert(0, 7);
        idx.insert(4999, 9);
        idx.insert(4999, 8);
        assert_eq!(idx.members(0).iter().copied().collect::<Vec<_>>(), vec![7]);
        assert_eq!(
            idx.members(4999).iter().copied().collect::<Vec<_>>(),
            vec![8, 9]
        );
        assert!(idx.members(1).is_empty());
        assert!(idx.remove(4999, 9));
        assert!(!idx.remove(4999, 9));
        assert_eq!(
            idx.members(4999).iter().copied().collect::<Vec<_>>(),
            vec![8]
        );
    }

    #[test]
    fn set_addresses_survive_growth() {
        // The point of sharding: a set's address must not move as more
        // resources are registered (banks never reallocate).
        let mut idx = MembershipIndex::new();
        let r = idx.push_resource();
        idx.insert(r, 42);
        let before = idx.members(r) as *const BTreeSet<u64>;
        for _ in 0..10 * BANK_SIZE {
            idx.push_resource();
        }
        let after = idx.members(r) as *const BTreeSet<u64>;
        assert_eq!(before, after);
        assert_eq!(idx.members(r).iter().copied().collect::<Vec<_>>(), vec![42]);
    }
}
