//! GSI mutual authentication handshake.
//!
//! Models the GSSAPI context establishment GridFTP performs on every control
//! connection (and on data connections when DCAU is enabled): both sides
//! present certificate chains, prove possession of their keys by MACing the
//! handshake transcript, and derive shared session keys via Diffie-Hellman.
//!
//! The paper's Figure 8 discussion notes that tearing down and rebuilding
//! data channels forces "costly breakdown, restart, and re-authentication
//! operations" — this module is that re-authentication cost, both in real
//! bytes (loopback transport) and as a latency constant for the simulator.

use crate::cert::{Certificate, CertificateAuthority, Credential, GsiError, SecEpoch, Subject};
use crate::hmac::{derive_key, hmac_sha256, verify_mac};
use crate::sha256::Sha256;

/// 61-bit Mersenne prime for the toy Diffie-Hellman group (products fit in
/// u128). Far too small for real security — adequate for a simulation whose
/// point is the protocol shape and cost, not cryptographic strength.
const DH_PRIME: u64 = 2_305_843_009_213_693_951; // 2^61 - 1
const DH_GENERATOR: u64 = 5;

fn modpow(base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc: u128 = 1;
    let m = modulus as u128;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    acc as u64
}

/// Number of network round trips a full GSI handshake costs (used by the
/// simulator to price connection establishment): TCP SYN/ACK plus two
/// GSSAPI token exchanges.
pub const HANDSHAKE_ROUND_TRIPS: u32 = 3;

/// Session keys derived from a completed handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    pub integrity: [u8; 32],
    pub confidentiality: [u8; 32],
}

/// Data-channel protection level (GridFTP `PROT` / DCAU settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No authentication of the data channel.
    Clear,
    /// Integrity protection: HMAC per block.
    Safe,
    /// Integrity + confidentiality: HMAC + ChaCha20.
    Private,
}

/// First handshake message: certificate chain + DH public value + nonce.
#[derive(Debug, Clone)]
pub struct Hello {
    pub chain: Vec<Certificate>,
    pub dh_public: u64,
    pub nonce: [u8; 32],
}

impl Hello {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for c in &self.chain {
            v.extend_from_slice(c.subject.0.as_bytes());
            v.push(0);
            v.extend_from_slice(&c.signature);
        }
        v.extend_from_slice(&self.dh_public.to_be_bytes());
        v.extend_from_slice(&self.nonce);
        v
    }
}

/// Second handshake message: proof of key possession over the transcript.
#[derive(Debug, Clone)]
pub struct Proof {
    pub mac: [u8; 32],
}

/// Canonical transcript digest: the two hello encodings hashed in
/// lexicographic order, so both parties compute the same digest regardless
/// of who spoke first.
fn canonical_transcript(mine: &Hello, theirs: &Hello) -> [u8; 32] {
    let a = mine.encode();
    let b = theirs.encode();
    let (first, second) = if a <= b { (&a, &b) } else { (&b, &a) };
    let mut h = Sha256::new();
    h.update(first);
    h.update(second);
    h.finalize()
}

/// One party's handshake state. Owns a clone of the credential so the
/// handshake can be stored in long-lived session state without borrows.
pub struct Handshake {
    cred: Credential,
    dh_secret: u64,
    my_hello: Option<Hello>,
    transcript: Option<[u8; 32]>,
}

impl Handshake {
    /// Begin a handshake with a deterministic per-connection seed (the
    /// caller supplies entropy; the simulator supplies a counter).
    pub fn new(cred: &Credential, seed: &[u8]) -> Self {
        let h = hmac_sha256(&cred.secret, seed);
        let mut dh_secret = u64::from_be_bytes(h[..8].try_into().unwrap());
        dh_secret %= DH_PRIME - 2;
        dh_secret += 1;
        Handshake {
            cred: cred.clone(),
            dh_secret,
            my_hello: None,
            transcript: None,
        }
    }

    /// Produce our hello message.
    pub fn hello(&mut self, nonce_seed: &[u8]) -> Hello {
        let mut chain = vec![self.cred.cert.clone()];
        chain.extend(self.cred.chain.iter().cloned());
        let nonce = hmac_sha256(&self.cred.secret, nonce_seed);
        let dh_public = modpow(DH_GENERATOR, self.dh_secret, DH_PRIME);
        let hello = Hello {
            chain,
            dh_public,
            nonce,
        };
        self.my_hello = Some(hello.clone());
        hello
    }

    /// Absorb the peer's hello: verify their chain against the trust
    /// anchor, compute the shared keys and our proof message. Returns
    /// (peer identity, session keys, proof to send).
    pub fn receive_hello(
        &mut self,
        peer: &Hello,
        ca: &CertificateAuthority,
        now: SecEpoch,
        peer_secrets: &dyn Fn(&Subject) -> Option<[u8; 32]>,
    ) -> Result<(Subject, SessionKeys, Proof), GsiError> {
        let identity = ca.verify_chain(&peer.chain, now, peer_secrets)?;
        // The end-entity identity is the chain root (proxy chains assert
        // the delegating user's identity).
        let identity = peer
            .chain
            .last()
            .map(|c| c.subject.clone())
            .unwrap_or(identity);
        let mine = self
            .my_hello
            .as_ref()
            .ok_or_else(|| GsiError::AuthenticationFailed("hello not sent".into()))?;
        let digest = canonical_transcript(mine, peer);
        self.transcript = Some(digest);
        let shared = modpow(peer.dh_public, self.dh_secret, DH_PRIME);
        let mut master = Vec::with_capacity(40);
        master.extend_from_slice(&shared.to_be_bytes());
        master.extend_from_slice(&digest);
        let keys = SessionKeys {
            integrity: derive_key(&master, "gsi-integrity"),
            confidentiality: derive_key(&master, "gsi-confidentiality"),
        };
        let mac = hmac_sha256(&keys.integrity, &digest);
        Ok((identity, keys, Proof { mac }))
    }

    /// Verify the peer's proof of key possession. Call after
    /// [`Handshake::receive_hello`]; proves the peer derived the same keys (and hence
    /// holds the DH secret matching its hello).
    pub fn verify_proof(&self, keys: &SessionKeys, proof: &Proof) -> Result<(), GsiError> {
        let digest = self
            .transcript
            .ok_or_else(|| GsiError::AuthenticationFailed("no transcript".into()))?;
        let expect = hmac_sha256(&keys.integrity, &digest);
        if verify_mac(&expect, &proof.mac) {
            Ok(())
        } else {
            Err(GsiError::AuthenticationFailed("bad proof".into()))
        }
    }
}

/// Run the full two-party handshake in-process: used by tests and by the
/// simulated transfer engine, where only the *result* (mutual identities +
/// keys) matters and the latency is charged as [`HANDSHAKE_ROUND_TRIPS`].
pub fn mutual_authenticate(
    a: &Credential,
    b: &Credential,
    ca: &CertificateAuthority,
    now: SecEpoch,
    peer_secrets: &dyn Fn(&Subject) -> Option<[u8; 32]>,
    session_seed: &[u8],
) -> Result<(Subject, Subject, SessionKeys), GsiError> {
    let mut ha = Handshake::new(a, &[session_seed, b"a"].concat());
    let mut hb = Handshake::new(b, &[session_seed, b"b"].concat());
    let hello_a = ha.hello(&[session_seed, b"na"].concat());
    let hello_b = hb.hello(&[session_seed, b"nb"].concat());

    let (id_b, keys_a, proof_a) = ha.receive_hello(&hello_b, ca, now, peer_secrets)?;
    let (id_a, keys_b, proof_b) = hb.receive_hello(&hello_a, ca, now, peer_secrets)?;
    debug_assert_eq!(keys_a, keys_b, "canonical transcript must agree");

    ha.verify_proof(&keys_a, &proof_b)?;
    hb.verify_proof(&keys_b, &proof_a)?;
    Ok((id_a, id_b, keys_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn setup() -> (CertificateAuthority, Credential, Credential) {
        let ca = CertificateAuthority::new("/O=Grid/CN=ESG CA", b"seed");
        let a = ca.issue("/O=Grid/CN=client", 0, 3600);
        let b = ca.issue("/O=Grid/CN=server", 0, 3600);
        (ca, a, b)
    }

    #[test]
    fn modpow_basics() {
        assert_eq!(modpow(2, 10, 1_000_000_007), 1024);
        assert_eq!(modpow(5, 0, 97), 1);
        assert_eq!(modpow(7, 96, 97), 1); // Fermat's little theorem
    }

    #[test]
    fn dh_agreement() {
        let a_sec = 123_456_789u64;
        let b_sec = 987_654_321u64;
        let a_pub = modpow(DH_GENERATOR, a_sec, DH_PRIME);
        let b_pub = modpow(DH_GENERATOR, b_sec, DH_PRIME);
        assert_eq!(
            modpow(b_pub, a_sec, DH_PRIME),
            modpow(a_pub, b_sec, DH_PRIME)
        );
    }

    #[test]
    fn mutual_auth_succeeds_and_identifies() {
        let (ca, a, b) = setup();
        let (id_a, id_b, keys) =
            mutual_authenticate(&a, &b, &ca, 100, &|_| None, b"conn-1").unwrap();
        assert_eq!(id_a.0, "/O=Grid/CN=client");
        assert_eq!(id_b.0, "/O=Grid/CN=server");
        assert_ne!(keys.integrity, keys.confidentiality);
    }

    #[test]
    fn both_sides_derive_same_keys() {
        let (ca, a, b) = setup();
        let mut ha = Handshake::new(&a, b"sa");
        let mut hb = Handshake::new(&b, b"sb");
        let hello_a = ha.hello(b"na");
        let hello_b = hb.hello(b"nb");
        let (_, ka, _) = ha.receive_hello(&hello_b, &ca, 0, &|_| None).unwrap();
        let (_, kb, _) = hb.receive_hello(&hello_a, &ca, 0, &|_| None).unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn expired_peer_fails() {
        let ca = CertificateAuthority::new("/O=Grid/CN=ESG CA", b"seed");
        let a = ca.issue("/O=Grid/CN=client", 0, 10);
        let b = ca.issue("/O=Grid/CN=server", 0, 3600);
        let err = mutual_authenticate(&a, &b, &ca, 100, &|_| None, b"c").unwrap_err();
        assert!(matches!(err, GsiError::Expired { .. }));
    }

    #[test]
    fn proxy_authenticates_as_end_entity() {
        let (ca, a, b) = setup();
        let proxy = a.delegate(0, 600, b"rm").unwrap();
        let a_secret = a.secret;
        let (id_a, _, _) = mutual_authenticate(
            &proxy,
            &b,
            &ca,
            100,
            &|s| (s.0 == "/O=Grid/CN=client").then_some(a_secret),
            b"conn-2",
        )
        .unwrap();
        assert_eq!(id_a.0, "/O=Grid/CN=client");
    }

    #[test]
    fn wrong_ca_fails() {
        let (_, a, b) = setup();
        let other_ca = CertificateAuthority::new("/O=Other/CN=CA", b"x");
        let err = mutual_authenticate(&a, &b, &other_ca, 100, &|_| None, b"c").unwrap_err();
        assert!(matches!(err, GsiError::UntrustedIssuer { .. }));
    }

    #[test]
    fn session_seeds_give_distinct_keys() {
        let (ca, a, b) = setup();
        let (_, _, k1) = mutual_authenticate(&a, &b, &ca, 0, &|_| None, b"c1").unwrap();
        let (_, _, k2) = mutual_authenticate(&a, &b, &ca, 0, &|_| None, b"c2").unwrap();
        assert_ne!(k1.integrity, k2.integrity);
    }

    #[test]
    fn tampered_proof_rejected() {
        let (ca, a, b) = setup();
        let mut ha = Handshake::new(&a, b"sa");
        let mut hb = Handshake::new(&b, b"sb");
        let hello_a = ha.hello(b"na");
        let hello_b = hb.hello(b"nb");
        let (_, ka, _) = ha.receive_hello(&hello_b, &ca, 0, &|_| None).unwrap();
        let (_, _, mut proof_b) = hb.receive_hello(&hello_a, &ca, 0, &|_| None).unwrap();
        proof_b.mac[0] ^= 1;
        assert!(ha.verify_proof(&ka, &proof_b).is_err());
    }

    #[test]
    fn receive_before_hello_is_error() {
        let (ca, a, b) = setup();
        let mut ha = Handshake::new(&a, b"sa");
        let mut hb = Handshake::new(&b, b"sb");
        let hello_b = hb.hello(b"nb");
        let err = ha.receive_hello(&hello_b, &ca, 0, &|_| None).unwrap_err();
        assert!(matches!(err, GsiError::AuthenticationFailed(_)));
    }
}
