//! LDIF (LDAP Data Interchange Format) import/export.
//!
//! The prototype's catalogs were administered the way all 2001 LDAP
//! deployments were: bulk-loaded and dumped as LDIF. This module supports
//! the subset the catalogs need — `dn:` lines, `attr: value` lines, blank
//! line separators, `#` comments and line continuations (a leading space
//! continues the previous line).

use crate::dit::{DirError, Directory};
use crate::dn::Dn;
use crate::entry::Entry;

/// An LDIF parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdifError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for LdifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LDIF error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LdifError {}

/// Parse LDIF text into entries (in file order).
pub fn parse(text: &str) -> Result<Vec<Entry>, LdifError> {
    // Unfold continuations first, tracking original line numbers.
    let mut unfolded: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(cont) = raw.strip_prefix(' ') {
            match unfolded.last_mut() {
                Some((_, prev)) => prev.push_str(cont),
                None => {
                    return Err(LdifError {
                        line: i + 1,
                        message: "continuation with nothing to continue".into(),
                    })
                }
            }
        } else {
            unfolded.push((i + 1, raw.to_string()));
        }
    }

    let mut entries = Vec::new();
    let mut current: Option<Entry> = None;
    for (line_no, line) in unfolded {
        let trimmed = line.trim_end();
        if trimmed.starts_with('#') {
            continue;
        }
        if trimmed.is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        let (attr, value) = trimmed.split_once(':').ok_or_else(|| LdifError {
            line: line_no,
            message: format!("missing `:` in `{trimmed}`"),
        })?;
        let attr = attr.trim();
        let value = value.trim();
        if attr.eq_ignore_ascii_case("dn") {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            let dn = Dn::parse(value).map_err(|e| LdifError {
                line: line_no,
                message: e.to_string(),
            })?;
            current = Some(Entry::new(dn));
        } else {
            match current.as_mut() {
                Some(e) => e.add(attr, value),
                None => {
                    return Err(LdifError {
                        line: line_no,
                        message: format!("attribute `{attr}` before any dn"),
                    })
                }
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    Ok(entries)
}

/// Load LDIF text into a directory, creating missing ancestors. Returns
/// how many entries were added.
pub fn load(dir: &mut Directory, text: &str) -> Result<usize, LdifError> {
    let entries = parse(text)?;
    let mut added = 0;
    for (i, e) in entries.into_iter().enumerate() {
        match dir.add_with_ancestors(e) {
            Ok(()) => added += 1,
            Err(DirError::AlreadyExists(dn)) => {
                return Err(LdifError {
                    line: i + 1,
                    message: format!("duplicate entry {dn}"),
                })
            }
            Err(other) => {
                return Err(LdifError {
                    line: i + 1,
                    message: other.to_string(),
                })
            }
        }
    }
    Ok(added)
}

/// Export every entry of a directory as LDIF (tree order), with long lines
/// folded at 76 characters per the RFC's convention.
pub fn dump(dir: &Directory) -> String {
    let mut out = String::new();
    for entry in dir.iter() {
        for raw_line in entry.to_ldif().lines() {
            fold_into(&mut out, raw_line);
        }
        out.push('\n');
    }
    out
}

fn fold_into(out: &mut String, line: &str) {
    const WIDTH: usize = 76;
    if line.len() <= WIDTH {
        out.push_str(line);
        out.push('\n');
        return;
    }
    // First segment at WIDTH, continuations at WIDTH-1 (leading space).
    let bytes = line.as_bytes();
    let mut start = 0;
    let mut first = true;
    while start < bytes.len() {
        let budget = if first { WIDTH } else { WIDTH - 1 };
        let mut end = (start + budget).min(bytes.len());
        // Don't split inside a UTF-8 character.
        while end < bytes.len() && !line.is_char_boundary(end) {
            end -= 1;
        }
        if !first {
            out.push(' ');
        }
        out.push_str(&line[start..end]);
        out.push('\n');
        start = end;
        first = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::Scope;
    use crate::filter::Filter;

    const SAMPLE: &str = "\
# The Figure 6 replica catalog, as LDIF.
dn: o=Grid
objectclass: organization

dn: rc=ESG Replica Catalog, o=Grid
objectclass: GlobusReplicaCatalog

dn: lc=CO2 measurements 1998, rc=ESG Replica Catalog, o=Grid
objectclass: GlobusReplicaLogicalCollection
filename: jan_1998.nc
filename: feb_1998.nc

dn: loc=jupiter, lc=CO2 measurements 1998, rc=ESG Replica Catalog, o=Grid
objectclass: GlobusReplicaLocation
hostname: jupiter.isi.edu
protocol: gsiftp
filename: jan_1998.nc
";

    #[test]
    fn parse_sample() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[2].values("filename").len(), 2);
        assert_eq!(entries[3].first("hostname"), Some("jupiter.isi.edu"));
    }

    #[test]
    fn load_builds_searchable_directory() {
        let mut dir = Directory::new();
        assert_eq!(load(&mut dir, SAMPLE).unwrap(), 4);
        let hits = dir.search(
            &Dn::parse("o=Grid").unwrap(),
            Scope::Subtree,
            &Filter::parse("(filename=jan_1998.nc)").unwrap(),
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn dump_load_round_trip() {
        let mut dir = Directory::new();
        load(&mut dir, SAMPLE).unwrap();
        let text = dump(&dir);
        let mut dir2 = Directory::new();
        load(&mut dir2, &text).unwrap();
        assert_eq!(dir2.len(), dir.len());
        for e in dir.iter() {
            let e2 = dir2.get(&e.dn).expect("entry survives round trip");
            assert_eq!(e2, e);
        }
    }

    #[test]
    fn continuation_lines_unfold() {
        let text = "dn: cn=x\ndescription: a very long\n  value split across lines\n";
        let entries = parse(text).unwrap();
        assert_eq!(
            entries[0].first("description"),
            Some("a very long value split across lines")
        );
    }

    #[test]
    fn long_lines_fold_and_reparse() {
        let mut dir = Directory::new();
        let mut e = Entry::new(Dn::parse("cn=long").unwrap());
        let long_value = "x".repeat(300);
        e.add("payload", long_value.clone());
        dir.add_with_ancestors(e).unwrap();
        let text = dump(&dir);
        assert!(text.lines().all(|l| l.len() <= 76));
        let mut dir2 = Directory::new();
        load(&mut dir2, &text).unwrap();
        let got = dir2.get(&Dn::parse("cn=long").unwrap()).unwrap();
        assert_eq!(got.first("payload"), Some(long_value.as_str()));
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = parse("dn: cn=x\nbroken line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("objectclass: before-dn\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse(" leading continuation\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("dn: not a dn at all\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_load_rejected() {
        let mut dir = Directory::new();
        load(&mut dir, "dn: cn=a\nx: 1\n").unwrap();
        assert!(load(&mut dir, "dn: cn=a\nx: 2\n").is_err());
    }

    #[test]
    fn comments_and_trailing_entry_handled() {
        let entries = parse("# only a comment\ndn: cn=last\nattr: v").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].first("attr"), Some("v"));
    }
}
