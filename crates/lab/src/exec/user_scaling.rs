//! `user_scaling` executor: one trial = one point of the A10/A14 flow
//! scaling curve, running the sequential reference solver and the
//! parallel scratch-arena solver on the same seeded workload (plus the
//! full-recompute trace ablation where affordable), bitwise
//! equivalence-checked with in-run oracle probes — exactly
//! `scaling::run_curve_point`, which the pre-migration bin also called.

use super::TrialCtx;
use crate::gate::Baseline;
use crate::journal::{MetricValue, TrialRecord};
use crate::json::Json;
use crate::scaling::{run_curve_point, trace_sha256_hex, PointReport};
use crate::spec::ScenarioSpec;
use std::fmt::Write as _;

pub fn run(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let n = p.usize("n", 1200);
    let regions = p.usize("regions", 32);
    let full_ablation = p.bool("full_ablation", false);
    let oracle_probes = p.usize("oracle_probes", 8);
    let repeats = p.usize("repeats", 3);
    if !ctx.spec.faults.is_empty() {
        return Err("user_scaling does not take a spec fault schedule".into());
    }

    // run_curve_point panics on any equivalence violation; reaching the
    // return means every arm and every oracle probe matched bitwise.
    let point = run_curve_point(n, regions, ctx.seed, full_ablation, oracle_probes, repeats);

    let mut metrics = vec![
        ("n".to_string(), MetricValue::Num(point.n as f64)),
        (
            "regions".to_string(),
            MetricValue::Num(point.regions as f64),
        ),
        ("equivalent".to_string(), MetricValue::Num(1.0)),
        (
            "oracle_probes".to_string(),
            MetricValue::Num(point.par.oracle_probes_run as f64),
        ),
        (
            "recompute_passes".to_string(),
            MetricValue::Num(point.par.stats.recompute_passes as f64),
        ),
        (
            "components_solved".to_string(),
            MetricValue::Num(point.par.stats.components_solved as f64),
        ),
        (
            "flow_solves".to_string(),
            MetricValue::Num(point.par.stats.flow_solves as f64),
        ),
        (
            "parallel_batches".to_string(),
            MetricValue::Num(point.par.stats.parallel_batches as f64),
        ),
        (
            "peak_concurrent_flows".to_string(),
            MetricValue::Num(point.par.peak_concurrent as f64),
        ),
        (
            "trace_sha256".to_string(),
            MetricValue::Str(trace_sha256_hex(&point.par)),
        ),
        (
            "solver_parallel".to_string(),
            MetricValue::Str(point.par.solver.clone()),
        ),
    ];
    if point.full.is_some() {
        metrics.push(("full_ablation".to_string(), MetricValue::Num(1.0)));
    }

    let mut timing = vec![
        (
            "wall_ms_sequential".to_string(),
            point.seq.wall.as_secs_f64() * 1e3,
        ),
        (
            "wall_ms_parallel".to_string(),
            point.par.wall.as_secs_f64() * 1e3,
        ),
        (
            "peak_rss_kb_sequential".to_string(),
            point.seq.peak_rss_kb.unwrap_or(0) as f64,
        ),
        (
            "peak_rss_kb_parallel".to_string(),
            point.par.peak_rss_kb.unwrap_or(0) as f64,
        ),
    ];
    if let Some(f) = &point.full {
        timing.push((
            "wall_ms_full_recompute".to_string(),
            f.wall.as_secs_f64() * 1e3,
        ));
    }

    Ok(TrialRecord {
        key: crate::journal::TrialKey {
            variant: ctx.variant.clone(),
            seed: ctx.seed,
            rep: ctx.rep,
        },
        metrics,
        timing,
        fragment: Some(json_point(&point)),
        aux: vec![],
    })
}

/// One curve point as a single JSON line — byte-format-identical to the
/// pre-migration bin (keeps the committed file greppable and lets the
/// regression check stay dependency-free).
fn json_point(p: &PointReport) -> String {
    let mut s = String::new();
    write!(
        s,
        concat!(
            "{{\"n\": {}, \"regions\": {}, ",
            "\"wall_ms_sequential\": {:.3}, \"wall_ms_parallel\": {:.3}, "
        ),
        p.n,
        p.regions,
        p.seq.wall.as_secs_f64() * 1e3,
        p.par.wall.as_secs_f64() * 1e3,
    )
    .unwrap();
    match &p.full {
        Some(f) => write!(
            s,
            "\"wall_ms_full_recompute\": {:.3}, ",
            f.wall.as_secs_f64() * 1e3
        ),
        None => write!(s, "\"wall_ms_full_recompute\": null, "),
    }
    .unwrap();
    write!(
        s,
        concat!(
            "\"speedup_parallel_vs_sequential\": {:.3}, ",
            "\"peak_rss_kb_sequential\": {}, \"peak_rss_kb_parallel\": {}, ",
            "\"solver_parallel\": \"{}\", \"oracle_probes\": {}, ",
            "\"recompute_passes\": {}, \"components_solved\": {}, ",
            "\"flow_solves\": {}, \"parallel_batches\": {}, ",
            "\"peak_concurrent_flows\": {}, \"equivalent\": true, ",
            "\"trace_sha256\": \"{}\"}}"
        ),
        p.seq.wall.as_secs_f64() / p.par.wall.as_secs_f64().max(1e-9),
        p.seq.peak_rss_kb.unwrap_or(0),
        p.par.peak_rss_kb.unwrap_or(0),
        p.par.solver,
        p.par.oracle_probes_run,
        p.par.stats.recompute_passes,
        p.par.stats.components_solved,
        p.par.stats.flow_solves,
        p.par.stats.parallel_batches,
        p.par.peak_concurrent,
        trace_sha256_hex(&p.par),
    )
    .unwrap();
    s
}

/// The committed curve file, assembled from per-point fragments in row
/// order — same bytes the old `--curve` bin wrote.
pub fn assemble(spec: &ScenarioSpec, rows: &[TrialRecord]) -> Option<String> {
    let mut json = format!(
        concat!(
            "{{\n  \"bench\": \"user_scaling_curve\",\n  \"seed\": {},\n",
            "  \"clients_per_region\": {},\n  \"points\": [\n"
        ),
        spec.seeds.first().copied().unwrap_or(17),
        crate::scaling::CLIENTS_PER_REGION,
    );
    let fragments: Vec<&str> = rows.iter().filter_map(|r| r.fragment.as_deref()).collect();
    for (i, frag) in fragments.iter().enumerate() {
        json.push_str("    ");
        json.push_str(frag);
        json.push_str(if i + 1 < fragments.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    Some(json)
}

/// Baseline for `wall_regression`: match each spec variant to the
/// committed curve point with the same `n` and expose its parallel-arm
/// wall clock.
pub fn baseline(spec: &ScenarioSpec, artifact: &Json) -> Result<Baseline, String> {
    let points = artifact
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("baseline has no points array")?;
    let mut out = Baseline::new();
    for v in spec.effective_variants() {
        let merged = spec.params.merged(&v.overrides);
        let n = merged.u64("n", 0);
        let Some(point) = points
            .iter()
            .find(|p| p.get("n").and_then(Json::as_u64) == Some(n))
        else {
            continue; // gate reports the missing variant as an explicit error
        };
        let mut m = std::collections::BTreeMap::new();
        for key in ["wall_ms_sequential", "wall_ms_parallel"] {
            if let Some(val) = point.get(key).and_then(Json::as_f64) {
                m.insert(key.to_string(), val);
            }
        }
        out.insert(v.name.clone(), m);
    }
    Ok(out)
}
