//! `esg-server` — run a standalone GridFTP server (the `in.ftpd`-style
//! daemon of the prototype).
//!
//! ```text
//! esg-server <root-dir> [--port N] [--gsi] [--no-anonymous]
//! ```
//!
//! With `--gsi`, a demo CA and server credential are created and the CA
//! name is printed; clients in the same process group can authenticate
//! with credentials from the same seed (for real deployments you would
//! load credentials from disk — out of scope here).

use esg::gridftp::server::{GridFtpServer, ServerConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: esg-server <root-dir> [--port N] [--gsi] [--no-anonymous]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = None;
    let mut gsi = false;
    let mut anonymous = true;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--gsi" => gsi = true,
            "--no-anonymous" => anonymous = false,
            "--port" => {
                // The server binds an ephemeral port; honouring --port would
                // need a bind address parameter on ServerConfig. Keep the
                // flag for CLI compatibility and report the actual port.
                let _ = iter.next();
            }
            _ if root.is_none() => root = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(root) = root else { usage() };
    let mut config = ServerConfig::new(&root);
    config.allow_anonymous = anonymous;
    if gsi {
        let ca = Arc::new(esg::gsi::CertificateAuthority::new(
            "/O=ESG/CN=Demo CA",
            b"esg-demo-ca",
        ));
        let cred = Arc::new(ca.issue("/O=ESG/CN=esg-server", 0, 365 * 86_400));
        println!("GSI enabled; trust anchor: /O=ESG/CN=Demo CA (seed esg-demo-ca)");
        config.gsi = Some((cred, ca));
    }
    let server = GridFtpServer::start(config).expect("bind server");
    println!("esg-server serving {root} on {}", server.addr());
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
