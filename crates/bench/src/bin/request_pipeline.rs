//! A12: pipelined transfer scheduler — admission control, BDP auto-tuning
//! and stage-ahead prefetch vs. the legacy start-everything-at-once loop.
//!
//! `cargo run --release -p esg-bench --bin request_pipeline [seed] [requests] [out.json]`
//!
//! Replays one seeded multi-user workload on the Figure 1 testbed twice:
//! concurrent requests mixing hot disk-resident files (replicated at three
//! disk sites) with cold tape-only files behind the HPSS HRM, under a
//! minimum-rate reliability floor. The `scheduler` arm runs the transfer
//! scheduler (per-request admission caps, per-host in-flight caps, BDP
//! tuning from NWS forecasts, prestage of queued cold files); the `legacy`
//! arm disables it, so every file of every request starts the moment the
//! request arrives — oversubscribing the client access link, dragging every
//! flow below the minimum-rate floor, and thrashing the failover/backoff
//! machinery.
//!
//! Asserts (exits non-zero on violation):
//!   * both arms complete every request and deliver identical per-file
//!     bytes, and every completion is digest-verified in both arms;
//!   * the scheduler arm never exceeds its per-host in-flight cap and
//!     drains its ledger to zero;
//!   * the scheduler arm improves the workload makespan by >= 1.3x.
//!
//! Writes `BENCH_request_pipeline.json` (committed baseline).

use esg_core::esg_testbed;
use esg_reqman::submit_request;
use esg_simnet::{SimDuration, SimTime};
use esg_storage::{Hrm, TapeParams};
use std::fmt::Write as _;

const DISK_DS: &str = "pcm_pipe.disk";
const TAPE_DS: &str = "pcm_pipe.tape";
/// Disk files: 24 x 40 MB replicated at LLNL, ISI, ANL.
const DISK_STEPS: usize = 96;
const DISK_SPF: usize = 4;
const DISK_BPS: u64 = 10_000_000;
/// Tape files: 8 x 30 MB, HPSS only (cold until staged).
const TAPE_STEPS: usize = 16;
const TAPE_SPF: usize = 2;
const TAPE_BPS: u64 = 15_000_000;
/// Reliability floor: flows slower than this (after grace) fail over.
/// The client access link is 77.75 MB/s: 24 admitted flows run at
/// ~3.2 MB/s (healthy); the legacy arm's ~108 run at ~0.7 MB/s (churn).
const MIN_RATE: f64 = 2.6e6;

struct RunResult {
    mode: &'static str,
    makespan: f64,
    agg_mbps: f64,
    mean_sojourn: f64,
    completes: usize,
    verified: usize,
    failovers: usize,
    defers: usize,
    prestaged: u64,
    tuned: u64,
    peak_host_inflight: usize,
    wall: std::time::Duration,
    /// (request id, file name, size, bytes_done, done) in submit order.
    deliveries: Vec<(u64, String, u64, u64, bool)>,
    trace_ulm: String,
}

fn run(seed: u64, n_requests: usize, scheduler_on: bool) -> RunResult {
    let mut tb = esg_testbed(seed);
    tb.sim.world.rm.scheduler.enabled = scheduler_on;
    tb.sim.world.rm.min_rate = MIN_RATE;
    tb.sim.world.rm.grace = SimDuration::from_secs(6);
    tb.sim.world.rm.retry.base = SimDuration::from_secs(6);
    // Faster robot than the HPSS default so the staging pipeline, not the
    // tape mount queue, shapes the cold half of the workload.
    tb.sim.world.rm.add_hrm(
        "hpss.lbl.gov",
        Hrm::new(
            TapeParams {
                drives: 4,
                mount: SimDuration::from_secs(10),
                seek: SimDuration::from_secs(5),
                rate: 25e6,
            },
            1 << 38,
        ),
    );
    tb.publish_dataset(DISK_DS, DISK_STEPS, DISK_SPF, DISK_BPS, &[1, 2, 3]);
    tb.publish_dataset(TAPE_DS, TAPE_STEPS, TAPE_SPF, TAPE_BPS, &[0]);
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let disk_coll = tb.sim.world.metadata.collection_of(DISK_DS).unwrap();
    let tape_coll = tb.sim.world.metadata.collection_of(TAPE_DS).unwrap();
    let disk_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(DISK_DS)
        .unwrap()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let tape_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(TAPE_DS)
        .unwrap()
        .iter()
        .map(|f| f.name.clone())
        .collect();

    // Request r: sixteen disk files + two tape files, deterministic picks,
    // submitted two seconds apart.
    let client = tb.client;
    for r in 0..n_requests {
        let mut files: Vec<(String, String)> = (0..16)
            .map(|k| {
                let f = &disk_files[(r * 16 + k) % disk_files.len()];
                (disk_coll.clone(), f.clone())
            })
            .collect();
        for k in 0..2 {
            let f = &tape_files[(r * 2 + k) % tape_files.len()];
            files.push((tape_coll.clone(), f.clone()));
        }
        let at = SimTime::from_secs(100 + 2 * r as u64);
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }

    let wall = std::time::Instant::now();
    tb.sim.run_until(SimTime::from_secs(3600));
    let wall = wall.elapsed();

    let outcomes = &tb.sim.world.outcomes;
    if outcomes.len() != n_requests {
        eprintln!(
            "BENCH FAILED [{}]: {} of {n_requests} requests finished by the horizon",
            if scheduler_on { "scheduler" } else { "legacy" },
            outcomes.len()
        );
        std::process::exit(1);
    }
    let first_start = outcomes
        .iter()
        .map(|o| o.started)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.since(first_start).as_secs_f64();
    let bytes: u64 = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .map(|f| f.bytes_done)
        .sum();
    let mean_sojourn = outcomes
        .iter()
        .map(|o| o.finished.since(o.started).as_secs_f64())
        .sum::<f64>()
        / n_requests as f64;

    let mut deliveries: Vec<(u64, String, u64, u64, bool)> = outcomes
        .iter()
        .flat_map(|o| {
            o.files
                .iter()
                .map(move |f| (o.id, f.name.clone(), f.size, f.bytes_done, f.done))
        })
        .collect();
    deliveries.sort();

    let rm = &tb.sim.world.rm;
    let count = |name: &str| rm.log.named(name).count();
    RunResult {
        mode: if scheduler_on { "scheduler" } else { "legacy" },
        makespan,
        agg_mbps: bytes as f64 / makespan.max(1e-9) / 1e6,
        mean_sojourn,
        completes: count("rm.file.complete"),
        verified: count("integrity.file.verified"),
        failovers: count("rm.reliability.failover"),
        defers: count("rm.sched.defer"),
        prestaged: rm.sched_stats().prestaged,
        tuned: rm.sched_stats().tuned,
        peak_host_inflight: rm.inflight().peak_attempts(),
        wall,
        deliveries,
        trace_ulm: rm.log.to_ulm(),
    }
}

fn report(v: &RunResult) {
    println!(
        "  {:<10} makespan {:>7.1} s  aggregate {:>6.1} MB/s  mean sojourn {:>6.1} s  \
         failovers {:>4}  defers {:>4}  prestaged {}  tuned {:>3}  peak/host {}  wall {:.1?}",
        v.mode,
        v.makespan,
        v.agg_mbps,
        v.mean_sojourn,
        v.failovers,
        v.defers,
        v.prestaged,
        v.tuned,
        v.peak_host_inflight,
        v.wall,
    );
}

fn json_variant(v: &RunResult) -> String {
    let mut s = String::new();
    write!(
        s,
        concat!(
            "{{\"mode\": \"{}\", \"makespan_s\": {:.3}, \"aggregate_mb_s\": {:.3}, ",
            "\"mean_sojourn_s\": {:.3}, \"files_complete\": {}, \"files_verified\": {}, ",
            "\"failovers\": {}, \"defers\": {}, \"prestaged\": {}, \"tuned\": {}, ",
            "\"peak_host_inflight\": {}}}"
        ),
        v.mode,
        v.makespan,
        v.agg_mbps,
        v.mean_sojourn,
        v.completes,
        v.verified,
        v.failovers,
        v.defers,
        v.prestaged,
        v.tuned,
        v.peak_host_inflight,
    )
    .unwrap();
    s
}

fn sha_hex(s: &str) -> String {
    esg_gsi::sha256(s.as_bytes())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(23);
    let n_requests: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let out_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_request_pipeline.json".into());

    println!(
        "== A12: {n_requests} concurrent mixed hot/cold requests (seed {seed}, \
         min_rate {:.1} MB/s) ==\n",
        MIN_RATE / 1e6
    );

    let sched = run(seed, n_requests, true);
    report(&sched);
    let legacy = run(seed, n_requests, false);
    report(&legacy);

    // -- Equivalence: same deliveries, fully verified, in both arms. ------
    let mut failed = false;
    if sched.deliveries != legacy.deliveries {
        eprintln!("BENCH FAILED: delivered bytes differ between arms");
        failed = true;
    }
    for v in [&sched, &legacy] {
        if v.deliveries
            .iter()
            .any(|(_, _, size, done_b, done)| !done || done_b != size)
        {
            eprintln!(
                "BENCH FAILED [{}]: a file finished short of its size",
                v.mode
            );
            failed = true;
        }
        if v.verified != v.completes {
            eprintln!(
                "BENCH FAILED [{}]: {} completions but only {} digest-verified",
                v.mode, v.completes, v.verified
            );
            failed = true;
        }
    }

    // -- Scheduler invariants. -------------------------------------------
    let host_cap = 8; // SchedulerConfig::default().max_inflight_per_host
    if sched.peak_host_inflight > host_cap {
        eprintln!(
            "BENCH FAILED: per-host in-flight peaked at {} (cap {host_cap})",
            sched.peak_host_inflight
        );
        failed = true;
    }
    if sched.prestaged == 0 || sched.tuned == 0 {
        eprintln!("BENCH FAILED: scheduler arm never prestaged or never BDP-tuned");
        failed = true;
    }

    // -- Performance: the whole point of the scheduler. -------------------
    let speedup = legacy.makespan / sched.makespan.max(1e-9);
    println!(
        "\n  deliveries: IDENTICAL ({} files, every completion digest-verified)",
        sched.deliveries.len()
    );
    println!("  makespan speedup (legacy / scheduler): {speedup:.2}x");
    if speedup < 1.3 {
        eprintln!("BENCH FAILED: makespan speedup {speedup:.2}x below the 1.3x floor");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }

    let trace_sha = sha_hex(&sched.trace_ulm);
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"request_pipeline\",\n  \"seed\": {},\n",
            "  \"requests\": {},\n  \"files_per_request\": 18,\n",
            "  \"min_rate_mb_s\": {:.1},\n  \"variants\": [\n    {},\n    {}\n  ],\n",
            "  \"speedup_makespan\": {:.2},\n  \"equivalent\": true,\n",
            "  \"trace_sha256\": \"{}\"\n}}\n"
        ),
        seed,
        n_requests,
        MIN_RATE / 1e6,
        json_variant(&sched),
        json_variant(&legacy),
        speedup,
        trace_sha,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("  scheduler trace sha256: {trace_sha}");
    println!("  wrote {out_path}");
}
