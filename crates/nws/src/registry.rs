//! The NWS measurement registry and simulator-driven sensors.
//!
//! The request manager "consults the NWS to determine the current transfer
//! and latency from the site where the file resides to the local site"
//! (§4). [`NwsRegistry`] holds per-path measurement histories and adaptive
//! forecasts; [`start_sensor`] schedules the periodic probe loop on the
//! simulator (a small memory-to-memory transfer, timed end to end, exactly
//! like NWS's network sensor).

use crate::forecast::{AdaptiveForecaster, Forecaster};
use esg_simnet::{FlowSpec, NodeId, Sim, SimDuration, SimTime};
use std::collections::HashMap;

/// Measurements and forecasts for one directed path.
#[derive(Default)]
pub struct PathStats {
    bandwidth: AdaptiveForecaster,
    latency: AdaptiveForecaster,
    history: Vec<(SimTime, f64)>,
}

/// The measurement store the MDS publishes and the RM queries.
#[derive(Default)]
pub struct NwsRegistry {
    paths: HashMap<(NodeId, NodeId), PathStats>,
    /// Per-host available-CPU forecasts (NWS "forecasts ... available CPU
    /// percentage for each machine that it monitors", §5).
    cpu: HashMap<NodeId, AdaptiveForecaster>,
}

impl NwsRegistry {
    pub fn new() -> Self {
        NwsRegistry::default()
    }

    /// Record a bandwidth measurement (bytes/sec) for src→dst at `t`.
    pub fn observe_bandwidth(&mut self, src: NodeId, dst: NodeId, t: SimTime, rate: f64) {
        let stats = self.paths.entry((src, dst)).or_default();
        stats.bandwidth.observe(rate);
        stats.history.push((t, rate));
    }

    /// Record a latency measurement (seconds) for src→dst.
    pub fn observe_latency(&mut self, src: NodeId, dst: NodeId, seconds: f64) {
        self.paths
            .entry((src, dst))
            .or_default()
            .latency
            .observe(seconds);
    }

    /// Forecast bandwidth (bytes/sec) for src→dst.
    pub fn forecast_bandwidth(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.paths.get(&(src, dst))?.bandwidth.predict()
    }

    /// Forecast latency (seconds) for src→dst.
    pub fn forecast_latency(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.paths.get(&(src, dst))?.latency.predict()
    }

    /// Raw bandwidth measurement history for a path.
    pub fn history(&self, src: NodeId, dst: NodeId) -> &[(SimTime, f64)] {
        self.paths
            .get(&(src, dst))
            .map_or(&[], |s| s.history.as_slice())
    }

    /// Number of paths with at least one measurement.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The forecasting method currently winning for a path's bandwidth.
    pub fn best_bandwidth_method(&self, src: NodeId, dst: NodeId) -> Option<&str> {
        Some(self.paths.get(&(src, dst))?.bandwidth.best_method())
    }

    /// Record an available-CPU measurement (1.0 = fully idle).
    pub fn observe_cpu(&mut self, host: NodeId, available: f64) {
        self.cpu
            .entry(host)
            .or_insert_with(AdaptiveForecaster::standard)
            .observe(available.clamp(0.0, 1.0));
    }

    /// Forecast available CPU fraction for a host.
    pub fn forecast_cpu(&self, host: NodeId) -> Option<f64> {
        self.cpu.get(&host)?.predict()
    }
}

/// World-access trait so sensors can run inside any simulation world.
pub trait HasNws {
    fn nws(&mut self) -> &mut NwsRegistry;
}

/// Default probe size: NWS's network sensor moves a small fixed payload.
pub const DEFAULT_PROBE_BYTES: f64 = 512.0 * 1024.0;

/// Schedule a periodic CPU sensor on `host`: each period it reads the
/// host's network-processing CPU utilization from the simulator and
/// records the available fraction.
pub fn start_cpu_sensor<W: HasNws + 'static>(sim: &mut Sim<W>, host: NodeId, period: SimDuration) {
    sim.schedule(period, move |s| {
        let used = s.net.host_cpu_utilization(host);
        s.world.nws().observe_cpu(host, 1.0 - used);
        start_cpu_sensor(s, host, period);
    });
}

/// Schedule a periodic bandwidth+latency sensor for src→dst.
///
/// Each period: record the path RTT (latency sensor), then time a
/// `probe_bytes` memory-to-memory transfer (bandwidth sensor). The probe
/// shares the network with real traffic, so measurements see contention —
/// which is the point of NWS.
pub fn start_sensor<W: HasNws + 'static>(
    sim: &mut Sim<W>,
    src: NodeId,
    dst: NodeId,
    period: SimDuration,
    probe_bytes: f64,
) {
    schedule_probe(sim, src, dst, period, probe_bytes, SimDuration::ZERO);
}

fn schedule_probe<W: HasNws + 'static>(
    sim: &mut Sim<W>,
    src: NodeId,
    dst: NodeId,
    period: SimDuration,
    probe_bytes: f64,
    delay: SimDuration,
) {
    sim.schedule(delay, move |s| {
        // Latency sensor: ICMP-like, instantaneous read of path RTT.
        if let Some(rtt) = s.net.path_rtt(src, dst) {
            s.world.nws().observe_latency(src, dst, rtt.as_secs_f64());
        }
        // Bandwidth sensor: timed probe transfer.
        let started = s.now();
        let spec = FlowSpec::new(src, dst, probe_bytes).memory_to_memory();
        match s.start_flow(spec, move |s2| {
            let now = s2.now();
            let elapsed = now.since(started).as_secs_f64();
            if elapsed > 0.0 {
                s2.world
                    .nws()
                    .observe_bandwidth(src, dst, now, probe_bytes / elapsed);
            }
            schedule_probe(s2, src, dst, period, probe_bytes, period);
        }) {
            Ok(_) => {}
            Err(_) => {
                // Path down: record zero bandwidth and keep probing.
                let now = s.now();
                s.world.nws().observe_bandwidth(src, dst, now, 0.0);
                schedule_probe(s, src, dst, period, probe_bytes, period);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_simnet::{Node, Topology};

    struct World {
        nws: NwsRegistry,
    }

    impl HasNws for World {
        fn nws(&mut self) -> &mut NwsRegistry {
            &mut self.nws
        }
    }

    fn sim(cap: f64, latency_ms: u64) -> (Sim<World>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node(Node::host("a"));
        let b = topo.add_node(Node::host("b"));
        topo.add_link(a, b, cap, SimDuration::from_millis(latency_ms));
        (
            Sim::new(
                topo,
                World {
                    nws: NwsRegistry::new(),
                },
            ),
            a,
            b,
        )
    }

    #[test]
    fn registry_forecasts_after_observations() {
        let mut r = NwsRegistry::new();
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(r.forecast_bandwidth(a, b), None);
        for i in 0..10 {
            r.observe_bandwidth(a, b, SimTime::from_secs(i), 50e6);
        }
        let f = r.forecast_bandwidth(a, b).unwrap();
        assert!((f - 50e6).abs() < 1.0);
        assert_eq!(r.history(a, b).len(), 10);
        assert_eq!(r.path_count(), 1);
    }

    #[test]
    fn directional_paths_are_independent() {
        let mut r = NwsRegistry::new();
        let (a, b) = (NodeId(0), NodeId(1));
        r.observe_bandwidth(a, b, SimTime::ZERO, 10e6);
        assert!(r.forecast_bandwidth(b, a).is_none());
    }

    #[test]
    fn cpu_sensor_sees_load() {
        let mut topo = Topology::new();
        let cpu = esg_simnet::CpuModel {
            cycles_per_sec: 800e6,
            cycles_per_byte: 8.0,
            coalescing_factor: 1.0,
            jumbo_frames: false,
        };
        let a = topo.add_node(Node::host("a").with_cpu(cpu));
        let b = topo.add_node(Node::host("b"));
        topo.add_link(a, b, 50e6, SimDuration::ZERO);
        let mut sim = Sim::new(
            topo,
            World {
                nws: NwsRegistry::new(),
            },
        );
        start_cpu_sensor(&mut sim, a, SimDuration::from_secs(10));
        sim.run_until(SimTime::from_secs(60));
        // Idle: fully available.
        let avail = sim.world.nws.forecast_cpu(a).unwrap();
        assert!((avail - 1.0).abs() < 1e-9, "{avail}");
        // Load the host and keep sensing.
        sim.start_flow_detached(
            FlowSpec::new(a, b, f64::INFINITY)
                .window(1e12)
                .memory_to_memory(),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(600));
        let avail = sim.world.nws.forecast_cpu(a).unwrap();
        assert!(avail < 0.7, "host under load: {avail}");
    }

    #[test]
    fn sensor_measures_real_path() {
        let (mut sim, a, b) = sim(100e6, 5);
        start_sensor(
            &mut sim,
            a,
            b,
            SimDuration::from_secs(30),
            DEFAULT_PROBE_BYTES,
        );
        sim.run_until(SimTime::from_secs(300));
        let bw = sim.world.nws.forecast_bandwidth(a, b).unwrap();
        // Small probes pay slow start, so they underestimate the 100 MB/s
        // path — but should land within an order of magnitude.
        assert!(bw > 5e6 && bw <= 100.1e6, "bw estimate {bw}");
        let lat = sim.world.nws.forecast_latency(a, b).unwrap();
        assert!((lat - 0.010).abs() < 1e-6, "latency {lat}");
        assert!(sim.world.nws.history(a, b).len() >= 9);
    }

    #[test]
    fn sensor_tracks_contention() {
        let (mut sim, a, b) = sim(100e6, 0);
        start_sensor(
            &mut sim,
            a,
            b,
            SimDuration::from_secs(10),
            DEFAULT_PROBE_BYTES,
        );
        // Quiet period.
        sim.run_until(SimTime::from_secs(100));
        let quiet = sim.world.nws.forecast_bandwidth(a, b).unwrap();
        // Start a fat background flow consuming most of the link.
        sim.start_flow_detached(
            FlowSpec::new(a, b, f64::INFINITY)
                .window(1e12)
                .memory_to_memory(),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(1000));
        let busy = sim.world.nws.forecast_bandwidth(a, b).unwrap();
        assert!(
            busy < quiet * 0.8,
            "probe should see contention: quiet {quiet} busy {busy}"
        );
    }

    #[test]
    fn sensor_survives_outage() {
        let (mut sim, a, b) = sim(100e6, 0);
        start_sensor(
            &mut sim,
            a,
            b,
            SimDuration::from_secs(10),
            DEFAULT_PROBE_BYTES,
        );
        sim.run_until(SimTime::from_secs(35));
        let before = sim.world.nws.history(a, b).len();
        sim.schedule(SimDuration::ZERO, |s| {
            s.net.set_link_up(esg_simnet::LinkId(0), false)
        });
        sim.run_until(SimTime::from_secs(100));
        // Probes during the outage record 0 (failed starts) or stall.
        sim.schedule(SimDuration::ZERO, |s| {
            s.net.set_link_up(esg_simnet::LinkId(0), true)
        });
        sim.run_until(SimTime::from_secs(200));
        let after = sim.world.nws.history(a, b).len();
        assert!(after > before, "sensor must keep measuring after recovery");
    }
}
