//! # esg-netlogger — instrumentation and bandwidth statistics
//!
//! A reproduction of the role NetLogger (ref. \[13\] in the paper) played: structured
//! timestamped events from every component ([`event`]), causal trace context
//! and span emission ([`trace`]), offline lifeline reconstruction — the
//! Figure 8 phase decomposition — ([`lifeline`]), a deterministic metrics
//! registry ([`metrics`]), and the cumulative byte curves + windowed rate
//! statistics behind Table 1 and Figure 8 ([`bandwidth`]).

pub mod bandwidth;
pub mod event;
pub mod lifeline;
pub mod live;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use bandwidth::{to_gbps, to_mbps, BandwidthMeter};
pub use event::{sanitize_key, LogEvent, NetLog, OrderPolicy, UlmError, Value};
pub use lifeline::{CriticalPath, Lifeline, LifelineSet, Span, Stall};
pub use live::{LiveLifelines, OpenSpan};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use trace::{Phase, SpanId, TraceCtx, TracedLog};
