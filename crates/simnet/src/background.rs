//! Background (cross) traffic generation.
//!
//! The paper's testbeds were shared: SciNet carried the whole exhibition
//! floor, and the Figure 8 path crossed the commodity Internet. This
//! module generates on/off background flows — exponential-ish on/off
//! periods, seeded and deterministic — so experiments can include the
//! contention real measurements saw.

use crate::flownet::FlowSpec;
use crate::kernel::Sim;
use crate::network::NodeId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration for one background traffic source.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundTraffic {
    pub src: NodeId,
    pub dst: NodeId,
    /// Mean ON period (a burst's duration).
    pub mean_on: SimDuration,
    /// Mean OFF period between bursts.
    pub mean_off: SimDuration,
    /// Burst throughput ceiling, bytes/sec (the flow's window-derived cap;
    /// actual rate still subject to fair sharing).
    pub burst_rate: f64,
    /// RNG seed (each source should get its own).
    pub seed: u64,
    /// Stop generating at this time.
    pub until: SimTime,
}

/// Exponential sample via inverse CDF, kept deterministic per source.
fn exp_sample(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(1e-9..1.0);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

/// Start an on/off background source. Each ON period runs one unbounded
/// flow (capped by a window sized to `burst_rate` over the path RTT),
/// cancelled at the period's end.
pub fn start_background<W: 'static>(sim: &mut Sim<W>, cfg: BackgroundTraffic) {
    let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(cfg.seed)));
    schedule_off(sim, cfg, rng);
}

fn schedule_off<W: 'static>(sim: &mut Sim<W>, cfg: BackgroundTraffic, rng: Rc<RefCell<StdRng>>) {
    let off = exp_sample(&mut rng.borrow_mut(), cfg.mean_off);
    sim.schedule(off, move |s| {
        if s.now() >= cfg.until {
            return;
        }
        let on = exp_sample(&mut rng.borrow_mut(), cfg.mean_on);
        // Window that yields ~burst_rate on this path.
        let window = match s.net.path_rtt(cfg.src, cfg.dst) {
            Some(rtt) if !rtt.is_zero() => cfg.burst_rate * rtt.as_secs_f64(),
            _ => 1e12,
        };
        let spec = FlowSpec::new(cfg.src, cfg.dst, f64::INFINITY)
            .window(window.max(4096.0))
            .memory_to_memory();
        match s.start_flow_detached(spec) {
            Ok(flow) => {
                let rng2 = rng.clone();
                s.schedule(on, move |s2| {
                    s2.net.remove_flow(flow);
                    schedule_off(s2, cfg, rng2);
                });
            }
            Err(_) => {
                // Path down: try again after another off period.
                schedule_off(s, cfg, rng);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Node, Topology};

    fn setup() -> (Sim<()>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node(Node::host("bg-src"));
        let b = topo.add_node(Node::host("bg-dst"));
        topo.add_link(a, b, 100e6, SimDuration::from_millis(10));
        (Sim::new(topo, ()), a, b)
    }

    fn cfg(a: NodeId, b: NodeId, seed: u64) -> BackgroundTraffic {
        BackgroundTraffic {
            src: a,
            dst: b,
            mean_on: SimDuration::from_secs(5),
            mean_off: SimDuration::from_secs(5),
            burst_rate: 50e6,
            seed,
            until: SimTime::from_secs(300),
        }
    }

    #[test]
    fn bursts_come_and_go() {
        let (mut sim, a, b) = setup();
        start_background(&mut sim, cfg(a, b, 1));
        let mut saw_on = false;
        let mut saw_off = false;
        for t in 1..250 {
            sim.run_until(SimTime::from_secs(t));
            match sim.net.active_flow_count() {
                0 => saw_off = true,
                _ => saw_on = true,
            }
        }
        assert!(saw_on, "background must burst");
        assert!(saw_off, "background must go quiet");
    }

    #[test]
    fn stops_at_deadline() {
        let (mut sim, a, b) = setup();
        start_background(&mut sim, cfg(a, b, 2));
        sim.run_until(SimTime::from_secs(400));
        sim.run();
        assert_eq!(sim.net.active_flow_count(), 0);
        assert!(
            sim.now() <= SimTime::from_secs(500),
            "generator must wind down"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<usize> {
            let (mut sim, a, b) = setup();
            start_background(&mut sim, cfg(a, b, seed));
            (1..100)
                .map(|t| {
                    sim.run_until(SimTime::from_secs(t));
                    sim.net.active_flow_count()
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn contends_with_foreground_traffic() {
        let (mut sim, a, b) = setup();
        // Foreground unbounded flow; measure its rate with and without
        // background pressure.
        let fg = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        sim.run_until(SimTime::from_secs(2));
        let alone = sim.net.flow_rate(fg);
        start_background(
            &mut sim,
            BackgroundTraffic {
                mean_off: SimDuration::from_secs(1),
                mean_on: SimDuration::from_secs(30),
                ..cfg(a, b, 3)
            },
        );
        // Find a moment when the burst is active. Sampling right at the
        // second boundary can catch the burst mid slow-start (cap still a
        // few MSS/RTT), so give it half a second to finish ramping first.
        let mut contended = alone;
        for t in 3..120 {
            sim.run_until(SimTime::from_secs(t));
            if sim.net.active_flow_count() > 1 {
                sim.run_until(sim.now() + SimDuration::from_millis(500));
                if sim.net.active_flow_count() > 1 {
                    contended = sim.net.flow_rate(fg);
                    break;
                }
            }
        }
        assert!(
            contended < alone * 0.8,
            "background must take a share: {alone} -> {contended}"
        );
    }
}
