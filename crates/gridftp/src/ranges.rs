//! Byte-range bookkeeping for restartable transfers.
//!
//! GridFTP's "support for reliable and restartable data transfer" (§6.1)
//! rests on restart markers: the receiver tracks which byte ranges have
//! landed (extended block mode delivers out of order across parallel
//! streams), and on restart asks only for the holes. [`RangeSet`] is that
//! bookkeeping: a normalized set of disjoint half-open `[start, end)`
//! ranges.

use std::fmt;

/// A normalized set of disjoint, sorted, non-adjacent byte ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>, // half-open [start, end)
}

impl RangeSet {
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// A set covering `[0, len)`.
    pub fn full(len: u64) -> Self {
        let mut s = RangeSet::new();
        s.insert(0, len);
        s
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges.
    pub fn span_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Insert `[start, end)`, merging with any overlapping/adjacent ranges.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        let mut remove_from = None;
        let mut remove_to = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < start {
                // strictly before (not adjacent)
                i += 1;
                continue;
            }
            if s > end {
                break;
            }
            // Overlapping or adjacent.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            if remove_from.is_none() {
                remove_from = Some(i);
            }
            remove_to = i + 1;
            i += 1;
        }
        match remove_from {
            Some(from) => {
                self.ranges.drain(from..remove_to);
                self.ranges.insert(from, (new_start, new_end));
            }
            None => {
                let pos = self.ranges.partition_point(|&(s, _)| s < new_start);
                self.ranges.insert(pos, (new_start, new_end));
            }
        }
    }

    /// Whether `[start, end)` is fully covered.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        self.ranges.iter().any(|&(s, e)| s <= start && end <= e)
    }

    /// Whether the set covers exactly `[0, len)`.
    pub fn is_complete(&self, len: u64) -> bool {
        len == 0 || (self.ranges.len() == 1 && self.ranges[0] == (0, len))
    }

    /// The holes in `[0, len)` not covered by this set.
    pub fn gaps(&self, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for &(s, e) in &self.ranges {
            if s >= len {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(len)));
            }
            cursor = cursor.max(e);
        }
        if cursor < len {
            out.push((cursor, len));
        }
        out
    }

    /// Iterate the covered ranges.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// GridFTP restart-marker syntax: `0-99,200-299` (inclusive ends on the
    /// wire, half-open internally).
    pub fn to_marker(&self) -> String {
        let parts: Vec<String> = self
            .ranges
            .iter()
            .map(|&(s, e)| format!("{}-{}", s, e - 1))
            .collect();
        parts.join(",")
    }

    /// Parse restart-marker syntax.
    pub fn from_marker(s: &str) -> Option<RangeSet> {
        let mut set = RangeSet::new();
        let s = s.trim();
        if s.is_empty() {
            return Some(set);
        }
        for part in s.split(',') {
            let (a, b) = part.trim().split_once('-')?;
            let start: u64 = a.trim().parse().ok()?;
            let end_incl: u64 = b.trim().parse().ok()?;
            if end_incl < start {
                return None;
            }
            set.insert(start, end_incl + 1);
        }
        Some(set)
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_marker())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_disjoint_sorted() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        r.insert(0, 5);
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![(0, 5), (10, 20), (30, 40)]
        );
        assert_eq!(r.total(), 25);
        assert_eq!(r.span_count(), 3);
    }

    #[test]
    fn overlapping_merges() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(5, 15);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 15)]);
    }

    #[test]
    fn adjacent_merges() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(10, 20);
        assert_eq!(r.span_count(), 1);
        assert!(r.is_complete(20));
    }

    #[test]
    fn bridge_merges_three() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(20, 30);
        r.insert(10, 20);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 30)]);
    }

    #[test]
    fn empty_insert_ignored() {
        let mut r = RangeSet::new();
        r.insert(5, 5);
        assert!(r.is_empty());
    }

    #[test]
    fn contains_and_complete() {
        let mut r = RangeSet::new();
        r.insert(0, 100);
        assert!(r.contains(0, 100));
        assert!(r.contains(10, 20));
        assert!(!r.contains(50, 150));
        assert!(r.is_complete(100));
        assert!(!r.is_complete(101));
        assert!(RangeSet::new().is_complete(0));
    }

    #[test]
    fn gaps_found() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.gaps(50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(r.gaps(15), vec![(0, 10)]);
        assert_eq!(RangeSet::full(10).gaps(10), Vec::new());
        assert_eq!(RangeSet::new().gaps(5), vec![(0, 5)]);
    }

    #[test]
    fn marker_round_trip() {
        let mut r = RangeSet::new();
        r.insert(0, 100);
        r.insert(200, 300);
        let m = r.to_marker();
        assert_eq!(m, "0-99,200-299");
        assert_eq!(RangeSet::from_marker(&m).unwrap(), r);
        assert_eq!(RangeSet::from_marker("").unwrap(), RangeSet::new());
        assert!(RangeSet::from_marker("5-2").is_none());
        assert!(RangeSet::from_marker("abc").is_none());
    }

    #[test]
    fn out_of_order_blocks_complete() {
        // Simulate 4 parallel streams delivering interleaved blocks.
        let mut r = RangeSet::new();
        let block = 64u64;
        let total = 64 * 40;
        for stream in 0..4u64 {
            for i in 0..10u64 {
                let start = (i * 4 + stream) * block;
                r.insert(start, start + block);
            }
        }
        assert!(r.is_complete(total));
    }

    // --- ERET repair-coalescing edge cases ---------------------------
    // The integrity layer turns corrupt block indices into repair ranges
    // through this set; these pin the exact coalescing semantics it
    // depends on.

    #[test]
    fn eret_adjacent_blocks_coalesce() {
        const BS: u64 = 1 << 20;
        let mut r = RangeSet::new();
        // Corrupt blocks 3, 4, 5 of a large file — inserted out of order.
        for b in [4u64, 3, 5] {
            r.insert(b * BS, (b + 1) * BS);
        }
        assert_eq!(r.span_count(), 1, "adjacent blocks must merge");
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(3 * BS, 6 * BS)]);
        assert_eq!(r.to_marker(), format!("{}-{}", 3 * BS, 6 * BS - 1));
    }

    #[test]
    fn eret_overlapping_reinsertion_is_idempotent() {
        const BS: u64 = 1 << 20;
        let mut r = RangeSet::new();
        r.insert(2 * BS, 3 * BS);
        // The same block reported corrupt twice (two verify rounds), plus
        // a half-block overlap from a clipped segment.
        r.insert(2 * BS, 3 * BS);
        r.insert(2 * BS + BS / 2, 3 * BS);
        assert_eq!(r.total(), BS);
        assert_eq!(r.span_count(), 1);
    }

    #[test]
    fn eret_zero_length_ranges_are_dropped() {
        let mut r = RangeSet::new();
        r.insert(100, 100);
        r.insert(0, 0);
        assert!(r.is_empty());
        assert_eq!(r.to_marker(), "");
        assert_eq!(RangeSet::from_marker("").unwrap(), r);
        // A zero-length insert between two spans must not bridge them.
        r.insert(0, 10);
        r.insert(20, 30);
        r.insert(15, 15);
        assert_eq!(r.span_count(), 2);
    }

    #[test]
    fn eret_end_of_file_partial_block() {
        const BS: u64 = 1 << 20;
        // 3.5-block file: the final block's repair range is clipped to EOF.
        let size = 3 * BS + BS / 2;
        let mut r = RangeSet::new();
        r.insert(3 * BS, (4 * BS).min(size));
        assert_eq!(r.total(), BS / 2);
        // Together with the penultimate block it still coalesces cleanly
        // up to EOF and completes the tail of the file.
        r.insert(2 * BS, 3 * BS);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(2 * BS, size)]);
        assert!(!r.is_complete(size));
        r.insert(0, 2 * BS);
        assert!(r.is_complete(size));
    }

    #[test]
    fn random_insertion_order_normalizes() {
        // Deterministic pseudo-shuffle of 100 blocks.
        let mut order: Vec<u64> = (0..100).collect();
        for i in 0..order.len() {
            let j = (i * 37 + 11) % order.len();
            order.swap(i, j);
        }
        let mut r = RangeSet::new();
        for b in order {
            r.insert(b * 10, b * 10 + 10);
        }
        assert!(r.is_complete(1000));
        assert_eq!(r.span_count(), 1);
    }
}
