//! End-to-end integrity: verify delivered blocks, plan repairs, quarantine
//! bad replicas.
//!
//! The request manager's reliability plugin (§7) guarantees *delivery* —
//! every byte arrives. This layer guarantees *correctness*: when a file's
//! bytes have all landed, the client recomputes per-block digests of what
//! it received and compares them against the expected digests pinned in
//! the replica catalog. Any mismatch triggers a block-granular ERET repair
//! (re-fetching only the corrupt byte ranges, preferring an alternate
//! replica), bounded rounds of which escalate to a whole-file re-transfer.
//! A replica that repeatedly serves corrupt blocks is *quarantined*:
//! marked suspect in the catalog and demoted by selection until a
//! background re-verification pass rehabilitates it. Quarantine is
//! deliberately distinct from the circuit breakers — a breaker says "this
//! host is unreachable", quarantine says "this host answers fine but its
//! data is bad".
//!
//! Because the simulator moves flows rather than bytes, "what the client
//! received" is reconstructed symbolically from the *segment log*: every
//! banked byte range records which host served it, over which interval,
//! and under which transfer sequence number. A block's received digest is
//! its pristine digest unless a contributing segment was tainted — by an
//! at-rest flip in the serving site's [`ObjectStore`] present when the
//! segment was read, or by an active wire-corruption fault sampled per
//! `(key, transfer, block)` — with later segments overwriting earlier ones
//! (last-writer-wins), exactly as overlapping writes to a local file would.

use esg_gridftp::RangeSet;
use esg_simnet::{NodeId, SimDuration, SimTime};
use esg_storage::{
    block_count, blocks_overlapping, corrupt_block_digest, pristine_block_digest, stable_hash,
    ObjectStore, BLOCK_SIZE,
};
use std::collections::{BTreeSet, HashMap};

/// One banked byte range and its provenance: who served it, when, and
/// under which transfer sequence number (the wire-corruption sampling key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegRecord {
    pub host: String,
    pub node: NodeId,
    /// Half-open byte range `[start, end)` within the file.
    pub start: u64,
    pub end: u64,
    /// Interval over which the segment's bytes were in flight.
    pub t0: SimTime,
    pub t1: SimTime,
    /// Manager-global transfer sequence number.
    pub seq: u64,
}

/// A segment with its integrity context resolved: whether a wire-corruption
/// fault overlapped its flight window, and which at-rest flips were present
/// at the serving site when it was read.
#[derive(Debug, Clone)]
pub struct SegmentView {
    pub host: String,
    pub start: u64,
    pub end: u64,
    pub seq: u64,
    /// A `WireCorrupt` fault at the serving node overlapped `[t0, t1]`.
    pub wire_active: bool,
    /// `(block, nonce)` flips recorded in the site's store by `t1`.
    pub at_rest: Vec<(u64, u64)>,
}

/// Result of verifying a file's received blocks against expectations.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Hex digest over the received per-block digests.
    pub received_hex: String,
    /// `(block, blamed host)` for every mismatching block, sorted by block.
    pub corrupt: Vec<(u64, String)>,
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }

    /// Distinct blamed hosts, sorted (deterministic event order).
    pub fn blamed_hosts(&self) -> Vec<String> {
        let set: BTreeSet<&String> = self.corrupt.iter().map(|(_, h)| h).collect();
        set.into_iter().cloned().collect()
    }

    /// Corrupt block indices, sorted.
    pub fn corrupt_blocks(&self) -> Vec<u64> {
        self.corrupt.iter().map(|&(b, _)| b).collect()
    }
}

/// Reconstruct the received per-block digests of a file from its segment
/// log and compare against the pristine expectation for `key`.
///
/// Segments are replayed newest-first with a coverage tracker so a byte
/// range overwritten by a later segment cannot taint the result
/// (last-writer-wins). A contributing segment corrupts a block if the
/// serving site held an at-rest flip of that block when the segment was
/// read, or if an active wire fault's deterministic sampler
/// (`stable_hash(key, seq, block) % wire_denom == 0`) hit it.
pub fn verify_blocks(
    key: &str,
    size: u64,
    wire_denom: u64,
    segments: &[SegmentView],
) -> VerifyReport {
    let n = block_count(size) as usize;
    let expected: Vec<[u8; 32]> = (0..n as u64)
        .map(|b| pristine_block_digest(key, b))
        .collect();
    let mut received = expected.clone();
    let mut blame: Vec<Option<&str>> = vec![None; n];
    let mut covered = RangeSet::new();
    for seg in segments.iter().rev() {
        let (s0, e0) = (seg.start, seg.end.min(size));
        for b in blocks_overlapping(s0, e0) {
            let bs = (b * BLOCK_SIZE).max(s0);
            let be = ((b + 1) * BLOCK_SIZE).min(e0);
            if bs >= be || covered.contains(bs, be) {
                continue; // fully overwritten by a later segment
            }
            let at_rest = seg
                .at_rest
                .iter()
                .find(|&&(blk, _)| blk == b)
                .map(|&(_, nonce)| nonce);
            let wire = seg.wire_active
                && wire_denom > 0
                && stable_hash(key, seg.seq, b).is_multiple_of(wire_denom);
            if let Some(nonce) = at_rest {
                received[b as usize] = corrupt_block_digest(key, b, nonce);
                blame[b as usize] = Some(&seg.host);
            }
            if wire {
                let nonce = stable_hash(key, seg.seq, b) | 1;
                received[b as usize] = corrupt_block_digest(key, b, nonce);
                blame[b as usize] = Some(&seg.host);
            }
        }
        covered.insert(s0, e0);
    }
    let corrupt = esg_gridftp::mismatched_blocks(&expected, &received)
        .into_iter()
        .map(|b| (b, blame[b as usize].unwrap_or_default().to_string()))
        .collect();
    VerifyReport {
        received_hex: esg_storage::file_digest_hex_of(&received),
        corrupt,
    }
}

/// Integrity policy and quarantine bookkeeping, owned by the request
/// manager.
#[derive(Debug)]
pub struct IntegrityManager {
    /// Distinct verify rounds blaming a host before it is quarantined.
    pub quarantine_threshold: u32,
    /// Block-granular ERET repair rounds before escalating to a whole-file
    /// re-transfer.
    pub max_repair_rounds: u32,
    /// Delay before a quarantined replica is re-verified and rehabilitated.
    pub reverify_after: SimDuration,
    /// A wire fault corrupts a block when
    /// `stable_hash(key, seq, block) % wire_rate_denom == 0`; larger means
    /// sparser corruption, zero disables wire sampling.
    pub wire_rate_denom: u64,
    /// At-rest corruption for plain disk sites (tape sites record theirs in
    /// their HRM's store).
    pub stores: HashMap<String, ObjectStore>,
    incidents: HashMap<(String, String), u32>,
    quarantined: BTreeSet<(String, String)>,
}

impl Default for IntegrityManager {
    fn default() -> Self {
        IntegrityManager {
            quarantine_threshold: 3,
            max_repair_rounds: 3,
            reverify_after: SimDuration::from_secs(300),
            wire_rate_denom: 16,
            stores: HashMap::new(),
            incidents: HashMap::new(),
            quarantined: BTreeSet::new(),
        }
    }
}

impl IntegrityManager {
    /// Count one corrupt-serving incident against `(collection, host)` and
    /// return the new total.
    pub fn record_incident(&mut self, collection: &str, host: &str) -> u32 {
        let c = self
            .incidents
            .entry((collection.to_string(), host.to_string()))
            .or_insert(0);
        *c += 1;
        *c
    }

    pub fn incident_count(&self, collection: &str, host: &str) -> u32 {
        self.incidents
            .get(&(collection.to_string(), host.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Whether the incident count warrants quarantine and the pair is not
    /// already quarantined; if so, records the quarantine. The caller owns
    /// the catalog mark, logging and rehabilitation scheduling.
    pub fn quarantine_if_due(&mut self, collection: &str, host: &str) -> bool {
        let key = (collection.to_string(), host.to_string());
        if self.incidents.get(&key).copied().unwrap_or(0) < self.quarantine_threshold
            || self.quarantined.contains(&key)
        {
            return false;
        }
        self.quarantined.insert(key);
        true
    }

    pub fn is_quarantined(&self, collection: &str, host: &str) -> bool {
        self.quarantined
            .contains(&(collection.to_string(), host.to_string()))
    }

    /// Lift a quarantine (background re-verification passed): clears the
    /// incident counter. Returns false if the pair was not quarantined.
    pub fn rehabilitate(&mut self, collection: &str, host: &str) -> bool {
        let key = (collection.to_string(), host.to_string());
        if !self.quarantined.remove(&key) {
            return false;
        }
        self.incidents.remove(&key);
        true
    }

    /// Export the current incident/quarantine state into a metrics
    /// registry (gauges, since both can shrink on rehabilitation).
    pub fn export_metrics(&self, reg: &mut esg_netlogger::MetricsRegistry) {
        let incidents: u32 = self.incidents.values().sum();
        reg.gauge_set("rm.integrity.open_incidents", incidents as f64);
        reg.gauge_set(
            "rm.integrity.quarantined_replicas",
            self.quarantined.len() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(host: &str, start: u64, end: u64, seq: u64) -> SegmentView {
        SegmentView {
            host: host.into(),
            start,
            end,
            seq,
            wire_active: false,
            at_rest: Vec::new(),
        }
    }

    #[test]
    fn clean_segments_verify_clean() {
        let size = 3 * BLOCK_SIZE + 100;
        let r = verify_blocks("c/f", size, 16, &[seg("a", 0, size, 1)]);
        assert!(r.is_clean());
        assert_eq!(r.received_hex, esg_storage::file_digest_hex("c/f", size));
    }

    #[test]
    fn at_rest_flip_corrupts_exactly_its_block() {
        let size = 4 * BLOCK_SIZE;
        let mut s = seg("a", 0, size, 1);
        s.at_rest = vec![(2, 99)];
        let r = verify_blocks("c/f", size, 0, &[s]);
        assert_eq!(r.corrupt, vec![(2, "a".to_string())]);
        assert_ne!(r.received_hex, esg_storage::file_digest_hex("c/f", size));
    }

    #[test]
    fn later_segment_overwrites_earlier_corruption() {
        let size = 4 * BLOCK_SIZE;
        let mut bad = seg("a", 0, size, 1);
        bad.at_rest = vec![(1, 7)];
        // A repair segment from host b re-delivered block 1 afterwards.
        let repair = seg("b", BLOCK_SIZE, 2 * BLOCK_SIZE, 2);
        let r = verify_blocks("c/f", size, 0, &[bad.clone(), repair]);
        assert!(r.is_clean(), "repaired block must verify clean");
        // Without the repair it does not.
        assert!(!verify_blocks("c/f", size, 0, &[bad]).is_clean());
    }

    #[test]
    fn partial_overwrite_does_not_clear_the_rest_of_the_block() {
        let size = 2 * BLOCK_SIZE;
        let mut bad = seg("a", 0, size, 1);
        bad.at_rest = vec![(0, 7)];
        // Only half of block 0 was re-delivered: the corrupt half of the
        // original segment still contributes, so the block stays corrupt.
        let partial = seg("b", 0, BLOCK_SIZE / 2, 2);
        let r = verify_blocks("c/f", size, 0, &[bad, partial]);
        assert_eq!(r.corrupt_blocks(), vec![0]);
    }

    #[test]
    fn wire_fault_samples_deterministically() {
        let size = 64 * BLOCK_SIZE;
        let mut s = seg("a", 0, size, 5);
        s.wire_active = true;
        let r1 = verify_blocks("c/f", size, 8, &[s.clone()]);
        let r2 = verify_blocks("c/f", size, 8, &[s.clone()]);
        assert_eq!(r1.corrupt, r2.corrupt, "same seed, same damage");
        assert!(
            !r1.corrupt.is_empty() && r1.corrupt.len() < 64,
            "1/8 sampling over 64 blocks should hit some but not all: {}",
            r1.corrupt.len()
        );
        // A retry (different seq) samples a different subset.
        let mut s2 = s.clone();
        s2.seq = 6;
        let r3 = verify_blocks("c/f", size, 8, &[s2]);
        assert_ne!(r1.corrupt, r3.corrupt);
        // Denominator zero disables wire corruption entirely.
        assert!(verify_blocks("c/f", size, 0, &[s]).is_clean());
    }

    #[test]
    fn blame_lands_on_the_serving_host() {
        let size = 4 * BLOCK_SIZE;
        let mut a = seg("alpha", 0, 2 * BLOCK_SIZE, 1);
        a.at_rest = vec![(0, 3)];
        let mut b = seg("beta", 2 * BLOCK_SIZE, size, 2);
        b.at_rest = vec![(3, 4)];
        let r = verify_blocks("c/f", size, 0, &[a, b]);
        assert_eq!(
            r.corrupt,
            vec![(0, "alpha".to_string()), (3, "beta".to_string())]
        );
        assert_eq!(r.blamed_hosts(), vec!["alpha", "beta"]);
    }

    #[test]
    fn zero_size_file_is_trivially_clean() {
        let r = verify_blocks("c/empty", 0, 16, &[]);
        assert!(r.is_clean());
        assert_eq!(r.received_hex, esg_storage::file_digest_hex("c/empty", 0));
    }

    #[test]
    fn quarantine_threshold_and_rehabilitation() {
        let mut im = IntegrityManager {
            quarantine_threshold: 2,
            ..Default::default()
        };
        assert_eq!(im.record_incident("c", "h"), 1);
        assert!(!im.quarantine_if_due("c", "h"));
        assert_eq!(im.record_incident("c", "h"), 2);
        assert!(im.quarantine_if_due("c", "h"));
        assert!(!im.quarantine_if_due("c", "h"), "already quarantined");
        assert!(im.is_quarantined("c", "h"));
        // Other collections/hosts are independent.
        assert!(!im.is_quarantined("c", "other"));
        assert!(im.rehabilitate("c", "h"));
        assert!(!im.rehabilitate("c", "h"));
        assert!(!im.is_quarantined("c", "h"));
        assert_eq!(im.incident_count("c", "h"), 0, "counter reset");
    }
}
