//! A7: HRM tape staging impact on request latency.
//! §4: "HRM ... stages files from the MSS to its local disk cache. After
//! this action is complete, the RM uses GridFTP to move the file."

use esg_core::hrm_staging_comparison;

fn main() {
    println!("== A7: request latency vs storage tier (100 MB file) ==\n");
    for (name, secs) in hrm_staging_comparison() {
        println!("{name:>26}: {secs:>8.1} s");
    }
    println!("\nshape: cold tape pays mount+seek+stream before any WAN byte");
    println!("moves; the HRM disk cache and prestaging collapse that to the");
    println!("disk-resident case.");
}
