//! Simulated Grid Security Infrastructure credentials.
//!
//! GSI (ref. \[7\] in the paper) uses X.509 certificates with RSA signatures and *proxy
//! certificates* for delegation (a user signs a short-lived key so that
//! services like the request manager can act on their behalf). Implementing
//! RSA is out of scope for this reproduction, so signatures are simulated
//! with HMAC-SHA-256 under the issuer's key, and relying parties hold the
//! CA key as their trust anchor (a shared-key trust model, as in Kerberos).
//! The *semantics* exercised by the prototype — identity assertion, chain
//! validation, expiry, delegation depth — are all real.

use crate::hmac::hmac_sha256;
use crate::sha256::{hex, sha256};

/// Simulated clock for credential lifetimes (seconds since epoch 0 of the
/// simulation).
pub type SecEpoch = u64;

/// A distinguished name, e.g. `/O=Grid/OU=ANL/CN=Veronika`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subject(pub String);

impl Subject {
    pub fn new(s: impl Into<String>) -> Self {
        Subject(s.into())
    }
}

impl std::fmt::Display for Subject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A certificate binding a subject to a key fingerprint, signed by an issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    pub subject: Subject,
    pub issuer: Subject,
    /// Fingerprint of the holder's (simulated) public key.
    pub key_fingerprint: String,
    pub not_before: SecEpoch,
    pub not_after: SecEpoch,
    /// Remaining delegation depth: `None` for end-entity certs issued by the
    /// CA, `Some(n)` for proxy certificates.
    pub proxy_depth: Option<u32>,
    /// Issuer's signature over the to-be-signed bytes.
    pub signature: [u8; 32],
}

impl Certificate {
    fn tbs(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(self.subject.0.as_bytes());
        v.push(0);
        v.extend_from_slice(self.issuer.0.as_bytes());
        v.push(0);
        v.extend_from_slice(self.key_fingerprint.as_bytes());
        v.push(0);
        v.extend_from_slice(&self.not_before.to_be_bytes());
        v.extend_from_slice(&self.not_after.to_be_bytes());
        match self.proxy_depth {
            None => v.push(0xff),
            Some(d) => {
                v.push(1);
                v.extend_from_slice(&d.to_be_bytes());
            }
        }
        v
    }

    pub fn is_proxy(&self) -> bool {
        self.proxy_depth.is_some()
    }

    pub fn valid_at(&self, now: SecEpoch) -> bool {
        self.not_before <= now && now <= self.not_after
    }
}

/// A private credential: certificate plus the holder's secret key material.
#[derive(Debug, Clone)]
pub struct Credential {
    pub cert: Certificate,
    /// Chain back to (but excluding) the CA: innermost proxy first.
    pub chain: Vec<Certificate>,
    /// Secret used to sign delegations and handshake transcripts.
    pub secret: [u8; 32],
}

impl Credential {
    /// Issue a proxy certificate valid for `lifetime` seconds, delegating to
    /// a fresh key. Returns the proxy credential whose chain includes this
    /// credential's certificate.
    pub fn delegate(
        &self,
        now: SecEpoch,
        lifetime: u64,
        seed: &[u8],
    ) -> Result<Credential, GsiError> {
        let depth = match self.cert.proxy_depth {
            None => u32::MAX, // end-entity can always delegate
            Some(0) => return Err(GsiError::DelegationDepthExceeded),
            Some(d) => d - 1,
        };
        if !self.cert.valid_at(now) {
            return Err(GsiError::Expired {
                subject: self.cert.subject.clone(),
            });
        }
        let proxy_secret = hmac_sha256(&self.secret, seed);
        let mut cert = Certificate {
            subject: Subject::new(format!("{}/CN=proxy", self.cert.subject)),
            issuer: self.cert.subject.clone(),
            key_fingerprint: hex(&sha256(&proxy_secret)),
            not_before: now,
            not_after: now + lifetime,
            proxy_depth: Some(depth.min(8)),
            signature: [0; 32],
        };
        cert.signature = hmac_sha256(&self.secret, &cert.tbs());
        let mut chain = vec![self.cert.clone()];
        chain.extend(self.chain.iter().cloned());
        Ok(Credential {
            cert,
            chain,
            secret: proxy_secret,
        })
    }

    /// The end-entity identity this credential ultimately speaks for
    /// (strips `/CN=proxy` components).
    pub fn identity(&self) -> Subject {
        self.chain
            .last()
            .map(|c| c.subject.clone())
            .unwrap_or_else(|| self.cert.subject.clone())
    }
}

/// A certificate authority: issues end-entity certificates and acts as the
/// trust anchor for verification.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    pub name: Subject,
    secret: [u8; 32],
}

/// Errors from credential operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsiError {
    BadSignature { subject: Subject },
    Expired { subject: Subject },
    UntrustedIssuer { issuer: Subject },
    DelegationDepthExceeded,
    BrokenChain,
    AuthenticationFailed(String),
}

impl std::fmt::Display for GsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsiError::BadSignature { subject } => write!(f, "bad signature on {subject}"),
            GsiError::Expired { subject } => write!(f, "credential expired: {subject}"),
            GsiError::UntrustedIssuer { issuer } => write!(f, "untrusted issuer: {issuer}"),
            GsiError::DelegationDepthExceeded => write!(f, "delegation depth exceeded"),
            GsiError::BrokenChain => write!(f, "certificate chain does not link"),
            GsiError::AuthenticationFailed(why) => write!(f, "authentication failed: {why}"),
        }
    }
}

impl std::error::Error for GsiError {}

impl CertificateAuthority {
    pub fn new(name: impl Into<String>, seed: &[u8]) -> Self {
        CertificateAuthority {
            name: Subject::new(name),
            secret: sha256(seed),
        }
    }

    /// Issue an end-entity credential for `subject`.
    pub fn issue(&self, subject: impl Into<String>, now: SecEpoch, lifetime: u64) -> Credential {
        let subject = Subject::new(subject);
        let secret = hmac_sha256(&self.secret, subject.0.as_bytes());
        let mut cert = Certificate {
            subject: subject.clone(),
            issuer: self.name.clone(),
            key_fingerprint: hex(&sha256(&secret)),
            not_before: now,
            not_after: now + lifetime,
            proxy_depth: None,
            signature: [0; 32],
        };
        cert.signature = hmac_sha256(&self.secret, &cert.tbs());
        Credential {
            cert,
            chain: Vec::new(),
            secret,
        }
    }

    /// Verify a certificate chain presented by a peer: innermost certificate
    /// first, ending at a certificate issued by this CA. Checks signatures,
    /// lifetimes, chain linkage and delegation depth. Returns the asserted
    /// end-entity identity.
    pub fn verify_chain(
        &self,
        presented: &[Certificate],
        now: SecEpoch,
        peer_secrets: &dyn Fn(&Subject) -> Option<[u8; 32]>,
    ) -> Result<Subject, GsiError> {
        if presented.is_empty() {
            return Err(GsiError::BrokenChain);
        }
        for (i, cert) in presented.iter().enumerate() {
            if !cert.valid_at(now) {
                return Err(GsiError::Expired {
                    subject: cert.subject.clone(),
                });
            }
            let is_last = i + 1 == presented.len();
            if is_last {
                // Must be issued (HMAC-signed) by this CA.
                if cert.issuer != self.name {
                    return Err(GsiError::UntrustedIssuer {
                        issuer: cert.issuer.clone(),
                    });
                }
                let expect = hmac_sha256(&self.secret, &cert.tbs());
                if expect != cert.signature {
                    return Err(GsiError::BadSignature {
                        subject: cert.subject.clone(),
                    });
                }
            } else {
                // Signed by the next certificate's subject key.
                let issuer_cert = &presented[i + 1];
                if cert.issuer != issuer_cert.subject {
                    return Err(GsiError::BrokenChain);
                }
                let issuer_secret =
                    peer_secrets(&issuer_cert.subject).ok_or(GsiError::BrokenChain)?;
                let expect = hmac_sha256(&issuer_secret, &cert.tbs());
                if expect != cert.signature {
                    return Err(GsiError::BadSignature {
                        subject: cert.subject.clone(),
                    });
                }
            }
        }
        Ok(presented.last().unwrap().subject.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new("/O=Grid/CN=ESG CA", b"ca-seed")
    }

    #[test]
    fn issued_cert_validates() {
        let ca = ca();
        let cred = ca.issue("/O=Grid/CN=alice", 0, 3600);
        let chain = vec![cred.cert.clone()];
        let id = ca.verify_chain(&chain, 100, &|_| None).unwrap();
        assert_eq!(id.0, "/O=Grid/CN=alice");
    }

    #[test]
    fn expired_cert_rejected() {
        let ca = ca();
        let cred = ca.issue("/O=Grid/CN=alice", 0, 10);
        let chain = vec![cred.cert.clone()];
        let err = ca.verify_chain(&chain, 100, &|_| None).unwrap_err();
        assert!(matches!(err, GsiError::Expired { .. }));
    }

    #[test]
    fn tampered_cert_rejected() {
        let ca = ca();
        let cred = ca.issue("/O=Grid/CN=alice", 0, 3600);
        let mut cert = cred.cert.clone();
        cert.subject = Subject::new("/O=Grid/CN=mallory");
        let err = ca.verify_chain(&[cert], 100, &|_| None).unwrap_err();
        assert!(matches!(err, GsiError::BadSignature { .. }));
    }

    #[test]
    fn foreign_ca_rejected() {
        let ca1 = ca();
        let ca2 = CertificateAuthority::new("/O=Evil/CN=CA", b"other");
        let cred = ca2.issue("/O=Grid/CN=alice", 0, 3600);
        let err = ca1
            .verify_chain(std::slice::from_ref(&cred.cert), 100, &|_| None)
            .unwrap_err();
        assert!(matches!(err, GsiError::UntrustedIssuer { .. }));
    }

    #[test]
    fn delegation_produces_verifiable_proxy() {
        let ca = ca();
        let user = ca.issue("/O=Grid/CN=alice", 0, 3600);
        let proxy = user.delegate(10, 600, b"rm-session").unwrap();
        assert!(proxy.cert.is_proxy());
        assert_eq!(proxy.identity().0, "/O=Grid/CN=alice");

        let mut chain = vec![proxy.cert.clone()];
        chain.extend(proxy.chain.iter().cloned());
        let user_secret = user.secret;
        let id = ca
            .verify_chain(&chain, 20, &|subj| {
                (subj.0 == "/O=Grid/CN=alice").then_some(user_secret)
            })
            .unwrap();
        assert_eq!(id.0, "/O=Grid/CN=alice");
    }

    #[test]
    fn delegation_depth_enforced() {
        let ca = ca();
        let user = ca.issue("/O=Grid/CN=alice", 0, 3600);
        let mut cred = user.delegate(0, 600, b"d0").unwrap();
        // Exhaust the depth budget.
        cred.cert.proxy_depth = Some(0);
        assert_eq!(
            cred.delegate(0, 600, b"d1").unwrap_err(),
            GsiError::DelegationDepthExceeded
        );
    }

    #[test]
    fn expired_credential_cannot_delegate() {
        let ca = ca();
        let user = ca.issue("/O=Grid/CN=alice", 0, 10);
        let err = user.delegate(100, 600, b"late").unwrap_err();
        assert!(matches!(err, GsiError::Expired { .. }));
    }

    #[test]
    fn proxy_has_short_lifetime() {
        let ca = ca();
        let user = ca.issue("/O=Grid/CN=alice", 0, 86400);
        let proxy = user.delegate(0, 600, b"s").unwrap();
        assert_eq!(proxy.cert.not_after, 600);
    }

    #[test]
    fn empty_chain_is_broken() {
        let ca = ca();
        assert_eq!(
            ca.verify_chain(&[], 0, &|_| None).unwrap_err(),
            GsiError::BrokenChain
        );
    }
}
