//! E1: server-side subsetting (ESG-II extension, implemented) — measured
//! on the *real* loopback GridFTP server with real ESG1 files.

use esg_cdms::SynthParams;
use esg_gridftp::server::{GridFtpServer, ServerConfig};
use esg_gridftp::{GridFtpClient, TransferOptions};

fn main() {
    let root = std::env::temp_dir().join(format!("esg-e1-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let params = SynthParams {
        lat_points: 64,
        lon_points: 128,
        time_steps: 240,
        hours_per_step: 6.0,
        seed: 8,
    };
    let chunks = esg_cdms::write_chunks(&root, "pcm_big", params, 240).unwrap();
    let (_, path, size) = &chunks[0];
    let file = path.file_name().unwrap().to_str().unwrap().to_string();
    let server = GridFtpServer::start(ServerConfig::new(&root)).unwrap();
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();

    println!("== E1: move-the-question-not-the-data (real loopback server) ==\n");
    println!("dataset: 240 six-hourly steps x 3 variables = {size} bytes\n");
    println!(
        "{:<34} {:>12} {:>10}",
        "request", "bytes moved", "% of file"
    );
    println!("{:-<60}", "");
    let t0 = std::time::Instant::now();
    let full = c.get(&file, TransferOptions::default()).unwrap();
    let full_t = t0.elapsed();
    println!(
        "{:<34} {:>12} {:>9.1}%",
        "whole file (client-side analysis)",
        full.len(),
        100.0
    );
    for (label, var, t0s, t1s) in [
        ("one variable, one week", "tas", 0usize, 28usize),
        ("one variable, one month", "tas", 0, 120),
        ("one variable, full run", "pr", 0, 240),
    ] {
        let sub = c
            .get_subset(&file, var, t0s, t1s, TransferOptions::default())
            .unwrap();
        println!(
            "{:<34} {:>12} {:>9.1}%",
            label,
            sub.len(),
            sub.len() as f64 / *size as f64 * 100.0
        );
    }
    println!(
        "\nwhole-file wall time on loopback: {full_t:?}; over the paper's WAN the \
         byte ratio is the time ratio."
    );
    println!("shape: typical VCDAT queries (one variable, bounded time) move");
    println!("3-30% of the bytes — the case for ESG-II server-side extraction.");
    c.quit();
    std::fs::remove_dir_all(&root).ok();
}
