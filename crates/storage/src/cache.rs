//! LRU disk cache in front of the mass storage system.
//!
//! Every site in the prototype architecture (Figure 1) has a "Disk Cache";
//! the HRM stages tape files into one before GridFTP serves them. Files
//! being actively transferred are *pinned* so eviction cannot pull data out
//! from under a running transfer.

use esg_simnet::SimTime;
use std::collections::HashMap;

/// Why an insertion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// File is larger than the whole cache.
    TooLarge { size: u64, capacity: u64 },
    /// Not enough unpinned bytes to evict.
    Thrashing { needed: u64, evictable: u64 },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::TooLarge { size, capacity } => {
                write!(f, "file of {size} bytes exceeds cache capacity {capacity}")
            }
            CacheError::Thrashing { needed, evictable } => write!(
                f,
                "need {needed} bytes but only {evictable} are evictable (all else pinned)"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

#[derive(Debug, Clone)]
struct Slot {
    size: u64,
    last_used: SimTime,
    pins: u32,
}

/// An LRU cache keyed by file name.
#[derive(Debug, Clone)]
pub struct DiskCache {
    capacity: u64,
    used: u64,
    slots: HashMap<String, Slot>,
    /// Digest sidecars: file → whole-file digest (hex), recorded when the
    /// file's bytes landed. A sidecar's lifetime is bound to its slot:
    /// eviction, removal and re-insertion (fresh bytes) all drop it, so a
    /// re-fetched file must always be re-verified from scratch.
    digests: HashMap<String, String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DiskCache {
    pub fn new(capacity: u64) -> Self {
        DiskCache {
            capacity,
            used: 0,
            slots: HashMap::new(),
            digests: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Attach a digest sidecar to a cached file. Ignored for files not in
    /// the cache (no slot, nothing to describe).
    pub fn set_digest(&mut self, name: &str, digest_hex: impl Into<String>) -> bool {
        if self.slots.contains_key(name) {
            self.digests.insert(name.to_string(), digest_hex.into());
            true
        } else {
            false
        }
    }

    /// The digest sidecar for a cached file, if one was recorded.
    pub fn digest(&self, name: &str) -> Option<&str> {
        self.digests.get(name).map(String::as_str)
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn contains(&self, name: &str) -> bool {
        self.slots.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Touch a file: records a hit/miss and updates recency.
    pub fn access(&mut self, name: &str, now: SimTime) -> bool {
        if let Some(slot) = self.slots.get_mut(name) {
            slot.last_used = now;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert a file, evicting LRU unpinned files as needed.
    pub fn insert(&mut self, name: &str, size: u64, now: SimTime) -> Result<(), CacheError> {
        if size > self.capacity {
            return Err(CacheError::TooLarge {
                size,
                capacity: self.capacity,
            });
        }
        if let Some(slot) = self.slots.get_mut(name) {
            // Re-insertion refreshes recency; size changes are applied.
            // Fresh bytes invalidate any recorded digest sidecar.
            self.used = self.used - slot.size + size;
            slot.size = size;
            slot.last_used = now;
            self.digests.remove(name);
            return Ok(());
        }
        // Evict until it fits.
        while self.used + size > self.capacity {
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| s.pins == 0)
                .min_by_key(|(n, s)| (s.last_used, n.as_str().to_owned()))
                .map(|(n, _)| n.clone());
            match victim {
                Some(v) => {
                    let slot = self.slots.remove(&v).unwrap();
                    self.used -= slot.size;
                    self.digests.remove(&v);
                    self.evictions += 1;
                }
                None => {
                    let evictable: u64 = 0;
                    return Err(CacheError::Thrashing {
                        needed: self.used + size - self.capacity,
                        evictable,
                    });
                }
            }
        }
        self.used += size;
        self.slots.insert(
            name.to_string(),
            Slot {
                size,
                last_used: now,
                pins: 0,
            },
        );
        Ok(())
    }

    /// Pin a file against eviction (a transfer is reading it).
    pub fn pin(&mut self, name: &str) -> bool {
        if let Some(slot) = self.slots.get_mut(name) {
            slot.pins += 1;
            true
        } else {
            false
        }
    }

    /// Release one pin.
    pub fn unpin(&mut self, name: &str) {
        if let Some(slot) = self.slots.get_mut(name) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }

    /// Explicitly remove a file (ignores pins; caller's responsibility).
    pub fn remove(&mut self, name: &str) -> bool {
        if let Some(slot) = self.slots.remove(name) {
            self.used -= slot.size;
            self.digests.remove(name);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_and_hit() {
        let mut c = DiskCache::new(100);
        c.insert("a", 40, t(0)).unwrap();
        assert!(c.access("a", t(1)));
        assert!(!c.access("b", t(1)));
        assert_eq!(c.stats(), (1, 1, 0));
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = DiskCache::new(100);
        c.insert("a", 40, t(0)).unwrap();
        c.insert("b", 40, t(1)).unwrap();
        c.access("a", t(2)); // a is now more recent than b
        c.insert("c", 40, t(3)).unwrap(); // must evict b
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn pinned_files_survive() {
        let mut c = DiskCache::new(100);
        c.insert("old", 60, t(0)).unwrap();
        assert!(c.pin("old"));
        c.insert("new", 60, t(1)).unwrap_err(); // only pinned data to evict
        assert!(c.contains("old"));
        c.unpin("old");
        c.insert("new", 60, t(2)).unwrap();
        assert!(!c.contains("old"));
    }

    #[test]
    fn too_large_rejected() {
        let mut c = DiskCache::new(100);
        assert!(matches!(
            c.insert("big", 200, t(0)),
            Err(CacheError::TooLarge { .. })
        ));
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let mut c = DiskCache::new(100);
        c.insert("a", 40, t(0)).unwrap();
        c.insert("a", 60, t(5)).unwrap();
        assert_eq!(c.used(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn multi_eviction_makes_room() {
        let mut c = DiskCache::new(100);
        c.insert("a", 30, t(0)).unwrap();
        c.insert("b", 30, t(1)).unwrap();
        c.insert("c", 30, t(2)).unwrap();
        c.insert("big", 80, t(3)).unwrap(); // evicts a, b and c (oldest first)
        assert_eq!(c.len(), 1);
        assert!(c.contains("big"));
        assert_eq!(c.used(), 80);
        assert_eq!(c.stats().2, 3);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = DiskCache::new(100);
        c.insert("a", 70, t(0)).unwrap();
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.used(), 0);
        c.insert("b", 100, t(1)).unwrap();
    }

    #[test]
    fn pin_missing_is_false() {
        let mut c = DiskCache::new(10);
        assert!(!c.pin("ghost"));
        c.unpin("ghost"); // harmless
    }

    #[test]
    fn digest_sidecar_set_and_read() {
        let mut c = DiskCache::new(100);
        assert!(!c.set_digest("ghost", "aa"), "no slot, no sidecar");
        c.insert("a", 40, t(0)).unwrap();
        assert!(c.set_digest("a", "deadbeef"));
        assert_eq!(c.digest("a"), Some("deadbeef"));
        assert_eq!(c.digest("ghost"), None);
    }

    #[test]
    fn eviction_drops_digest_sidecar() {
        let mut c = DiskCache::new(100);
        c.insert("old", 60, t(0)).unwrap();
        c.set_digest("old", "d1");
        c.insert("new", 60, t(1)).unwrap(); // evicts "old"
        assert!(!c.contains("old"));
        assert_eq!(
            c.digest("old"),
            None,
            "evicting a file must drop its digest sidecar"
        );
        // A later re-fetch of "old" starts with no sidecar: verification
        // must happen from scratch.
        c.insert("old", 30, t(2)).unwrap();
        assert_eq!(c.digest("old"), None);
    }

    #[test]
    fn reinsert_invalidates_digest_sidecar() {
        let mut c = DiskCache::new(100);
        c.insert("a", 40, t(0)).unwrap();
        c.set_digest("a", "d1");
        // Fresh bytes for the same name: the old digest no longer
        // describes the slot's content.
        c.insert("a", 40, t(1)).unwrap();
        assert_eq!(c.digest("a"), None);
    }

    #[test]
    fn remove_drops_digest_sidecar() {
        let mut c = DiskCache::new(100);
        c.insert("a", 40, t(0)).unwrap();
        c.set_digest("a", "d1");
        assert!(c.remove("a"));
        c.insert("a", 40, t(1)).unwrap();
        assert_eq!(c.digest("a"), None);
    }
}
