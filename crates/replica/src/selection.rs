//! Replica selection policies.
//!
//! "The current implementation of the request manager selects the 'best'
//! replica based on the highest bandwidth between the candidate replica and
//! the destination of the data transfer" (§5). We implement that policy
//! plus the baselines the A6 experiment compares it against.

use crate::catalog::Replica;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A network estimate for a candidate replica, as supplied by NWS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathEstimate {
    /// Forecast bandwidth from the replica's host to the client, bytes/sec.
    pub bandwidth: Option<f64>,
    /// Forecast latency, seconds.
    pub latency: Option<f64>,
}

impl PathEstimate {
    pub fn unknown() -> Self {
        PathEstimate {
            bandwidth: None,
            latency: None,
        }
    }
}

/// How to pick among replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniformly random (baseline).
    Random,
    /// Cycle through candidates (baseline).
    RoundRobin,
    /// Highest NWS bandwidth forecast — the paper's policy. Candidates
    /// without a forecast lose to any candidate with one.
    BestBandwidth,
    /// Lowest NWS latency forecast.
    LowestLatency,
}

/// Stateful selector (round-robin counter, seeded RNG).
pub struct ReplicaSelector {
    policy: Policy,
    rr: usize,
    rng: StdRng,
}

impl ReplicaSelector {
    pub fn new(policy: Policy, seed: u64) -> Self {
        ReplicaSelector {
            policy,
            rr: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Pick an index into `candidates`. `estimates` must be parallel to
    /// `candidates`. Returns `None` when there are no candidates.
    ///
    /// Integrity demotion: quarantined ([`Replica::suspect`]) candidates are
    /// excluded whatever the policy — unlike a circuit breaker this is not
    /// about reachability but about data quality. Only when *every* replica
    /// is suspect does selection fall back to the full set (a possibly
    /// corrupt copy the verify layer will repair beats no copy at all).
    pub fn select(&mut self, candidates: &[Replica], estimates: &[PathEstimate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        assert_eq!(candidates.len(), estimates.len());
        let trusted: Vec<usize> = (0..candidates.len())
            .filter(|&i| !candidates[i].suspect)
            .collect();
        if trusted.is_empty() || trusted.len() == candidates.len() {
            return Some(self.select_unfiltered(candidates.len(), estimates));
        }
        let sub_est: Vec<PathEstimate> = trusted.iter().map(|&i| estimates[i]).collect();
        let picked = self.select_unfiltered(trusted.len(), &sub_est);
        Some(trusted[picked])
    }

    fn select_unfiltered(&mut self, n: usize, estimates: &[PathEstimate]) -> usize {
        match self.policy {
            Policy::Random => self.rng.gen_range(0..n),
            Policy::RoundRobin => {
                let i = self.rr % n;
                self.rr += 1;
                i
            }
            Policy::BestBandwidth => best_by(estimates, |e| e.bandwidth),
            Policy::LowestLatency => best_by(estimates, |e| e.latency.map(|l| -l)),
        }
    }
}

/// Index of the maximum keyed estimate; unknown estimates rank below every
/// known one; full tie (all unknown) → first candidate.
fn best_by(estimates: &[PathEstimate], key: impl Fn(&PathEstimate) -> Option<f64>) -> usize {
    let mut best = 0;
    let mut best_key = f64::NEG_INFINITY;
    let mut best_known = false;
    for (i, e) in estimates.iter().enumerate() {
        match key(e) {
            Some(k) if !best_known || k > best_key => {
                best = i;
                best_key = k;
                best_known = true;
            }
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_gridftp::GridUrl;

    fn replicas(n: usize) -> Vec<Replica> {
        (0..n)
            .map(|i| Replica {
                collection: "c".into(),
                location: format!("loc{i}"),
                host: format!("host{i}"),
                url: GridUrl::new(format!("host{i}"), "f"),
                suspect: false,
            })
            .collect()
    }

    fn est(bw: &[Option<f64>]) -> Vec<PathEstimate> {
        bw.iter()
            .map(|&b| PathEstimate {
                bandwidth: b,
                latency: b.map(|x| 1.0 / x),
            })
            .collect()
    }

    #[test]
    fn best_bandwidth_picks_fastest() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        let reps = replicas(3);
        let estimates = est(&[Some(10e6), Some(90e6), Some(40e6)]);
        assert_eq!(s.select(&reps, &estimates), Some(1));
    }

    #[test]
    fn unknown_forecasts_lose() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        let reps = replicas(3);
        let estimates = est(&[None, Some(1.0), None]);
        assert_eq!(s.select(&reps, &estimates), Some(1));
    }

    #[test]
    fn all_unknown_falls_back_to_first() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        let reps = replicas(3);
        let estimates = est(&[None, None, None]);
        assert_eq!(s.select(&reps, &estimates), Some(0));
    }

    #[test]
    fn lowest_latency_policy() {
        let mut s = ReplicaSelector::new(Policy::LowestLatency, 1);
        let reps = replicas(3);
        let estimates = vec![
            PathEstimate {
                bandwidth: None,
                latency: Some(0.050),
            },
            PathEstimate {
                bandwidth: None,
                latency: Some(0.005),
            },
            PathEstimate {
                bandwidth: None,
                latency: Some(0.020),
            },
        ];
        assert_eq!(s.select(&reps, &estimates), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = ReplicaSelector::new(Policy::RoundRobin, 1);
        let reps = replicas(3);
        let estimates = est(&[None, None, None]);
        let picks: Vec<usize> = (0..6)
            .map(|_| s.select(&reps, &estimates).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers() {
        let reps = replicas(4);
        let estimates = est(&[None, None, None, None]);
        let run = |seed: u64| -> Vec<usize> {
            let mut s = ReplicaSelector::new(Policy::Random, seed);
            (0..50)
                .map(|_| s.select(&reps, &estimates).unwrap())
                .collect()
        };
        assert_eq!(run(7), run(7));
        let picks = run(7);
        for i in 0..4 {
            assert!(picks.contains(&i), "candidate {i} never picked");
        }
    }

    #[test]
    fn empty_candidates_is_none() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        assert_eq!(s.select(&[], &[]), None);
    }

    #[test]
    fn suspect_replica_demoted_even_when_fastest() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        let mut reps = replicas(3);
        reps[1].suspect = true;
        // host1 has by far the best forecast, but it's quarantined.
        let estimates = est(&[Some(10e6), Some(90e6), Some(40e6)]);
        assert_eq!(s.select(&reps, &estimates), Some(2));
    }

    #[test]
    fn all_suspect_falls_back_to_full_set() {
        let mut s = ReplicaSelector::new(Policy::BestBandwidth, 1);
        let mut reps = replicas(3);
        for r in &mut reps {
            r.suspect = true;
        }
        let estimates = est(&[Some(10e6), Some(90e6), Some(40e6)]);
        assert_eq!(s.select(&reps, &estimates), Some(1));
    }

    #[test]
    fn round_robin_cycles_over_trusted_subset() {
        let mut s = ReplicaSelector::new(Policy::RoundRobin, 1);
        let mut reps = replicas(3);
        reps[0].suspect = true;
        let estimates = est(&[None, None, None]);
        let picks: Vec<usize> = (0..4)
            .map(|_| s.select(&reps, &estimates).unwrap())
            .collect();
        assert_eq!(picks, vec![1, 2, 1, 2]);
    }
}
