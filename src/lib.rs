//! # esg — Earth System Grid (ESG-I) reproduction
//!
//! A Rust reproduction of *"High-Performance Remote Access to Climate
//! Simulation Data: A Challenge Problem for Data Grid Technologies"*
//! (SC2001): the ESG-I prototype that wired together GridFTP, the Globus
//! replica catalog, the Network Weather Service, LBNL's request manager and
//! HRM, and the CDAT/CDMS climate analysis stack.
//!
//! This facade re-exports every subsystem crate:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`simnet`] | esg-simnet | deterministic flow-level WAN simulator |
//! | [`gsi`] | esg-gsi | Grid Security Infrastructure (SHA-256/HMAC/ChaCha20, certs, delegation) |
//! | [`netlogger`] | esg-netlogger | instrumentation + bandwidth statistics |
//! | [`directory`] | esg-directory | LDAP-like catalog substrate |
//! | [`storage`] | esg-storage | disks, RAID, tape library, HRM, disk cache |
//! | [`cdms`] | esg-cdms | climate data model, mini-netCDF, analysis, viz |
//! | [`nws`] | esg-nws | Network Weather Service sensors + forecasters |
//! | [`gridftp`] | esg-gridftp | the transfer protocol (real TCP + simulated) |
//! | [`replica`] | esg-replica | replica catalog + selection policies |
//! | [`metadata`] | esg-metadata | CDMS metadata catalog |
//! | [`reqman`] | esg-reqman | the request manager |
//! | [`core`] | esg-core | the composed prototype, testbeds, experiments |
//!
//! Start with `examples/quickstart.rs`, or the experiment runners in
//! [`core::experiments`].

pub use esg_cdms as cdms;
pub use esg_core as core;
pub use esg_directory as directory;
pub use esg_gridftp as gridftp;
pub use esg_gsi as gsi;
pub use esg_metadata as metadata;
pub use esg_netlogger as netlogger;
pub use esg_nws as nws;
pub use esg_replica as replica;
pub use esg_reqman as reqman;
pub use esg_simnet as simnet;
pub use esg_storage as storage;
