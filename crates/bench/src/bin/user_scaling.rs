//! A10/A14: concurrent-user scaling — the abstract's "potentially
//! thousands of users" motivation, at flow-network scale.
//!
//! Single point (legacy A10 form):
//! `cargo run --release -p esg-bench --bin user_scaling [N] [REGIONS] [SEED] [--full-recompute|--incremental]`
//!
//! Scaling curve (A14):
//! `cargo run --release -p esg-bench --bin user_scaling -- --curve [SEED]`
//! `cargo run --release -p esg-bench --bin user_scaling -- --curve-smoke [SEED]`
//! `... --check-against BENCH_user_scaling.json` (compare against a
//! previously committed curve and fail on >20% wall-clock regression)
//!
//! The curve runs 1k → 10k → 100k flows (smoke: 1k + 10k, the CI
//! configuration). At every point the sequential reference solver and
//! the parallel scratch-arena solver run the same seeded workload and
//! must be observably identical — per-flow completion instants and
//! NetLogger traces, bit for bit — and in-run oracle probes check the
//! incremental allocation against a from-scratch re-solve at
//! geometrically spaced instants. The full-recompute *trace* ablation
//! additionally runs at the 1k point (its cost is quadratic in flows;
//! the oracle probes carry the equivalence argument at 10k/100k). The
//! full curve also enforces that the parallel solver beats the
//! sequential reference at 10k and above.
//!
//! Exits non-zero if any equivalence assertion trips, the speedup floor
//! is missed, or `--check-against` detects a regression.

use esg_bench::scaling::{
    run_curve_point, run_variant, trace_sha256_hex, PointReport, VariantResult,
};
use std::fmt::Write as _;

fn report(v: &VariantResult) {
    println!(
        "  {:<16} {:<22} wall {:>9.1?}  rss {:>9}  passes {:>8}  components {:>9}  flow-solves {:>10}  par-batches {:>6}",
        v.mode,
        v.solver,
        v.wall,
        v.peak_rss_kb
            .map_or("n/a".into(), |k| format!("{:.1}MB", k as f64 / 1024.0)),
        v.stats.recompute_passes,
        v.stats.components_solved,
        v.stats.flow_solves,
        v.stats.parallel_batches,
    );
}

/// One curve point as a single JSON line (keeps the committed file
/// greppable and lets the regression check stay dependency-free).
fn json_point(p: &PointReport) -> String {
    let mut s = String::new();
    write!(
        s,
        concat!(
            "{{\"n\": {}, \"regions\": {}, ",
            "\"wall_ms_sequential\": {:.3}, \"wall_ms_parallel\": {:.3}, "
        ),
        p.n,
        p.regions,
        p.seq.wall.as_secs_f64() * 1e3,
        p.par.wall.as_secs_f64() * 1e3,
    )
    .unwrap();
    match &p.full {
        Some(f) => write!(
            s,
            "\"wall_ms_full_recompute\": {:.3}, ",
            f.wall.as_secs_f64() * 1e3
        ),
        None => write!(s, "\"wall_ms_full_recompute\": null, "),
    }
    .unwrap();
    write!(
        s,
        concat!(
            "\"speedup_parallel_vs_sequential\": {:.3}, ",
            "\"peak_rss_kb_sequential\": {}, \"peak_rss_kb_parallel\": {}, ",
            "\"solver_parallel\": \"{}\", \"oracle_probes\": {}, ",
            "\"recompute_passes\": {}, \"components_solved\": {}, ",
            "\"flow_solves\": {}, \"parallel_batches\": {}, ",
            "\"peak_concurrent_flows\": {}, \"equivalent\": true, ",
            "\"trace_sha256\": \"{}\"}}"
        ),
        p.seq.wall.as_secs_f64() / p.par.wall.as_secs_f64().max(1e-9),
        p.seq.peak_rss_kb.unwrap_or(0),
        p.par.peak_rss_kb.unwrap_or(0),
        p.par.solver,
        p.par.oracle_probes_run,
        p.par.stats.recompute_passes,
        p.par.stats.components_solved,
        p.par.stats.flow_solves,
        p.par.stats.parallel_batches,
        p.par.peak_concurrent,
        trace_sha256_hex(&p.par),
    )
    .unwrap();
    s
}

/// Pull `"wall_ms_parallel"` for the point with the given `n` out of a
/// previously committed curve JSON. Hand-rolled on purpose: each point
/// is one line, so a substring scan is exact for the format we write.
fn baseline_wall_ms(json: &str, n: usize) -> Option<f64> {
    let needle = format!("{{\"n\": {n}, ");
    let line = json.lines().find(|l| l.trim_start().starts_with(&needle))?;
    let key = "\"wall_ms_parallel\": ";
    let at = line.find(key)? + key.len();
    line[at..]
        .split(&[',', '}'][..])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn run_curve(points: &[(usize, usize)], seed: u64, baseline: Option<&str>, full_gate: bool) {
    let mut reports = Vec::new();
    for &(n, regions) in points {
        println!("-- point: {n} flows over {regions} regions --");
        // The full-recompute trace ablation is quadratic in flows: run it
        // where it is affordable (1k); oracle probes cover the rest.
        let repeats = if n >= 100_000 { 2 } else { 3 };
        let p = run_curve_point(n, regions, seed, n <= 1_000, 8, repeats);
        report(&p.seq);
        report(&p.par);
        if let Some(f) = &p.full {
            report(f);
        }
        println!(
            "  equivalence: sequential == parallel{} (sha256 {}), oracle probes {}x OK\n",
            if p.full.is_some() {
                " == full-recompute"
            } else {
                ""
            },
            &trace_sha256_hex(&p.par)[..16],
            p.par.oracle_probes_run,
        );
        reports.push(p);
    }

    let mut failed = false;
    for p in &reports {
        if full_gate && p.n >= 10_000 && p.par.wall >= p.seq.wall {
            eprintln!(
                "FAIL: parallel solver ({:?}) did not beat sequential ({:?}) at n={}",
                p.par.wall, p.seq.wall, p.n
            );
            failed = true;
        }
        if let Some(base) = baseline {
            if let Some(b) = baseline_wall_ms(base, p.n) {
                let cur = p.par.wall.as_secs_f64() * 1e3;
                if cur > b * 1.2 {
                    eprintln!(
                        "FAIL: wall-clock regression at n={}: {cur:.1} ms vs baseline {b:.1} ms (>20%)",
                        p.n
                    );
                    failed = true;
                } else {
                    println!(
                        "  baseline check n={}: {cur:.1} ms vs committed {b:.1} ms — OK",
                        p.n
                    );
                }
            }
        }
    }

    let mut json = format!(
        concat!(
            "{{\n  \"bench\": \"user_scaling_curve\",\n  \"seed\": {},\n",
            "  \"clients_per_region\": {},\n  \"points\": [\n"
        ),
        seed,
        esg_bench::scaling::CLIENTS_PER_REGION,
    );
    for (i, p) in reports.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&json_point(p));
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_user_scaling.json", &json).expect("write BENCH_user_scaling.json");
    println!("  wrote BENCH_user_scaling.json ({} points)", reports.len());

    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<bool> = None; // Some(true) = full-recompute only
    let mut curve: Option<bool> = None; // Some(true) = smoke (1k + 10k)
    let mut check_against: Option<String> = None;
    let mut nums: Vec<u64> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full-recompute" => mode = Some(true),
            "--incremental" => mode = Some(false),
            "--curve" => curve = Some(false),
            "--curve-smoke" => curve = Some(true),
            "--check-against" => match it.next() {
                Some(p) => check_against = Some(p.clone()),
                None => {
                    eprintln!("--check-against needs a file argument");
                    std::process::exit(2);
                }
            },
            other => match other.parse() {
                Ok(v) => nums.push(v),
                Err(_) => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            },
        }
    }

    if let Some(smoke) = curve {
        let seed = nums.first().copied().unwrap_or(17);
        let full: &[(usize, usize)] = &[(1_000, 32), (10_000, 320), (100_000, 3_200)];
        let points = if smoke { &full[..2] } else { full };
        println!(
            "== A14: scaling curve {} (seed {seed}) ==\n",
            if smoke {
                "1k + 10k (smoke)"
            } else {
                "1k -> 10k -> 100k"
            }
        );
        let baseline = check_against.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("--check-against {p}: {e}"))
        });
        run_curve(points, seed, baseline.as_deref(), !smoke);
        return;
    }

    let n = nums.first().copied().unwrap_or(1200) as usize;
    let regions = nums.get(1).copied().unwrap_or(32) as usize;
    let seed = nums.get(2).copied().unwrap_or(17);

    println!("== A10: {n} concurrent flows over {regions} regions (seed {seed}) ==\n");

    if let Some(full) = mode {
        let v = run_variant(n, regions, seed, full);
        report(&v);
        println!("\n  peak concurrent flows: {}", v.peak_concurrent);
        println!("  trace sha256: {}", trace_sha256_hex(&v));
        return;
    }

    // Both variants, equivalence-checked (no JSON: the committed
    // BENCH_user_scaling.json is the curve's; use --curve to regenerate).
    let inc = run_variant(n, regions, seed, false);
    report(&inc);
    let full = run_variant(n, regions, seed, true);
    report(&full);
    esg_bench::scaling::assert_equivalent(&inc, &full);
    let speedup = full.wall.as_secs_f64() / inc.wall.as_secs_f64().max(1e-9);
    println!("\n  peak concurrent flows: {}", inc.peak_concurrent);
    println!(
        "  traces + completion times: IDENTICAL (sha256 {})",
        &trace_sha256_hex(&inc)[..16]
    );
    println!("  wall-clock speedup (full-recompute / incremental): {speedup:.1}x");
}
