//! Distinguished names.
//!
//! The paper's catalogs (the CDMS metadata catalog and the Globus replica
//! catalog) are both LDAP directories; entries are addressed by
//! distinguished names like
//! `lc=CO2 measurements 1998, rc=ESG Replica Catalog, o=Grid`.
//! A DN is an ordered list of relative DNs (attribute=value pairs), most
//! specific first.

use std::fmt;

/// One relative distinguished name component: `attribute=value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rdn {
    pub attr: String,
    pub value: String,
}

impl Rdn {
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Self {
        Rdn {
            attr: attr.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name: RDN sequence, leaf first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dn {
    pub rdns: Vec<Rdn>,
}

/// Error parsing a DN string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnParseError(pub String);

impl fmt::Display for DnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.0)
    }
}

impl std::error::Error for DnParseError {}

impl Dn {
    /// The empty DN (directory root).
    pub fn root() -> Self {
        Dn::default()
    }

    /// Parse `attr=value, attr=value, ...`. Whitespace around separators is
    /// trimmed; attribute names are case-normalized; values keep their case.
    pub fn parse(s: &str) -> Result<Self, DnParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (attr, value) = part
                .split_once('=')
                .ok_or_else(|| DnParseError(format!("component `{part}` lacks `=`")))?;
            let attr = attr.trim();
            let value = value.trim();
            if attr.is_empty() || value.is_empty() {
                return Err(DnParseError(format!("empty attr or value in `{part}`")));
            }
            rdns.push(Rdn::new(attr, value));
        }
        Ok(Dn { rdns })
    }

    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// The leaf (most specific) RDN.
    pub fn leaf(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// The parent DN (everything but the leaf).
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// A child of this DN with the given leaf RDN.
    pub fn child(&self, attr: impl Into<String>, value: impl Into<String>) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(Rdn::new(attr, value));
        rdns.extend(self.rdns.iter().cloned());
        Dn { rdns }
    }

    /// Whether `self` is underneath (or equal to) `ancestor`.
    pub fn is_under(&self, ancestor: &Dn) -> bool {
        if ancestor.rdns.len() > self.rdns.len() {
            return false;
        }
        let offset = self.rdns.len() - ancestor.rdns.len();
        self.rdns[offset..] == ancestor.rdns[..]
    }

    /// Whether `self` is a *direct* child of `parent`.
    pub fn is_child_of(&self, parent: &Dn) -> bool {
        self.rdns.len() == parent.rdns.len() + 1 && self.is_under(parent)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.rdns.iter().map(|r| r.to_string()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

impl std::str::FromStr for Dn {
    type Err = DnParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let dn = Dn::parse("lc=CO2 1998, rc=ESG, o=Grid").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.to_string(), "lc=CO2 1998, rc=ESG, o=Grid");
    }

    #[test]
    fn attr_case_normalized_value_preserved() {
        let dn = Dn::parse("CN=Alice Smith").unwrap();
        assert_eq!(dn.leaf().unwrap().attr, "cn");
        assert_eq!(dn.leaf().unwrap().value, "Alice Smith");
    }

    #[test]
    fn empty_is_root() {
        assert!(Dn::parse("").unwrap().is_root());
        assert!(Dn::parse("  ").unwrap().is_root());
    }

    #[test]
    fn bad_components_rejected() {
        assert!(Dn::parse("no-equals").is_err());
        assert!(Dn::parse("a=").is_err());
        assert!(Dn::parse("=b").is_err());
    }

    #[test]
    fn parent_child_relationships() {
        let root = Dn::parse("o=Grid").unwrap();
        let rc = root.child("rc", "ESG");
        let lc = rc.child("lc", "CO2 1998");
        assert_eq!(lc.to_string(), "lc=CO2 1998, rc=ESG, o=Grid");
        assert_eq!(lc.parent().unwrap(), rc);
        assert!(lc.is_under(&root));
        assert!(lc.is_under(&rc));
        assert!(lc.is_under(&lc));
        assert!(!rc.is_under(&lc));
        assert!(lc.is_child_of(&rc));
        assert!(!lc.is_child_of(&root));
    }

    #[test]
    fn root_parent_is_none() {
        assert_eq!(Dn::root().parent(), None);
    }

    #[test]
    fn everything_is_under_root() {
        let dn = Dn::parse("a=b, c=d").unwrap();
        assert!(dn.is_under(&Dn::root()));
    }

    #[test]
    fn from_str_works() {
        let dn: Dn = "ou=PCMDI, o=LLNL".parse().unwrap();
        assert_eq!(dn.depth(), 2);
    }
}
