//! Synthetic climate model output.
//!
//! Substitution for the PCMDI archives the paper analyzed (DESIGN.md):
//! deterministic, seeded fields with the gross structure of real model
//! output — a latitudinal temperature gradient, a seasonal cycle, diurnal
//! wiggle and AR(1) weather noise; precipitation concentrated in an ITCZ
//! band; cloud fraction anti-correlated with temperature anomaly. What the
//! prototype exercises (file sizes, array shapes, subsetting, analysis,
//! rendering) is identical to real data.

use crate::model::{Axis, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthParams {
    pub lat_points: usize,
    pub lon_points: usize,
    pub time_steps: usize,
    /// Hours between steps (6 h is typical model output cadence).
    pub hours_per_step: f64,
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            lat_points: 64,
            lon_points: 128,
            time_steps: 28, // one week of 6-hourly output
            hours_per_step: 6.0,
            seed: 42,
        }
    }
}

impl SynthParams {
    /// Bytes of f32 data one variable of this shape occupies.
    pub fn var_bytes(&self) -> u64 {
        (self.lat_points * self.lon_points * self.time_steps * 4) as u64
    }
}

/// Generate a dataset with `tas` (temperature), `pr` (precipitation) and
/// `clt` (cloud fraction) variables.
pub fn generate(name: &str, p: SynthParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut ds = Dataset::new(name);
    ds.set_attr("model", "ESG-SYNTH-1");
    ds.set_attr("institution", "simulated");
    ds.set_attr("comment", "synthetic climate fields, see DESIGN.md");
    let time = Axis::time(p.time_steps, p.hours_per_step);
    let lat = Axis::latitude(p.lat_points);
    let lon = Axis::longitude(p.lon_points);
    let nt = p.time_steps;
    let ny = p.lat_points;
    let nx = p.lon_points;

    let mut tas = Vec::with_capacity(nt * ny * nx);
    let mut pr = Vec::with_capacity(nt * ny * nx);
    let mut clt = Vec::with_capacity(nt * ny * nx);

    // AR(1) weather noise state per grid cell.
    let mut noise = vec![0.0f64; ny * nx];
    const PHI: f64 = 0.8;

    for t in 0..nt {
        let hours = time.values[t];
        let day_of_year = (hours / 24.0) % 365.25;
        let season = (2.0 * std::f64::consts::PI * day_of_year / 365.25).cos();
        let diurnal = (2.0 * std::f64::consts::PI * hours / 24.0).sin();
        for (j, &latv) in lat.values.iter().enumerate() {
            let lat_rad = latv.to_radians();
            // Mean surface temperature: ~300 K equator, ~245 K poles;
            // seasonal swing grows with |lat| and flips hemisphere.
            let base = 300.0 - 55.0 * lat_rad.sin().powi(2);
            let seasonal = -12.0 * season * lat_rad.sin();
            for (i, &lonv) in lon.values.iter().enumerate() {
                let cell = j * nx + i;
                let e: f64 = rng.gen_range(-1.0..1.0);
                noise[cell] = PHI * noise[cell] + (1.0 - PHI * PHI).sqrt() * 3.0 * e;
                // Standing wave: continents vs oceans.
                let standing = 4.0 * (3.0 * lonv.to_radians()).sin() * lat_rad.cos();
                let temp = base + seasonal + standing + 1.5 * diurnal + noise[cell];
                tas.push(temp as f32);

                // Precipitation: ITCZ band near the equator plus storm
                // tracks at mid-latitudes, modulated by noise (mm/day).
                let itcz = 8.0 * (-((latv - 5.0 * season) / 12.0).powi(2)).exp();
                let storm = 3.0 * (-((latv.abs() - 45.0) / 15.0).powi(2)).exp();
                let p_mm = (itcz + storm) * (1.0 + 0.3 * noise[cell] / 3.0);
                pr.push(p_mm.max(0.0) as f32);

                // Cloud fraction: wetter → cloudier, warm anomaly → clearer.
                let c = 0.25 + 0.06 * (itcz + storm) - 0.01 * noise[cell];
                clt.push(c.clamp(0.0, 1.0) as f32);
            }
        }
    }

    ds.add_axis(time);
    ds.add_axis(lat);
    ds.add_axis(lon);
    let dims = ["time", "latitude", "longitude"];
    ds.add_variable("tas", "K", "surface air temperature", &dims, tas)
        .unwrap();
    ds.add_variable("pr", "mm/day", "precipitation rate", &dims, pr)
        .unwrap();
    ds.add_variable("clt", "1", "cloud fraction", &dims, clt)
        .unwrap();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthParams {
        SynthParams {
            lat_points: 16,
            lon_points: 32,
            time_steps: 8,
            hours_per_step: 6.0,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate("a", small());
        let b = generate("a", small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = generate("a", small());
        let b = generate("a", SynthParams { seed: 8, ..small() });
        assert_ne!(a, b);
    }

    #[test]
    fn physically_plausible_temperature() {
        let ds = generate("t", small());
        let tas = ds.variable("tas").unwrap();
        for &v in &tas.data {
            assert!(v > 200.0 && v < 340.0, "temperature {v} implausible");
        }
        // Equator warmer than poles on average.
        let ny = 16;
        let nx = 32;
        let row_mean = |j: usize| -> f32 {
            let mut sum = 0.0;
            let mut n = 0;
            for t in 0..8 {
                for i in 0..nx {
                    sum += tas.data[(t * ny + j) * nx + i];
                    n += 1;
                }
            }
            sum / n as f32
        };
        let pole = row_mean(0);
        let equator = row_mean(ny / 2);
        assert!(equator > pole + 20.0, "equator {equator} pole {pole}");
    }

    #[test]
    fn precipitation_nonnegative_cloud_in_unit_interval() {
        let ds = generate("t", small());
        for &v in &ds.variable("pr").unwrap().data {
            assert!(v >= 0.0);
        }
        for &v in &ds.variable("clt").unwrap().data {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn var_bytes_matches_data() {
        let p = small();
        let ds = generate("t", p);
        assert_eq!(
            ds.variable("tas").unwrap().data.len() as u64 * 4,
            p.var_bytes()
        );
    }

    #[test]
    fn survives_format_round_trip() {
        let ds = generate("rt", small());
        let bytes = crate::ncio::to_bytes(&ds);
        let back = crate::ncio::from_bytes(&bytes).unwrap();
        assert_eq!(back, ds);
    }
}
