//! Flow-level network simulation: topology + active TCP flows + max-min
//! fair bandwidth sharing + progress integration.
//!
//! `FlowNet` is the piece the discrete-event kernel advances. Between events
//! every flow moves bytes at a constant allocated rate; any mutation (flow
//! added/removed, failure injected, slow-start stage boundary) marks the
//! allocation dirty and it is recomputed lazily. This gives exact piecewise-
//! linear progress while simulating hours of WAN activity in milliseconds.
//!
//! ## Incremental allocation
//!
//! The allocator is *component-scoped*: a persistent flow↔resource index
//! tracks which running flows cross which resources, mutations mark only the
//! flows/resources they touch, and a recompute solves only the connected
//! components of the flow↔resource bipartite graph reachable from the dirty
//! set — rates of untouched components are spliced through unchanged. Because
//! disjoint components share no capacity, the per-component solution is
//! mathematically identical to a global solve; because each component is
//! assembled in a canonical order (flows by id, resources by first
//! encounter), it is also *bitwise* reproducible regardless of which other
//! components were or weren't re-solved. [`FlowNet::set_full_recompute`]
//! restores the from-scratch behaviour (every component re-solved on every
//! change) for ablation benchmarks, and [`FlowNet::oracle_rates`] rebuilds
//! the whole problem from routes and topology for differential tests.
//!
//! ## Parallel component solve
//!
//! Components are independent subproblems, so a recompute pass may fan them
//! out across a worker pool ([`SolverMode::Parallel`]). Each worker solves
//! pure subproblems against a shared immutable snapshot of the network and
//! an arena of its own ([`SolveScratch`]); the results are then *applied in
//! ascending component order on the main thread*. Components are disjoint
//! (no shared flows or capacity) and assembly is canonical, so the merged
//! rates are bitwise identical to the sequential reference solver no matter
//! how the OS schedules the workers. `tests/alloc_differential.rs` holds a
//! property test pinning sequential ≡ parallel ≡ oracle.
//!
//! ## Scale: O(events), not O(flows · events)
//!
//! Nothing in the steady-state event path scans all flows. Byte progress is
//! integrated *lazily*: a flow's `bytes_done` is materialized only when its
//! rate actually changes (bitwise), so a clean advance costs nothing per
//! flow. Completions and slow-start boundaries live in a time-ordered event
//! index updated on rate changes, making [`FlowNet::next_event_time`] a
//! lookup instead of a scan. Membership lives in a region-sharded index
//! ([`crate::membership`]) and per-flow hot state is keyed by dense interned
//! flow ids (a slab), not a tree.
//!
//! Same-instant dirty events coalesce: a burst of N flow arrivals between
//! two queries accumulates one dirty set and triggers one recompute pass,
//! not N. Read-only queries ([`FlowNet::flow_rate`],
//! [`FlowNet::host_cpu_utilization`]) refresh only components that are
//! dirty-adjacent to the queried flow or host and never force work for
//! unrelated parts of the network.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::allocation::{max_min_fair, AllocFlow};
use crate::membership::MembershipIndex;
use crate::network::{Dir, LinkId, NodeId, NodeKind, Topology};
use crate::tcp::{TcpParams, INITIAL_WINDOW, MSS};
use crate::time::{SimDuration, SimTime};

/// A memoized routing answer: the directed hops plus the (immutable) RTT,
/// or `None` when the pair is unreachable (negative caching).
type CachedRoute = Option<(Vec<(LinkId, Dir)>, SimDuration)>;

/// Identifier of an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Transferring at the allocated rate.
    Running,
    /// No route currently exists (failure); rate is zero but the flow is
    /// kept so the owner can observe the stall and decide to restart.
    Stalled,
    /// All bytes delivered.
    Done,
}

/// Parameters for starting a flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    pub src: NodeId,
    pub dst: NodeId,
    /// Total bytes to move; `f64::INFINITY` for an unbounded flow
    /// (background traffic, probes that are stopped manually).
    pub size: f64,
    /// TCP socket buffer in bytes (the SBUF value); caps rate at window/RTT.
    pub window: f64,
    /// Segment size (1460 standard, 8960 jumbo).
    pub mss: f64,
    /// Whether the source reads from its disk subsystem (false for
    /// memory-to-memory tests).
    pub uses_src_disk: bool,
    /// Whether the destination writes to its disk subsystem.
    pub uses_dst_disk: bool,
    /// Model the slow-start ramp. A cached data channel (post-SC'00 GridFTP
    /// feature) keeps its congestion window, so it skips the ramp.
    pub slow_start: bool,
}

impl FlowSpec {
    pub fn new(src: NodeId, dst: NodeId, size: f64) -> Self {
        FlowSpec {
            src,
            dst,
            size,
            window: (1u64 << 20) as f64, // paper's 1 MB default
            mss: MSS,
            uses_src_disk: true,
            uses_dst_disk: true,
            slow_start: true,
        }
    }

    pub fn window(mut self, bytes: f64) -> Self {
        self.window = bytes;
        self
    }

    pub fn mss(mut self, mss: f64) -> Self {
        self.mss = mss;
        self
    }

    pub fn memory_to_memory(mut self) -> Self {
        self.uses_src_disk = false;
        self.uses_dst_disk = false;
        self
    }

    pub fn cached_channel(mut self) -> Self {
        self.slow_start = false;
        self
    }
}

impl FlowSpec {
    fn window_f(&self) -> f64 {
        self.window
    }
}

/// Event-index kinds: completions pop before ramp boundaries at the same
/// instant (a flow that finishes exactly at a boundary never ramps).
const EV_COMPLETE: u8 = 0;
const EV_RAMP: u8 = 1;

#[derive(Debug)]
struct FlowRt {
    spec: FlowSpec,
    route: Vec<(LinkId, Dir)>,
    rtt: SimDuration,
    loss: f64,
    /// Bytes delivered as of `anchor`. Progress past the anchor is implied
    /// by `rate` and only *materialized* when the rate changes bitwise —
    /// the lazy-integration contract that keeps the incremental and
    /// full-recompute modes byte-identical (both materialize at exactly the
    /// same instants, with exactly the same arithmetic).
    bytes_done: f64,
    /// Instant `bytes_done` was last materialized.
    anchor: SimTime,
    rate: f64,
    state: FlowState,
    started: SimTime,
    /// Congestion-window ramp stage; cap = INITIAL_WINDOW * 2^stage / rtt
    /// until it reaches the steady cap. `None` once ramp is finished.
    ramp_stage: Option<u32>,
    /// Scheduled completion entry in the event index (`SimTime::MAX` =
    /// none): `anchor + remaining/rate`, refreshed on rate changes.
    comp_at: SimTime,
    /// Scheduled ramp-boundary entry in the event index (`SimTime::MAX` =
    /// none).
    ramp_at: SimTime,
    /// Interned resource ids this flow crosses, in canonical order (route
    /// links first, then endpoint NIC/CPU/disk), deduplicated. Empty while
    /// the flow is stalled or done.
    res: Vec<u32>,
}

impl FlowRt {
    fn steady_cap(&self) -> f64 {
        TcpParams {
            window: self.spec.window_f(),
            rtt: self.rtt,
            loss: self.loss,
            mss: self.spec.mss,
        }
        .rate_cap()
    }

    /// Current per-flow ceiling including the slow-start ramp.
    fn current_cap(&self) -> f64 {
        let steady = self.steady_cap();
        match self.ramp_stage {
            None => steady,
            Some(stage) => {
                let rtt = self.rtt.as_secs_f64();
                if rtt <= 0.0 {
                    return steady;
                }
                let w = INITIAL_WINDOW * 2f64.powi(stage as i32);
                (w / rtt).min(steady)
            }
        }
    }

    /// Time of the next ramp-stage boundary, if still ramping.
    fn next_ramp_boundary(&self) -> Option<SimTime> {
        let stage = self.ramp_stage?;
        if self.rtt.is_zero() {
            return None;
        }
        Some(self.started + self.rtt * (stage as u64 + 1))
    }

    /// Fold progress since `anchor` into `bytes_done`. Called exactly when
    /// the rate is about to change (or the flow stalls) — never on clean
    /// advances — so the float-addition sequence is a pure function of the
    /// rate trajectory, identical across allocator modes.
    fn materialize(&mut self, t: SimTime) {
        if self.rate > 0.0 && t > self.anchor {
            self.bytes_done += self.rate * t.since(self.anchor).as_secs_f64();
        }
        self.anchor = t;
    }

    /// Bytes delivered as of `t` (`t >= anchor`), without materializing.
    fn bytes_at(&self, t: SimTime) -> f64 {
        if self.state == FlowState::Running && self.rate > 0.0 && t > self.anchor {
            self.bytes_done + self.rate * t.since(self.anchor).as_secs_f64()
        } else {
            self.bytes_done
        }
    }
}

/// Error returned when a flow cannot be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// No path between the endpoints (down links/nodes or partitioned).
    NoRoute,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NoRoute => write!(f, "no route between endpoints"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Resource identity used when assembling the allocation problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ResKey {
    LinkDir(LinkId, Dir),
    NicTx(NodeId),
    NicRx(NodeId),
    Cpu(NodeId),
    DiskRead(NodeId),
    DiskWrite(NodeId),
}

/// Cumulative counters for allocation work — the observability hook behind
/// the recompute-count regression tests and the `user_scaling` ablation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Recompute passes that solved at least one component.
    pub recompute_passes: u64,
    /// Components solved (including scoped query solves).
    pub components_solved: u64,
    /// Total per-flow rate computations across all solved components.
    pub flow_solves: u64,
    /// Route-cache hits during flow starts and reroutes.
    pub route_cache_hits: u64,
    /// Route-cache misses (BFS actually ran).
    pub route_cache_misses: u64,
    /// Recompute passes whose components were solved on the worker pool.
    pub parallel_batches: u64,
}

/// How recompute passes solve their dirty components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Reference implementation: one component at a time, per-component
    /// hash-map interning (the original solver, kept as the sequential
    /// baseline for the scaling ablation).
    Sequential,
    /// Scratch-arena assembly, fanned out across `workers` OS threads when
    /// a pass carries at least `threshold` flows (passes below the
    /// threshold run inline on the caller's thread — spawn overhead would
    /// swamp small solves). Bitwise identical to `Sequential`.
    Parallel {
        workers: usize,
        /// Minimum total flows in a pass before threads are spawned.
        threshold: usize,
    },
}

/// Solver selection for [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    pub mode: SolverMode,
}

impl Default for SolverConfig {
    /// Parallel with one worker per available core (override with the
    /// `ESG_ALLOC_WORKERS` environment variable); single-worker pools run
    /// inline.
    fn default() -> Self {
        let workers = std::env::var("ESG_ALLOC_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        SolverConfig {
            mode: SolverMode::Parallel {
                workers,
                threshold: 4096,
            },
        }
    }
}

/// Reusable arena for assembling one component's subproblem without
/// per-component allocation, replacing a hash map for global→local
/// resource-id interning. Two regimes: components with few distinct
/// resources (the overwhelmingly common case — one route plus endpoint
/// NIC/CPU/disk) intern by linear scan over a tiny first-encounter list
/// that stays in L1; a component that outgrows the list promotes to
/// epoch-stamped dense `stamp`/`local` arrays sized to the whole resource
/// table. Both regimes assign local ids in first-encounter order, so the
/// interning is bitwise identical to the legacy hash-map solver's.
#[derive(Debug, Default)]
struct SolveScratch {
    epoch: u32,
    stamp: Vec<u32>,
    local: Vec<u32>,
    /// Global ids interned so far this solve, in first-encounter order —
    /// the small-component fast path (local id = position).
    small: Vec<u32>,
    dense: bool,
    n_res: usize,
    capacities: Vec<f64>,
}

/// Distinct-resource count past which a component's interning promotes
/// from the linear-scan list to the dense stamped arrays.
const SCRATCH_SMALL_MAX: usize = 64;

impl SolveScratch {
    fn begin(&mut self, n_res: usize) {
        self.n_res = n_res;
        self.small.clear();
        self.dense = false;
        self.capacities.clear();
    }

    /// Switch to the dense-array regime, carrying over every id the small
    /// list already interned (positions are preserved).
    fn promote(&mut self) {
        if self.stamp.len() < self.n_res {
            self.stamp.resize(self.n_res, 0);
            self.local.resize(self.n_res, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped: old stamps could alias the new epoch.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        for (i, &g) in self.small.iter().enumerate() {
            self.stamp[g as usize] = self.epoch;
            self.local[g as usize] = i as u32;
        }
        self.dense = true;
    }

    /// Local id for global resource `r`, interning on first encounter.
    fn intern(&mut self, r: u32, cap: f64) -> usize {
        if !self.dense {
            if let Some(pos) = self.small.iter().position(|&g| g == r) {
                return pos;
            }
            if self.small.len() < SCRATCH_SMALL_MAX {
                self.small.push(r);
                self.capacities.push(cap);
                return self.capacities.len() - 1;
            }
            self.promote();
        }
        let ri = r as usize;
        if self.stamp[ri] != self.epoch {
            self.stamp[ri] = self.epoch;
            self.local[ri] = self.capacities.len() as u32;
            self.capacities.push(cap);
        }
        self.local[ri] as usize
    }
}

/// Reusable epoch-stamped visited sets for component partitioning. A
/// fresh `vec![false; N]` pair per recompute pass is O(flows + resources)
/// of memset *per event* — the exact quadratic-at-scale pattern this
/// allocator exists to avoid — so the seen marks live here and are
/// invalidated in O(1) by bumping the epoch.
#[derive(Debug, Default)]
struct PartitionScratch {
    epoch: u32,
    seen_r: Vec<u32>,
    seen_f: Vec<u32>,
    stack: Vec<u64>,
}

impl PartitionScratch {
    fn begin(&mut self, n_res: usize, n_flows: usize) {
        if self.seen_r.len() < n_res {
            self.seen_r.resize(n_res, 0);
        }
        if self.seen_f.len() < n_flows {
            self.seen_f.resize(n_flows, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen_r.iter_mut().for_each(|s| *s = 0);
            self.seen_f.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.stack.clear();
    }
}

/// Canonical resource-key list for a flow: route link-directions in path
/// order, then source NIC/CPU/disk, then destination NIC/CPU/disk, with
/// duplicates removed preserving first occurrence. Both the persistent
/// index and the from-scratch oracle derive per-flow resources through this
/// single function, so their subproblems are assembled identically.
fn resource_keys_for(spec: &FlowSpec, route: &[(LinkId, Dir)], topo: &Topology) -> Vec<ResKey> {
    fn push(out: &mut Vec<ResKey>, k: ResKey) {
        if !out.contains(&k) {
            out.push(k);
        }
    }
    let mut out = Vec::with_capacity(route.len() + 6);
    for &(l, d) in route {
        push(&mut out, ResKey::LinkDir(l, d));
    }
    let (src, dst) = (spec.src, spec.dst);
    if topo.node(src).kind == NodeKind::Host {
        push(&mut out, ResKey::NicTx(src));
        push(&mut out, ResKey::Cpu(src));
        if spec.uses_src_disk {
            push(&mut out, ResKey::DiskRead(src));
        }
    }
    if topo.node(dst).kind == NodeKind::Host {
        push(&mut out, ResKey::NicRx(dst));
        push(&mut out, ResKey::Cpu(dst));
        if spec.uses_dst_disk {
            push(&mut out, ResKey::DiskWrite(dst));
        }
    }
    out
}

/// Partition the flows reachable from `seeds` into connected components of
/// the flow↔resource bipartite graph. Only finite-capacity resources carry
/// connectivity (infinite resources never constrain anything). Components
/// are emitted in ascending order of their smallest seed and each component
/// is sorted by flow id — a canonical order shared by the incremental path
/// and the oracle. Traversal borrows the per-flow resource slices and
/// visits resource members through a callback; it allocates nothing per
/// flow.
fn partition_components<'a>(
    seeds: &BTreeSet<u64>,
    n_res: usize,
    n_flows: u64,
    scratch: &mut PartitionScratch,
    res_of: impl Fn(u64) -> &'a [u32],
    flows_on: impl Fn(u32, &mut dyn FnMut(u64)),
    finite: impl Fn(u32) -> bool,
) -> Vec<Vec<u64>> {
    scratch.begin(n_res, n_flows as usize);
    let epoch = scratch.epoch;
    let PartitionScratch {
        seen_r,
        seen_f,
        stack,
        ..
    } = scratch;
    let mut comps = Vec::new();
    for &s in seeds {
        if seen_f[s as usize] == epoch {
            continue;
        }
        seen_f[s as usize] = epoch;
        let mut comp = vec![s];
        stack.push(s);
        while let Some(f) = stack.pop() {
            for &r in res_of(f) {
                if seen_r[r as usize] == epoch {
                    continue;
                }
                seen_r[r as usize] = epoch;
                if !finite(r) {
                    continue;
                }
                flows_on(r, &mut |g| {
                    if seen_f[g as usize] != epoch {
                        seen_f[g as usize] = epoch;
                        comp.push(g);
                        stack.push(g);
                    }
                });
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Insert/replace/remove a flow's completion entry in the event index.
fn set_comp_entry(events: &mut BTreeSet<(SimTime, u8, u64)>, f: &mut FlowRt, id: u64, at: SimTime) {
    if at == f.comp_at {
        return;
    }
    if f.comp_at != SimTime::MAX {
        events.remove(&(f.comp_at, EV_COMPLETE, id));
    }
    if at != SimTime::MAX {
        events.insert((at, EV_COMPLETE, id));
    }
    f.comp_at = at;
}

/// Insert/replace/remove a flow's ramp-boundary entry in the event index.
fn set_ramp_entry(events: &mut BTreeSet<(SimTime, u8, u64)>, f: &mut FlowRt, id: u64, at: SimTime) {
    if at == f.ramp_at {
        return;
    }
    if f.ramp_at != SimTime::MAX {
        events.remove(&(f.ramp_at, EV_RAMP, id));
    }
    if at != SimTime::MAX {
        events.insert((at, EV_RAMP, id));
    }
    f.ramp_at = at;
}

/// The live network: topology plus active flows.
#[derive(Debug)]
pub struct FlowNet {
    pub topo: Topology,
    /// Whether the name service (DNS) is reachable; connection-establishing
    /// protocols check this before opening new channels. See
    /// [`crate::failure::FaultKind::NameServiceDown`].
    pub name_service_up: bool,
    /// Bookkeeping for overlapping injected faults (see [`crate::failure`]).
    pub(crate) fault_ledger: crate::failure::FaultLedger,
    /// Flow slab keyed by dense flow id; ids are never reused, completed
    /// and removed flows leave a `None` behind.
    flows: Vec<Option<FlowRt>>,
    /// Ids of flows in `Running` or `Stalled` state, ascending.
    active: BTreeSet<u64>,
    next_id: u64,
    last_advance: SimTime,
    completed: Vec<FlowId>,

    // --- incremental allocator state ---
    /// Interning: resource key → stable index.
    res_ids: HashMap<ResKey, u32>,
    /// Inverse interning: index → key (capacities are read live from the
    /// topology at solve time so capacity changes need no re-interning).
    res_keys: Vec<ResKey>,
    /// Membership: resource index → running flows crossing it (sharded).
    members: MembershipIndex,
    /// Flows whose cap/route/existence changed since the last recompute.
    dirty_flows: BTreeSet<u64>,
    /// Resources whose capacity changed or whose member set shrank.
    dirty_res: BTreeSet<u32>,
    /// Topology-wide invalidation (reroute events): re-solve everything.
    dirty_all: bool,
    /// Time-ordered index of pending network discontinuities: flow
    /// completions and slow-start boundaries, keyed `(time, kind, id)`.
    /// Maintained eagerly on rate changes so `next_event_time` is a lookup.
    events: BTreeSet<(SimTime, u8, u64)>,
    /// Route cache keyed by endpoint pair; cleared whenever link/node
    /// up-state changes (the only mutations that can change BFS routes).
    /// Negative results are cached too.
    route_cache: HashMap<(NodeId, NodeId), CachedRoute>,
    /// Ablation switch: treat every dirty event as a full invalidation, so
    /// each recompute re-solves every component from scratch (the seed
    /// behaviour this allocator replaces). Rates are bitwise identical
    /// either way.
    full_recompute: bool,
    solver: SolverConfig,
    /// Arena for inline (non-parallel) solves.
    scratch: SolveScratch,
    /// Per-worker arenas, reused across parallel passes.
    worker_scratch: Vec<SolveScratch>,
    /// Visited-set arena for component partitioning, reused across passes.
    part_scratch: PartitionScratch,
    stats: AllocStats,
}

impl FlowNet {
    pub fn new(topo: Topology) -> Self {
        FlowNet {
            topo,
            name_service_up: true,
            fault_ledger: crate::failure::FaultLedger::default(),
            flows: Vec::new(),
            active: BTreeSet::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            completed: Vec::new(),
            res_ids: HashMap::new(),
            res_keys: Vec::new(),
            members: MembershipIndex::new(),
            dirty_flows: BTreeSet::new(),
            dirty_res: BTreeSet::new(),
            dirty_all: false,
            events: BTreeSet::new(),
            route_cache: HashMap::new(),
            full_recompute: false,
            solver: SolverConfig::default(),
            scratch: SolveScratch::default(),
            worker_scratch: Vec::new(),
            part_scratch: PartitionScratch::default(),
            stats: AllocStats::default(),
        }
    }

    /// Switch between the incremental allocator (default) and the
    /// from-scratch ablation. Both produce bitwise-identical rates; the
    /// ablation just re-solves every component on every change.
    pub fn set_full_recompute(&mut self, on: bool) {
        self.full_recompute = on;
    }

    pub fn full_recompute(&self) -> bool {
        self.full_recompute
    }

    /// Select how recompute passes solve their components. Every mode is
    /// bitwise identical; this only trades wall-clock.
    pub fn set_solver(&mut self, cfg: SolverConfig) {
        self.solver = cfg;
    }

    pub fn solver(&self) -> SolverConfig {
        self.solver
    }

    /// Cumulative allocation-work counters.
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// Number of non-completed flows currently in the system.
    pub fn active_flow_count(&self) -> usize {
        self.active.len()
    }

    fn flow(&self, id: u64) -> &FlowRt {
        self.flows[id as usize].as_ref().expect("live flow")
    }

    fn flow_mut(&mut self, id: u64) -> &mut FlowRt {
        self.flows[id as usize].as_mut().expect("live flow")
    }

    fn is_dirty(&self) -> bool {
        self.dirty_all || !self.dirty_flows.is_empty() || !self.dirty_res.is_empty()
    }

    fn mark_flow_dirty(&mut self, id: u64) {
        self.dirty_flows.insert(id);
    }

    fn capacity_of(&self, key: ResKey) -> f64 {
        match key {
            ResKey::LinkDir(l, _) => self.topo.link(l).capacity,
            ResKey::NicTx(n) | ResKey::NicRx(n) => self.topo.node(n).nic_rate,
            ResKey::Cpu(n) => self.topo.node(n).cpu.max_byte_rate(),
            ResKey::DiskRead(n) => self.topo.node(n).disk_read_rate,
            ResKey::DiskWrite(n) => self.topo.node(n).disk_write_rate,
        }
    }

    fn intern_all(&mut self, keys: &[ResKey]) -> Vec<u32> {
        keys.iter()
            .map(|&k| match self.res_ids.get(&k) {
                Some(&i) => i,
                None => {
                    let i = self.members.push_resource();
                    debug_assert_eq!(i as usize, self.res_keys.len());
                    self.res_ids.insert(k, i);
                    self.res_keys.push(k);
                    i
                }
            })
            .collect()
    }

    /// Route + RTT for an endpoint pair, via the epoch cache. RTT can be
    /// cached alongside the path because link latency is immutable; loss is
    /// not cached ([`FlowNet::set_link_loss`] changes it without rerouting).
    fn cached_route(&mut self, src: NodeId, dst: NodeId) -> CachedRoute {
        if let Some(hit) = self.route_cache.get(&(src, dst)) {
            self.stats.route_cache_hits += 1;
            return hit.clone();
        }
        self.stats.route_cache_misses += 1;
        let computed = self.topo.route(src, dst).map(|r| {
            let rtt = self.topo.route_rtt(&r);
            (r, rtt)
        });
        self.route_cache.insert((src, dst), computed.clone());
        computed
    }

    /// Start a flow at time `now` (callers must have advanced to `now`).
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> Result<FlowId, FlowError> {
        debug_assert!(now >= self.last_advance);
        let (route, rtt) = self
            .cached_route(spec.src, spec.dst)
            .ok_or(FlowError::NoRoute)?;
        let loss = self.topo.route_loss(&route);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let ramp_stage = if spec.slow_start && !rtt.is_zero() {
            Some(0)
        } else {
            None
        };
        let keys = resource_keys_for(&spec, &route, &self.topo);
        let res = self.intern_all(&keys);
        for &r in &res {
            self.members.insert(r, id.0);
        }
        let mut f = FlowRt {
            spec,
            route,
            rtt,
            loss,
            bytes_done: 0.0,
            anchor: now,
            rate: 0.0,
            state: FlowState::Running,
            started: now,
            ramp_stage,
            comp_at: SimTime::MAX,
            ramp_at: SimTime::MAX,
            res,
        };
        if let Some(b) = f.next_ramp_boundary() {
            set_ramp_entry(&mut self.events, &mut f, id.0, b);
        }
        debug_assert_eq!(self.flows.len(), id.0 as usize);
        self.flows.push(Some(f));
        self.active.insert(id.0);
        self.mark_flow_dirty(id.0);
        Ok(id)
    }

    /// Remove a flow (cancellation, or cleanup after completion).
    pub fn remove_flow(&mut self, id: FlowId) {
        let Some(slot) = self.flows.get_mut(id.0 as usize) else {
            return;
        };
        let Some(f) = slot.take() else {
            return;
        };
        if f.comp_at != SimTime::MAX {
            self.events.remove(&(f.comp_at, EV_COMPLETE, id.0));
        }
        if f.ramp_at != SimTime::MAX {
            self.events.remove(&(f.ramp_at, EV_RAMP, id.0));
        }
        // Only a running flow occupies capacity: its departure dirties
        // the resources it sat on so surviving sharers get re-solved.
        // Removing a stalled or completed flow changes nothing.
        if f.state == FlowState::Running {
            for &r in &f.res {
                self.members.remove(r, id.0);
                self.dirty_res.insert(r);
            }
        }
        self.active.remove(&id.0);
        self.dirty_flows.remove(&id.0);
    }

    pub fn flow_state(&self, id: FlowId) -> Option<FlowState> {
        self.flows
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|f| f.state)
    }

    /// Bytes delivered so far (as of the last advance).
    pub fn flow_bytes(&self, id: FlowId) -> f64 {
        self.flows
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .map_or(0.0, |f| f.bytes_at(self.last_advance))
    }

    /// Current allocated rate in bytes/sec. Read-only and scoped: refreshes
    /// at most the component containing `id`; dirty state elsewhere in the
    /// network is left for the next full recompute.
    pub fn flow_rate(&mut self, id: FlowId) -> f64 {
        self.refresh_scoped(|fid, _| fid == id.0);
        self.flows
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .map_or(0.0, |f| f.rate)
    }

    pub fn flow_rtt(&self, id: FlowId) -> Option<SimDuration> {
        self.flows
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|f| f.rtt)
    }

    /// RTT between two nodes along the current route, if any. Used by NWS
    /// latency sensors and by protocol engines to price control exchanges.
    pub fn path_rtt(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        if let Some(hit) = self.route_cache.get(&(src, dst)) {
            return hit.as_ref().map(|(_, rtt)| *rtt);
        }
        let route = self.topo.route(src, dst)?;
        Some(self.topo.route_rtt(&route))
    }

    /// Mark a link up/down; flows are rerouted (or stalled) lazily.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if self.topo.link(link).up != up {
            self.topo.link_mut(link).up = up;
            self.reroute_all();
        }
    }

    /// Mark a node up/down.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        if self.topo.node(node).up != up {
            self.topo.node_mut(node).up = up;
            self.reroute_all();
        }
    }

    /// Change a link's capacity (degradation scenarios). Dirties only the
    /// link's two directed resources — routes are hop-count shortest paths,
    /// so capacity changes never invalidate the route cache.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: f64) {
        self.topo.link_mut(link).capacity = capacity;
        for d in [Dir::Fwd, Dir::Rev] {
            if let Some(&r) = self.res_ids.get(&ResKey::LinkDir(link, d)) {
                self.dirty_res.insert(r);
            }
        }
    }

    /// Change a link's loss rate (congestion scenarios). Refreshes the
    /// cached path loss of the flows actually crossing the link — found
    /// through the membership index, not a scan — so their Mathis caps
    /// track the new conditions; other flows are untouched.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.topo.set_link_loss(link, loss);
        let mut touched: Vec<u64> = Vec::new();
        for d in [Dir::Fwd, Dir::Rev] {
            if let Some(&r) = self.res_ids.get(&ResKey::LinkDir(link, d)) {
                touched.extend(self.members.members(r).iter().copied());
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for id in touched {
            let loss = {
                let f = self.flow(id);
                self.topo.route_loss(&f.route)
            };
            self.flow_mut(id).loss = loss;
            self.dirty_flows.insert(id);
        }
    }

    fn reroute_all(&mut self) {
        // Up-state changed somewhere: every cached path may be invalid.
        self.route_cache.clear();
        let ids: Vec<u64> = self.active.iter().copied().collect();
        for id in ids {
            // Detach the old membership before rerouting.
            let old = std::mem::take(&mut self.flow_mut(id).res);
            for r in old {
                self.members.remove(r, id);
            }
            let spec = self.flow(id).spec;
            match self.cached_route(spec.src, spec.dst) {
                Some((route, rtt)) => {
                    let loss = self.topo.route_loss(&route);
                    let keys = resource_keys_for(&spec, &route, &self.topo);
                    let res = self.intern_all(&keys);
                    for &r in &res {
                        self.members.insert(r, id);
                    }
                    let last = self.last_advance;
                    let events = &mut self.events;
                    let f = self.flows[id as usize].as_mut().expect("live flow");
                    f.rtt = rtt;
                    f.loss = loss;
                    f.route = route;
                    f.res = res;
                    if f.state == FlowState::Stalled {
                        // A flow resuming after an outage re-enters slow
                        // start. This also discards ramp boundaries frozen
                        // in the past while the flow was stalled, which
                        // would otherwise wedge the kernel's next-event
                        // computation at that past instant.
                        f.started = last;
                        f.ramp_stage = if f.spec.slow_start && !f.rtt.is_zero() {
                            Some(0)
                        } else {
                            None
                        };
                    }
                    f.state = FlowState::Running;
                    // The RTT (and thus any pending boundary) may have
                    // moved; clamp to the strict future so a boundary
                    // already behind the clock still fires (and ramp
                    // catch-up runs) instead of wedging time.
                    let b = f
                        .next_ramp_boundary()
                        .map(|b| b.max(last + SimDuration::from_nanos(1)))
                        .unwrap_or(SimTime::MAX);
                    set_ramp_entry(events, f, id, b);
                }
                None => {
                    let last = self.last_advance;
                    let events = &mut self.events;
                    let f = self.flows[id as usize].as_mut().expect("live flow");
                    f.materialize(last);
                    f.route.clear();
                    f.rate = 0.0;
                    f.state = FlowState::Stalled;
                    set_comp_entry(events, f, id, SimTime::MAX);
                    set_ramp_entry(events, f, id, SimTime::MAX);
                }
            }
        }
        self.dirty_all = true;
    }

    /// Integrate progress up to `t` using the current allocation. Flows
    /// that finish are marked `Done` and queued for
    /// [`FlowNet::take_completed`]. Cost is O(log n) per *discontinuity*
    /// (completion or ramp boundary) in `(last_advance, t]`, not O(flows):
    /// clean flows simply keep their anchor and rate. Each discontinuity
    /// triggers a re-solve at its own instant, so rates are exact
    /// piecewise-linear even when `t` jumps past several events.
    pub fn advance_to(&mut self, t: SimTime) {
        self.ensure_fresh();
        if t <= self.last_advance {
            return;
        }
        while let Some(&(at, kind, id)) = self.events.first() {
            if at > t {
                break;
            }
            self.events.pop_first();
            self.last_advance = at;
            match kind {
                EV_COMPLETE => self.complete_flow(id),
                _ => self.cross_ramp(id),
            }
            self.ensure_fresh();
        }
        self.last_advance = t;
    }

    fn complete_flow(&mut self, id: u64) {
        let t = self.last_advance;
        let events = &mut self.events;
        let f = self.flows[id as usize].as_mut().expect("live flow");
        f.bytes_done = f.spec.size;
        f.anchor = t;
        f.comp_at = SimTime::MAX;
        f.rate = 0.0;
        f.state = FlowState::Done;
        if f.ramp_at != SimTime::MAX {
            events.remove(&(f.ramp_at, EV_RAMP, id));
            f.ramp_at = SimTime::MAX;
        }
        let res = std::mem::take(&mut f.res);
        for r in res {
            self.members.remove(r, id);
            self.dirty_res.insert(r);
        }
        self.active.remove(&id);
        self.completed.push(FlowId(id));
    }

    fn cross_ramp(&mut self, id: u64) {
        let last = self.last_advance;
        let events = &mut self.events;
        let f = self.flows[id as usize].as_mut().expect("live flow");
        f.ramp_at = SimTime::MAX; // entry already popped
                                  // Cross every boundary at or before now (a clamped stale entry —
                                  // reroute with a shrunken RTT — can cover several at once).
        while let Some(stage) = f.ramp_stage {
            let boundary = f.started + f.rtt * (stage as u64 + 1);
            if boundary > last {
                break;
            }
            let next = stage + 1;
            let rtt = f.rtt.as_secs_f64();
            let w = INITIAL_WINDOW * 2f64.powi(next as i32);
            if rtt <= 0.0 || w / rtt >= f.steady_cap() {
                f.ramp_stage = None; // ramp complete
            } else {
                f.ramp_stage = Some(next);
            }
        }
        let b = f
            .next_ramp_boundary()
            .map(|b| b.max(last + SimDuration::from_nanos(1)))
            .unwrap_or(SimTime::MAX);
        set_ramp_entry(events, f, id, b);
        self.dirty_flows.insert(id);
    }

    /// Drain the set of flows that completed during past advances.
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.completed)
    }

    /// The next time anything discontinuous happens inside the network:
    /// a flow completion or a slow-start stage boundary. `SimTime::MAX`
    /// when nothing is pending. The event index is maintained eagerly on
    /// rate changes, so after the freshness check this is a lookup.
    pub fn next_event_time(&mut self) -> SimTime {
        self.ensure_fresh();
        self.events.first().map_or(SimTime::MAX, |&(t, _, _)| t)
    }

    /// Seed flows for a recompute: the dirty flows still running, plus every
    /// current member of a dirty resource (whose share changed when the
    /// resource's capacity moved or a sharer departed).
    fn dirty_seeds(&self) -> BTreeSet<u64> {
        if self.dirty_all {
            return self
                .active
                .iter()
                .copied()
                .filter(|&id| self.flow(id).state == FlowState::Running)
                .collect();
        }
        let mut seeds: BTreeSet<u64> = self
            .dirty_flows
            .iter()
            .copied()
            .filter(|&id| {
                self.flows
                    .get(id as usize)
                    .and_then(|s| s.as_ref())
                    .is_some_and(|f| f.state == FlowState::Running)
            })
            .collect();
        for &r in &self.dirty_res {
            seeds.extend(self.members.members(r).iter().copied());
        }
        seeds
    }

    fn components_from(
        &self,
        seeds: &BTreeSet<u64>,
        scratch: &mut PartitionScratch,
    ) -> Vec<Vec<u64>> {
        partition_components(
            seeds,
            self.res_keys.len(),
            self.next_id,
            scratch,
            |f| {
                self.flows[f as usize]
                    .as_ref()
                    .expect("live flow")
                    .res
                    .as_slice()
            },
            |r, visit| {
                for &g in self.members.members(r) {
                    visit(g);
                }
            },
            |r| self.capacity_of(self.res_keys[r as usize]).is_finite(),
        )
    }

    /// Assemble and solve one component as a self-contained max-min fair
    /// subproblem, against an immutable view of the network. Assembly order
    /// is canonical — flows ascending by id, resources interned by first
    /// encounter — so the same component always produces the same bits no
    /// matter what else is recomputed around it, on whatever thread.
    fn solve_component_rates(&self, comp: &[u64], scratch: &mut SolveScratch) -> Vec<f64> {
        scratch.begin(self.res_keys.len());
        let mut aflows: Vec<AllocFlow> = Vec::with_capacity(comp.len());
        for &fid in comp {
            let f = self.flow(fid);
            let mut rs: Vec<usize> = Vec::with_capacity(f.res.len());
            for &r in &f.res {
                let cap = self.capacity_of(self.res_keys[r as usize]);
                if !cap.is_finite() {
                    continue; // unconstrained resources don't participate
                }
                rs.push(scratch.intern(r, cap));
            }
            rs.sort_unstable();
            aflows.push(AllocFlow {
                resources: rs,
                cap: f.current_cap(),
            });
        }
        max_min_fair(&scratch.capacities, &aflows)
    }

    /// The original per-component solver, kept verbatim as the sequential
    /// reference: hash-map interning per component. Bitwise identical to
    /// [`FlowNet::solve_component_rates`] (local ids are assigned in the
    /// same first-encounter order either way).
    fn solve_component_rates_legacy(&self, comp: &[u64]) -> Vec<f64> {
        let mut local: HashMap<u32, usize> = HashMap::new();
        let mut capacities: Vec<f64> = Vec::new();
        let mut aflows: Vec<AllocFlow> = Vec::with_capacity(comp.len());
        for &fid in comp {
            let f = self.flow(fid);
            let mut rs: Vec<usize> = Vec::with_capacity(f.res.len());
            for &r in &f.res {
                let cap = self.capacity_of(self.res_keys[r as usize]);
                if !cap.is_finite() {
                    continue;
                }
                let next = local.len();
                let lid = *local.entry(r).or_insert_with(|| {
                    capacities.push(cap);
                    next
                });
                rs.push(lid);
            }
            rs.sort_unstable();
            aflows.push(AllocFlow {
                resources: rs,
                cap: f.current_cap(),
            });
        }
        max_min_fair(&capacities, &aflows)
    }

    /// Commit one solved component: flows whose rate changed *bitwise*
    /// materialize their progress at the present and refresh their
    /// completion entry; unchanged flows are untouched (same anchor, same
    /// pending events) — in every solver mode and in the full-recompute
    /// ablation alike, which is what keeps byte progress bit-identical
    /// across them.
    fn apply_rates(&mut self, comp: &[u64], rates: &[f64]) {
        let t = self.last_advance;
        for (&fid, &rate) in comp.iter().zip(rates) {
            let events = &mut self.events;
            let f = self.flows[fid as usize].as_mut().expect("live flow");
            if rate.to_bits() == f.rate.to_bits() {
                continue;
            }
            f.materialize(t);
            f.rate = rate;
            let at = if rate > 0.0 && f.spec.size.is_finite() {
                let secs = (f.spec.size - f.bytes_done).max(0.0) / rate;
                f.anchor + SimDuration::from_secs_f64(secs)
            } else {
                SimTime::MAX
            };
            set_comp_entry(events, f, fid, at);
        }
        self.stats.components_solved += 1;
        self.stats.flow_solves += comp.len() as u64;
    }

    /// Solve a batch of components under the configured solver mode and
    /// commit the results in ascending component order.
    fn solve_components(&mut self, comps: &[Vec<u64>]) {
        match self.solver.mode {
            SolverMode::Sequential => {
                for comp in comps {
                    let rates = self.solve_component_rates_legacy(comp);
                    self.apply_rates(comp, &rates);
                }
            }
            SolverMode::Parallel { workers, threshold } => {
                let total: usize = comps.iter().map(|c| c.len()).sum();
                let workers = workers.min(comps.len());
                if workers > 1 && total >= threshold {
                    self.solve_components_parallel(comps, workers);
                } else {
                    let mut scratch = std::mem::take(&mut self.scratch);
                    for comp in comps {
                        let rates = self.solve_component_rates(comp, &mut scratch);
                        self.apply_rates(comp, &rates);
                    }
                    self.scratch = scratch;
                }
            }
        }
    }

    /// Fan a batch of components out across `workers` OS threads.
    ///
    /// The merge is deterministic by construction: workers own disjoint
    /// contiguous chunks of the (canonically ordered) component list, each
    /// component is solved as a pure function of the shared immutable
    /// network snapshot, and the main thread joins the chunks back in
    /// component order before applying them. Thread scheduling can change
    /// only *when* a result is produced, never which result or the order in
    /// which it is applied.
    fn solve_components_parallel(&mut self, comps: &[Vec<u64>], workers: usize) {
        let total: usize = comps.iter().map(|c| c.len()).sum();
        // Contiguous chunks balanced by flow count (components vary wildly
        // in size; round-robin would still balance but would scatter cache
        // locality of neighbouring components).
        let per_worker = total.div_ceil(workers);
        let mut chunks: Vec<(usize, usize)> = Vec::with_capacity(workers);
        let mut start = 0usize;
        let mut acc = 0usize;
        for (i, comp) in comps.iter().enumerate() {
            acc += comp.len();
            if acc >= per_worker && chunks.len() + 1 < workers {
                chunks.push((start, i + 1));
                start = i + 1;
                acc = 0;
            }
        }
        if start < comps.len() {
            chunks.push((start, comps.len()));
        }
        let mut pool = std::mem::take(&mut self.worker_scratch);
        pool.resize_with(chunks.len(), SolveScratch::default);
        let net: &FlowNet = self;
        let mut parts: Vec<Vec<Vec<f64>>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for (&(lo, hi), scratch) in chunks.iter().zip(pool.iter_mut()) {
                handles.push(scope.spawn(move || {
                    comps[lo..hi]
                        .iter()
                        .map(|comp| net.solve_component_rates(comp, scratch))
                        .collect::<Vec<Vec<f64>>>()
                }));
            }
            for h in handles {
                parts.push(h.join().expect("solver worker panicked"));
            }
        });
        self.worker_scratch = pool;
        // Reassemble in canonical (ascending component) order and apply.
        let mut it = comps.iter();
        for part in parts {
            for rates in part {
                let comp = it.next().expect("chunk/component count mismatch");
                self.apply_rates(comp, &rates);
            }
        }
        self.stats.parallel_batches += 1;
    }

    /// Recompute the allocation for every dirty component. A burst of
    /// mutations between two queries coalesces into one pass here.
    fn ensure_fresh(&mut self) {
        if !self.is_dirty() {
            return;
        }
        if self.full_recompute {
            self.dirty_all = true;
        }
        let seeds = self.dirty_seeds();
        self.dirty_all = false;
        self.dirty_flows.clear();
        self.dirty_res.clear();
        if seeds.is_empty() {
            return;
        }
        self.stats.recompute_passes += 1;
        let mut ps = std::mem::take(&mut self.part_scratch);
        let comps = self.components_from(&seeds, &mut ps);
        self.part_scratch = ps;
        self.solve_components(&comps);
    }

    /// Refresh only the dirty components for which `wanted` matches a
    /// member flow. The dirty set is left intact (re-solving a component
    /// later is idempotent: same subproblem, same bits), so an unrelated
    /// read never forces — or absorbs — work belonging to other parts of
    /// the network.
    fn refresh_scoped(&mut self, wanted: impl Fn(u64, &FlowRt) -> bool) {
        if !self.is_dirty() {
            return;
        }
        if self.dirty_all || self.full_recompute {
            self.ensure_fresh();
            return;
        }
        let seeds = self.dirty_seeds();
        let mut ps = std::mem::take(&mut self.part_scratch);
        let comps = self.components_from(&seeds, &mut ps);
        self.part_scratch = ps;
        let chosen: Vec<Vec<u64>> = comps
            .into_iter()
            .filter(|c| c.iter().any(|&f| wanted(f, self.flow(f))))
            .collect();
        let mut scratch = std::mem::take(&mut self.scratch);
        for comp in &chosen {
            let rates = self.solve_component_rates(comp, &mut scratch);
            self.apply_rates(comp, &rates);
        }
        self.scratch = scratch;
    }

    /// Fraction of a host's CPU byte-processing budget currently consumed
    /// by its flows (0.0 = idle, 1.0 = saturated). This is the "available
    /// CPU percentage" signal NWS's CPU sensor reports, and what §7 means
    /// by "the CPU was running at near 100% capacity". Read-only and
    /// scoped: only components touching this host are refreshed, and the
    /// sum runs over the host's CPU-resource members (via the membership
    /// index), not over every flow in the network.
    pub fn host_cpu_utilization(&mut self, node: NodeId) -> f64 {
        let budget = self.topo.node(node).cpu.max_byte_rate();
        if !budget.is_finite() {
            return 0.0;
        }
        self.refresh_scoped(|_, f| f.spec.src == node || f.spec.dst == node);
        let used: f64 = match self.res_ids.get(&ResKey::Cpu(node)) {
            Some(&r) => self
                .members
                .members(r)
                .iter()
                .map(|&id| self.flow(id).rate)
                .sum(),
            None => 0.0,
        };
        (used / budget).min(1.0)
    }

    /// Force an allocation recompute and return the current rate of every
    /// running flow (for instrumentation snapshots).
    pub fn snapshot_rates(&mut self) -> Vec<(FlowId, f64)> {
        self.ensure_fresh();
        self.active
            .iter()
            .filter(|&&id| self.flow(id).state == FlowState::Running)
            .map(|&id| (FlowId(id), self.flow(id).rate))
            .collect()
    }

    /// From-scratch reference allocation for differential tests: rebuilds
    /// the flow↔resource graph directly from routes and topology (ignoring
    /// the persistent index entirely), partitions it into components, and
    /// solves each with the same canonical assembly the incremental path
    /// uses. A correct incremental allocator must match this bit-for-bit.
    pub fn oracle_rates(&self) -> Vec<(FlowId, f64)> {
        let mut key_ids: HashMap<ResKey, u32> = HashMap::new();
        let mut keys: Vec<ResKey> = Vec::new();
        let mut members: Vec<Vec<u64>> = Vec::new();
        let mut flow_res: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut running: BTreeSet<u64> = BTreeSet::new();
        for &id in &self.active {
            let f = self.flow(id);
            if f.state != FlowState::Running {
                continue;
            }
            running.insert(id);
            let rkeys = resource_keys_for(&f.spec, &f.route, &self.topo);
            let mut rs: Vec<u32> = Vec::with_capacity(rkeys.len());
            for key in rkeys {
                let next = keys.len() as u32;
                let rid = *key_ids.entry(key).or_insert_with(|| {
                    keys.push(key);
                    members.push(Vec::new());
                    next
                });
                rs.push(rid);
            }
            for &r in &rs {
                members[r as usize].push(id);
            }
            flow_res.insert(id, rs);
        }
        // The oracle is deliberately free of persistent state: it pays for
        // a fresh scratch every call, which is fine at test frequency.
        let mut ps = PartitionScratch::default();
        let comps = partition_components(
            &running,
            keys.len(),
            self.next_id,
            &mut ps,
            |f| flow_res[&f].as_slice(),
            |r, visit| {
                for &g in &members[r as usize] {
                    visit(g);
                }
            },
            |r| self.capacity_of(keys[r as usize]).is_finite(),
        );
        let mut out: Vec<(FlowId, f64)> = Vec::new();
        for comp in &comps {
            let mut local: HashMap<u32, usize> = HashMap::new();
            let mut capacities: Vec<f64> = Vec::new();
            let mut aflows: Vec<AllocFlow> = Vec::with_capacity(comp.len());
            for &fid in comp {
                let mut rs: Vec<usize> = Vec::new();
                for &r in &flow_res[&fid] {
                    let cap = self.capacity_of(keys[r as usize]);
                    if !cap.is_finite() {
                        continue;
                    }
                    let next = local.len();
                    let lid = *local.entry(r).or_insert_with(|| {
                        capacities.push(cap);
                        next
                    });
                    rs.push(lid);
                }
                rs.sort_unstable();
                aflows.push(AllocFlow {
                    resources: rs,
                    cap: self.flow(fid).current_cap(),
                });
            }
            let rates = max_min_fair(&capacities, &aflows);
            for (&fid, rate) in comp.iter().zip(rates) {
                out.push((FlowId(fid), rate));
            }
        }
        out.sort_by_key(|&(id, _)| id);
        out
    }

    pub fn now(&self) -> SimTime {
        self.last_advance
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Node;

    fn dumbbell(capacity: f64, latency_ms: u64) -> (FlowNet, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, capacity, SimDuration::from_millis(latency_ms));
        (FlowNet::new(t), a, b)
    }

    fn big_window_spec(a: NodeId, b: NodeId, size: f64) -> FlowSpec {
        FlowSpec::new(a, b, size).window(1e12).memory_to_memory()
    }

    #[test]
    fn single_flow_completes_at_line_rate() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        // Zero latency: no slow-start ramp, rate = link capacity.
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 100e6))
            .unwrap();
        let t = net.next_event_time();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "{t}");
        net.advance_to(t);
        assert_eq!(net.flow_state(id), Some(FlowState::Done));
        assert_eq!(net.take_completed(), vec![id]);
    }

    #[test]
    fn two_flows_halve_throughput() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let f1 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(f1) - 50e6).abs() < 1.0);
        assert!((net.flow_rate(f2) - 50e6).abs() < 1.0);
    }

    #[test]
    fn window_limits_flow_below_link() {
        let (mut net, a, b) = dumbbell(1e9, 50); // 100 ms RTT
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(1e6)
            .memory_to_memory()
            .cached_channel(); // skip ramp: observe steady state directly
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        // window/RTT = 1 MB / 0.1 s = 10 MB/s.
        assert!((net.flow_rate(id) - 10e6).abs() < 1.0);
    }

    #[test]
    fn slow_start_ramp_caps_early_rate() {
        let (mut net, a, b) = dumbbell(1e9, 10); // 20 ms RTT
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(4e6)
            .memory_to_memory();
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        let early = net.flow_rate(id);
        // Initial cap = 2*MSS / 20 ms = 146 KB/s.
        assert!(early < 200e3, "early rate {early}");
        net.advance_to(SimTime::from_secs(2));
        let late = net.flow_rate(id);
        assert!(late > 50e6, "steady rate {late}");
    }

    #[test]
    fn cached_channel_skips_ramp() {
        let (mut net, a, b) = dumbbell(1e9, 10);
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(4e6)
            .memory_to_memory()
            .cached_channel();
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        assert!(net.flow_rate(id) > 50e6);
    }

    #[test]
    fn link_failure_stalls_and_recovery_resumes() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 200e6))
            .unwrap();
        net.advance_to(SimTime::from_secs(1)); // 100 MB done
        let done_before = net.flow_bytes(id);
        assert!((done_before - 100e6).abs() < 1.0);

        net.set_link_up(LinkId(0), false);
        assert_eq!(net.flow_state(id), Some(FlowState::Stalled));
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.flow_bytes(id), done_before); // no progress while down

        net.set_link_up(LinkId(0), true);
        assert_eq!(net.flow_state(id), Some(FlowState::Running));
        net.advance_to(SimTime::from_secs(6));
        assert_eq!(net.flow_state(id), Some(FlowState::Done));
    }

    #[test]
    fn no_route_is_an_error() {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        // no link
        let mut net = FlowNet::new(t);
        assert_eq!(
            net.start_flow(SimTime::ZERO, FlowSpec::new(a, b, 1.0)),
            Err(FlowError::NoRoute)
        );
    }

    #[test]
    fn host_nic_caps_aggregate() {
        // Fat link, slow NIC at the source: 3 flows to 3 sinks share the NIC.
        let mut t = Topology::new();
        let src = t.add_node(Node::host("src").with_nic(30e6));
        let r = t.add_node(Node::router("r"));
        t.add_link(src, r, 1e9, SimDuration::ZERO);
        let mut sinks = Vec::new();
        for i in 0..3 {
            let s = t.add_node(Node::host(format!("sink{i}")));
            t.add_link(r, s, 1e9, SimDuration::ZERO);
            sinks.push(s);
        }
        let mut net = FlowNet::new(t);
        let flows: Vec<_> = sinks
            .iter()
            .map(|&s| {
                net.start_flow(SimTime::ZERO, big_window_spec(src, s, f64::INFINITY))
                    .unwrap()
            })
            .collect();
        for f in flows {
            assert!((net.flow_rate(f) - 10e6).abs() < 1.0);
        }
    }

    #[test]
    fn disk_constrains_only_disk_flows() {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a").with_disk(5e6, f64::INFINITY));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, 1e9, SimDuration::ZERO);
        let mut net = FlowNet::new(t);
        let disk_flow = net
            .start_flow(
                SimTime::ZERO,
                FlowSpec::new(a, b, f64::INFINITY).window(1e12),
            )
            .unwrap();
        let mem_flow = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(disk_flow) - 5e6).abs() < 1.0);
        assert!(net.flow_rate(mem_flow) > 100e6);
    }

    #[test]
    fn remove_flow_releases_bandwidth() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let f1 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(f1) - 50e6).abs() < 1.0);
        net.remove_flow(f2);
        assert!((net.flow_rate(f1) - 100e6).abs() < 1.0);
    }

    #[test]
    fn parallel_streams_beat_one_on_lossy_path() {
        // Loss-limited path: N streams get ~N x the Mathis bound, the
        // mechanism behind GridFTP's parallel transfers.
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let l = t.add_link(a, b, 1e9, SimDuration::from_millis(25));
        t.set_link_loss(l, 0.001);
        let mut net = FlowNet::new(t);
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(1e9)
            .memory_to_memory()
            .cached_channel();
        let single = net.start_flow(SimTime::ZERO, spec).unwrap();
        let r1 = net.flow_rate(single);
        for _ in 0..3 {
            net.start_flow(SimTime::ZERO, spec).unwrap();
        }
        let total: f64 = net.snapshot_rates().iter().map(|(_, r)| r).sum();
        assert!(
            total > 3.5 * r1,
            "4 streams should ~4x a loss-limited stream: {total} vs {r1}"
        );
    }

    #[test]
    fn next_event_reports_ramp_boundaries() {
        let (mut net, a, b) = dumbbell(1e9, 10);
        net.start_flow(
            SimTime::ZERO,
            FlowSpec::new(a, b, f64::INFINITY).memory_to_memory(),
        )
        .unwrap();
        // First ramp boundary at one RTT (20 ms).
        let next = net.next_event_time();
        assert_eq!(next, SimTime::from_secs_f64(0.020));
    }

    #[test]
    fn cpu_utilization_tracks_flows() {
        let mut t = Topology::new();
        let cpu = crate::network::CpuModel {
            cycles_per_sec: 800e6,
            cycles_per_byte: 8.0,
            coalescing_factor: 1.0,
            jumbo_frames: false,
        }; // budget = 100 MB/s
        let a = t.add_node(Node::host("a").with_cpu(cpu));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, 50e6, SimDuration::ZERO);
        let mut net = FlowNet::new(t);
        assert_eq!(net.host_cpu_utilization(a), 0.0);
        let id = net
            .start_flow(
                SimTime::ZERO,
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        // Link-limited flow at 50 MB/s against a 100 MB/s CPU budget.
        let u = net.host_cpu_utilization(a);
        assert!((u - 0.5).abs() < 1e-6, "{u}");
        // Router/unlimited node reports 0.
        assert_eq!(net.host_cpu_utilization(b), 0.0);
        net.remove_flow(id);
        assert_eq!(net.host_cpu_utilization(a), 0.0);
    }

    #[test]
    fn advance_is_idempotent_for_same_time() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        let bytes = net.flow_bytes(id);
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.flow_bytes(id), bytes);
    }

    // ---- incremental-allocator specific tests ----

    /// Two disjoint dumbbells inside one FlowNet: a↔b and c↔d.
    fn twin_dumbbells() -> (FlowNet, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let c = t.add_node(Node::host("c"));
        let d = t.add_node(Node::host("d"));
        t.add_link(a, b, 100e6, SimDuration::ZERO);
        t.add_link(c, d, 100e6, SimDuration::ZERO);
        (FlowNet::new(t), a, b, c, d)
    }

    #[test]
    fn scoped_query_skips_non_adjacent_components() {
        let (mut net, a, b, c, d) = twin_dumbbells();
        let fab = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let _fcd = net
            .start_flow(SimTime::ZERO, big_window_spec(c, d, f64::INFINITY))
            .unwrap();
        net.snapshot_rates(); // settle both components
        let base = net.alloc_stats();

        // Dirty only the c↔d component.
        let fcd2 = net
            .start_flow(SimTime::ZERO, big_window_spec(c, d, f64::INFINITY))
            .unwrap();
        // Reading the a↔b flow must not solve anything.
        assert!((net.flow_rate(fab) - 100e6).abs() < 1.0);
        assert_eq!(net.alloc_stats().components_solved, base.components_solved);
        // Reading the dirty component solves exactly one component.
        assert!((net.flow_rate(fcd2) - 50e6).abs() < 1.0);
        assert_eq!(
            net.alloc_stats().components_solved,
            base.components_solved + 1
        );
        // Querying CPU on a non-adjacent host also solves nothing further.
        net.host_cpu_utilization(a);
        assert_eq!(
            net.alloc_stats().components_solved,
            base.components_solved + 1
        );
    }

    #[test]
    fn burst_of_arrivals_coalesces_into_one_pass() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        net.snapshot_rates();
        let base = net.alloc_stats();
        for _ in 0..16 {
            net.start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
                .unwrap();
        }
        net.snapshot_rates();
        let after = net.alloc_stats();
        assert_eq!(after.recompute_passes, base.recompute_passes + 1);
        assert_eq!(after.components_solved, base.components_solved + 1);
    }

    #[test]
    fn route_cache_hits_and_invalidates() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, 1e6))
            .unwrap();
        let s = net.alloc_stats();
        assert_eq!((s.route_cache_hits, s.route_cache_misses), (0, 1));
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, 1e6))
            .unwrap();
        assert_eq!(net.alloc_stats().route_cache_hits, 1);
        // Topology up-state change clears the cache.
        net.set_link_up(LinkId(0), false);
        net.set_link_up(LinkId(0), true);
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, 1e6))
            .unwrap();
        // reroute_all repopulated the cache for (a, b) while the link was
        // re-routed, so this start is a hit against the fresh entry; the
        // miss counter moved during the reroutes instead.
        assert!(net.alloc_stats().route_cache_misses >= 2);
    }

    #[test]
    fn no_route_is_cached_and_cleared_on_recovery() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        net.set_link_up(LinkId(0), false);
        assert_eq!(
            net.start_flow(SimTime::ZERO, FlowSpec::new(a, b, 1.0)),
            Err(FlowError::NoRoute)
        );
        assert_eq!(
            net.start_flow(SimTime::ZERO, FlowSpec::new(a, b, 1.0)),
            Err(FlowError::NoRoute)
        );
        net.set_link_up(LinkId(0), true);
        assert!(net
            .start_flow(SimTime::ZERO, FlowSpec::new(a, b, 1.0))
            .is_ok());
    }

    #[test]
    fn incremental_matches_oracle_through_mutations() {
        let (mut net, a, b, c, d) = twin_dumbbells();
        let f1 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 500e6))
            .unwrap();
        net.start_flow(SimTime::ZERO, big_window_spec(c, d, f64::INFINITY))
            .unwrap();
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let check = |net: &mut FlowNet| {
            let inc = net.snapshot_rates();
            let ora = net.oracle_rates();
            assert_eq!(inc.len(), ora.len());
            for ((fi, ri), (fo, ro)) in inc.iter().zip(&ora) {
                assert_eq!(fi, fo);
                assert_eq!(ri.to_bits(), ro.to_bits(), "flow {fi:?}: {ri} vs {ro}");
            }
        };
        check(&mut net);
        net.advance_to(SimTime::from_secs(2));
        check(&mut net);
        net.set_link_capacity(LinkId(1), 40e6);
        check(&mut net);
        net.remove_flow(f1);
        check(&mut net);
        net.set_link_up(LinkId(0), false);
        check(&mut net);
        net.set_link_up(LinkId(0), true);
        check(&mut net);
    }

    #[test]
    fn full_recompute_mode_is_bitwise_identical() {
        let run = |full: bool| -> (Vec<(FlowId, f64)>, Vec<f64>) {
            let (mut net, a, b, c, d) = twin_dumbbells();
            net.set_full_recompute(full);
            net.start_flow(SimTime::ZERO, big_window_spec(a, b, 300e6))
                .unwrap();
            net.start_flow(SimTime::ZERO, big_window_spec(c, d, 200e6))
                .unwrap();
            net.advance_to(SimTime::from_secs(1));
            net.start_flow(net.now(), big_window_spec(a, b, 100e6))
                .unwrap();
            net.advance_to(SimTime::from_secs(3));
            let rates = net.snapshot_rates();
            let bytes = (0..3).map(|i| net.flow_bytes(FlowId(i))).collect();
            (rates, bytes)
        };
        let (ri, bi) = run(false);
        let (rf, bf) = run(true);
        assert_eq!(ri.len(), rf.len());
        for ((fi, a), (ff, b)) in ri.iter().zip(&rf) {
            assert_eq!(fi, ff);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in bi.iter().zip(&bf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn capacity_change_dirties_only_its_component() {
        let (mut net, a, b, c, d) = twin_dumbbells();
        let fab = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let fcd = net
            .start_flow(SimTime::ZERO, big_window_spec(c, d, f64::INFINITY))
            .unwrap();
        net.snapshot_rates();
        let base = net.alloc_stats();
        net.set_link_capacity(LinkId(1), 30e6); // the c↔d link
        net.snapshot_rates();
        let after = net.alloc_stats();
        assert_eq!(after.components_solved, base.components_solved + 1);
        assert!((net.flow_rate(fcd) - 30e6).abs() < 1.0);
        assert!((net.flow_rate(fab) - 100e6).abs() < 1.0);
    }

    #[test]
    fn completion_redistributes_to_sharers() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let short = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 50e6))
            .unwrap();
        let long = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        // Both at 50 MB/s; the short one finishes at t=1 and the survivor
        // takes the whole link.
        let t = net.next_event_time();
        net.advance_to(t);
        assert_eq!(net.flow_state(short), Some(FlowState::Done));
        assert!((net.flow_rate(long) - 100e6).abs() < 1.0);
    }

    // ---- parallel-solver specific tests ----

    /// Drive a multi-region workload under a given solver and collect the
    /// full observable state trajectory.
    fn solver_trajectory(mode: SolverMode) -> Vec<(u64, u64, u64)> {
        let mut t = Topology::new();
        let mut pairs = Vec::new();
        for i in 0..8 {
            let a = t.add_node(Node::host(format!("a{i}")));
            let b = t.add_node(Node::host(format!("b{i}")));
            t.add_link(a, b, 100e6, SimDuration::from_millis(5));
            pairs.push((a, b));
        }
        let mut net = FlowNet::new(t);
        net.set_solver(SolverConfig { mode });
        let mut ids = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            for j in 0..4 {
                let size = 20e6 + (i * 4 + j) as f64 * 3e6;
                ids.push(
                    net.start_flow(SimTime::ZERO, big_window_spec(a, b, size))
                        .unwrap(),
                );
            }
        }
        let mut out = Vec::new();
        for step in 1..=40u64 {
            net.advance_to(SimTime::from_secs_f64(step as f64 * 0.2));
            for &id in &ids {
                out.push((
                    id.0,
                    net.flow_bytes(id).to_bits(),
                    net.flow_rate(id).to_bits(),
                ));
            }
        }
        out
    }

    #[test]
    fn parallel_solver_is_bitwise_identical_to_sequential() {
        let seq = solver_trajectory(SolverMode::Sequential);
        // threshold 0: every pass goes through the worker pool.
        let par = solver_trajectory(SolverMode::Parallel {
            workers: 4,
            threshold: 0,
        });
        let inline = solver_trajectory(SolverMode::Parallel {
            workers: 1,
            threshold: 0,
        });
        assert_eq!(seq, par);
        assert_eq!(seq, inline);
    }

    #[test]
    fn parallel_batches_counter_moves() {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let c = t.add_node(Node::host("c"));
        let d = t.add_node(Node::host("d"));
        t.add_link(a, b, 100e6, SimDuration::ZERO);
        t.add_link(c, d, 100e6, SimDuration::ZERO);
        let mut net = FlowNet::new(t);
        net.set_solver(SolverConfig {
            mode: SolverMode::Parallel {
                workers: 2,
                threshold: 0,
            },
        });
        net.start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        net.start_flow(SimTime::ZERO, big_window_spec(c, d, f64::INFINITY))
            .unwrap();
        net.snapshot_rates();
        assert_eq!(net.alloc_stats().parallel_batches, 1);
        assert_eq!(net.alloc_stats().components_solved, 2);
    }

    #[test]
    fn lazy_bytes_project_without_materializing() {
        // A clean advance must not disturb the anchor: flow_bytes is a
        // pure projection, and repeated queries agree with the closed form.
        let (mut net, a, b) = dumbbell(100e6, 0);
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        net.snapshot_rates();
        for step in 1..=10u64 {
            net.advance_to(SimTime::from_secs_f64(step as f64 * 0.137));
            let expect = 100e6 * (step * 137) as f64 / 1000.0;
            let got = net.flow_bytes(id);
            assert!((got - expect).abs() < 1.0, "step {step}: {got} vs {expect}");
        }
    }
}
