//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock sampler: each
//! bench warms up once, then runs until `measurement_time` or `sample_size`
//! iterations elapse and reports median ns/iter (plus MB/s when a byte
//! throughput is set). No statistics beyond that; good enough to spot
//! order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, &self.cfg, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            cfg: Config::default(),
            throughput: None,
        }
    }
}

/// Group of related benches sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(&full, &self.cfg, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Per-bench iteration driver (`criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, cfg: &Config, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: cfg.measurement_time,
        max_samples: cfg.sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let ns = median.as_nanos();
    match tp {
        Some(Throughput::Bytes(bytes)) if ns > 0 => {
            let mbps = bytes as f64 / median.as_secs_f64() / 1e6;
            println!("bench {name:<44} {ns:>12} ns/iter  {mbps:>10.1} MB/s");
        }
        _ => println!("bench {name:<44} {ns:>12} ns/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
