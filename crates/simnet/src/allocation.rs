//! Max-min fair rate allocation by progressive filling.
//!
//! Flow-level network simulation replaces per-packet dynamics with a
//! bandwidth-sharing model: every active flow crosses a set of *resources*
//! (link directions, NICs, host CPU budgets, disks), each with a finite
//! capacity, and may additionally carry its own rate ceiling (TCP window /
//! loss model). The allocator computes the classic max-min fair allocation:
//! repeatedly find the most constrained resource, freeze the flows it
//! bottlenecks at their fair share, subtract, and continue.
//!
//! `max_min_fair` is a pure function of its inputs, and the result for a
//! connected component of the flow/resource graph does not depend on flows
//! outside that component (they share no finite resource, so they can never
//! bottleneck each other). `FlowNet` leans on both properties for its
//! incremental, component-scoped recompute: as long as a component's
//! problem is assembled canonically — flows ascending by id, resources
//! interned in first-encounter order — solving it in isolation is bitwise
//! identical to solving it as part of the whole network. Keep this function
//! deterministic (no iteration over unordered maps) or the differential
//! suite in `tests/alloc_differential.rs` will catch the drift.

/// One flow's view for the allocator: the resource indices it crosses and
/// its intrinsic rate cap (bytes/sec; `f64::INFINITY` if uncapped).
#[derive(Debug, Clone)]
pub struct AllocFlow {
    pub resources: Vec<usize>,
    pub cap: f64,
}

/// Compute max-min fair rates.
///
/// `capacities[r]` is the capacity of resource `r` in bytes/sec (may be
/// `f64::INFINITY`). Returns one rate per flow. Flows with an empty resource
/// list (e.g. loopback transfers) get exactly their cap.
pub fn max_min_fair(capacities: &[f64], flows: &[AllocFlow]) -> Vec<f64> {
    let nf = flows.len();
    let nr = capacities.len();
    let mut rate = vec![0.0_f64; nf];
    let mut fixed = vec![false; nf];

    // Remaining capacity per resource and number of unfixed flows on it.
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut load: Vec<usize> = vec![0; nr];
    for f in flows {
        for &r in &f.resources {
            load[r] += 1;
        }
    }

    // Flows that cross no constrained resource are only bound by their cap.
    for (i, f) in flows.iter().enumerate() {
        if f.resources.is_empty() {
            rate[i] = f.cap;
            fixed[i] = true;
        }
    }

    let mut unfixed = fixed.iter().filter(|&&x| !x).count();
    while unfixed > 0 {
        // Fair share the tightest resource could give each of its unfixed
        // flows.
        let mut bottleneck_share = f64::INFINITY;
        for r in 0..nr {
            if load[r] > 0 && remaining[r].is_finite() {
                let share = (remaining[r] / load[r] as f64).max(0.0);
                if share < bottleneck_share {
                    bottleneck_share = share;
                }
            }
        }

        // Any unfixed flow whose own cap is at or below the bottleneck share
        // is frozen at its cap first: it cannot use its full fair share, so
        // freezing it releases capacity for others.
        let mut froze_capped = false;
        for i in 0..nf {
            if !fixed[i] && flows[i].cap <= bottleneck_share {
                freeze(
                    i,
                    flows[i].cap,
                    flows,
                    &mut rate,
                    &mut fixed,
                    &mut remaining,
                    &mut load,
                );
                unfixed -= 1;
                froze_capped = true;
            }
        }
        if froze_capped {
            continue;
        }

        if !bottleneck_share.is_finite() {
            // No constrained resource left: everything remaining is bound
            // only by its (infinite or large) cap.
            for i in 0..nf {
                if !fixed[i] {
                    freeze(
                        i,
                        flows[i].cap,
                        flows,
                        &mut rate,
                        &mut fixed,
                        &mut remaining,
                        &mut load,
                    );
                }
            }
            break;
        }

        // Freeze every unfixed flow crossing a bottleneck resource at the
        // bottleneck share.
        let eps = bottleneck_share * 1e-12 + 1e-12;
        let mut froze_any = false;
        for r in 0..nr {
            if load[r] == 0 || !remaining[r].is_finite() {
                continue;
            }
            let share = remaining[r] / load[r] as f64;
            if share <= bottleneck_share + eps {
                // This resource is (one of) the bottleneck(s).
                for i in 0..nf {
                    if !fixed[i] && flows[i].resources.contains(&r) {
                        freeze(
                            i,
                            bottleneck_share,
                            flows,
                            &mut rate,
                            &mut fixed,
                            &mut remaining,
                            &mut load,
                        );
                        unfixed -= 1;
                        froze_any = true;
                    }
                }
            }
        }
        debug_assert!(froze_any, "progressive filling failed to make progress");
        if !froze_any {
            break;
        }
    }

    rate
}

fn freeze(
    i: usize,
    r_rate: f64,
    flows: &[AllocFlow],
    rate: &mut [f64],
    fixed: &mut [bool],
    remaining: &mut [f64],
    load: &mut [usize],
) {
    rate[i] = r_rate;
    fixed[i] = true;
    for &r in &flows[i].resources {
        if remaining[r].is_finite() {
            remaining[r] = (remaining[r] - r_rate).max(0.0);
        }
        load[r] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(resources: &[usize], cap: f64) -> AllocFlow {
        AllocFlow {
            resources: resources.to_vec(),
            cap,
        }
    }

    #[test]
    fn single_flow_gets_link() {
        let rates = max_min_fair(&[100.0], &[flow(&[0], f64::INFINITY)]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn two_flows_share_equally() {
        let rates = max_min_fair(
            &[100.0],
            &[flow(&[0], f64::INFINITY), flow(&[0], f64::INFINITY)],
        );
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn capped_flow_releases_capacity() {
        let rates = max_min_fair(&[100.0], &[flow(&[0], 10.0), flow(&[0], f64::INFINITY)]);
        assert_eq!(rates, vec![10.0, 90.0]);
    }

    #[test]
    fn cap_equal_to_share_is_honoured() {
        let rates = max_min_fair(&[100.0], &[flow(&[0], 50.0), flow(&[0], 50.0)]);
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // Flow 0 crosses both links; flow 1 only the second, wider one.
        // Classic max-min: f0 limited by resource 0 at 30; f1 then gets 70.
        let rates = max_min_fair(
            &[30.0, 100.0],
            &[flow(&[0, 1], f64::INFINITY), flow(&[1], f64::INFINITY)],
        );
        assert_eq!(rates, vec![30.0, 70.0]);
    }

    #[test]
    fn three_flows_two_resources() {
        // r0 = 60 shared by f0,f1; r1 = 100 shared by f1,f2.
        // f0,f1 get 30 each from r0; f2 gets remaining 70 of r1.
        let rates = max_min_fair(
            &[60.0, 100.0],
            &[
                flow(&[0], f64::INFINITY),
                flow(&[0, 1], f64::INFINITY),
                flow(&[1], f64::INFINITY),
            ],
        );
        assert_eq!(rates, vec![30.0, 30.0, 70.0]);
    }

    #[test]
    fn no_resources_means_cap() {
        let rates = max_min_fair(&[], &[flow(&[], 42.0)]);
        assert_eq!(rates, vec![42.0]);
    }

    #[test]
    fn infinite_resource_ignored() {
        let rates = max_min_fair(
            &[f64::INFINITY, 80.0],
            &[flow(&[0, 1], f64::INFINITY), flow(&[0], 5.0)],
        );
        assert_eq!(rates, vec![80.0, 5.0]);
    }

    #[test]
    fn zero_capacity_resource_stalls_flows() {
        let rates = max_min_fair(&[0.0], &[flow(&[0], f64::INFINITY)]);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    fn empty_input() {
        let rates = max_min_fair(&[10.0], &[]);
        assert!(rates.is_empty());
    }

    #[test]
    fn conservation_never_violated() {
        // Random-ish deterministic topology: verify sum of rates through any
        // resource never exceeds its capacity.
        let caps = [100.0, 55.0, 200.0, 10.0];
        let flows = [
            flow(&[0, 1], f64::INFINITY),
            flow(&[1, 2], 40.0),
            flow(&[0, 2, 3], f64::INFINITY),
            flow(&[2], f64::INFINITY),
            flow(&[3], 3.0),
        ];
        let rates = max_min_fair(&caps, &flows);
        for (r, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.contains(&r))
                .map(|(_, &rate)| rate)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9),
                "resource {r} overcommitted: {used} > {cap}"
            );
        }
        // Caps respected.
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.cap * (1.0 + 1e-9) + 1e-9);
        }
    }
}
