//! Reliability soak: randomized fault schedules against the request
//! manager's retry/backoff + circuit-breaker + restart-marker layer.
//!
//! `cargo run --release -p esg-bench --bin soak_faults [seed] [requests] [mode]`
//!
//! Thin shim since the scenario-lab migration: the fault schedule
//! generator, the request workload and the completion gates live in
//! `crates/lab/scenarios/soak_faults.json` and the `soak_faults`
//! executor; this bin loads that spec and applies the legacy CLI
//! overrides. `mode` filters the fault schedule: `all` (default),
//! `node`, `ns` or `none`. Exits non-zero if any gate fails.

use esg_lab::json::Json;
use esg_lab::runner::{run_and_report, RunOptions};
use esg_lab::spec::ScenarioSpec;

fn main() {
    let mut spec = ScenarioSpec::load("soak_faults").expect("builtin scenario parses");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(seed) = args.first().and_then(|s| s.parse().ok()) {
        spec.seeds = vec![seed];
    }
    if let Some(n) = args.get(1).and_then(|s| s.parse::<i128>().ok()) {
        spec.params.0.push(("requests".into(), Json::Int(n)));
    }
    if let Some(mode) = args.get(2) {
        spec.params.0.push(("mode".into(), Json::str(mode)));
    }

    let opts = RunOptions {
        fresh: true,
        ..RunOptions::default()
    };
    match run_and_report(&spec, &opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("soak_faults: {e}");
            std::process::exit(1);
        }
    }
}
