//! Block-level data integrity: digests at rest and corruption modeling.
//!
//! The simulator moves *flows*, not bytes, so file content is symbolic: a
//! logical file is identified by a content key (`collection/name`) and
//! every 1 MiB block of it has a well-defined pristine digest derived from
//! that key. A corruption event replaces a block's digest with a
//! nonce-salted "flipped" digest — detectable (it differs from the
//! pristine digest) and attributable (deterministic per nonce), exactly
//! the properties checksum verification gives a real transfer pipeline.
//!
//! [`ObjectStore`] records which blocks of which files are corrupt at one
//! site, with the sim time the corruption landed, so a verifier can ask
//! "was this block already bad when that transfer read it?" — corruption
//! that arrives *after* a segment was served must not taint it.

use esg_gsi::{hex, Sha256};
use esg_simnet::SimTime;
use std::collections::HashMap;

/// Digest block size: 1 MiB, matching GridFTP's typical EBLOCK sizing.
pub const BLOCK_SIZE: u64 = 1 << 20;

/// Number of digest blocks for a file of `size` bytes.
pub fn block_count(size: u64) -> u64 {
    size.div_ceil(BLOCK_SIZE)
}

/// Byte span `[start, end)` of block `idx` within a file of `size` bytes.
pub fn block_span(size: u64, idx: u64) -> (u64, u64) {
    let start = idx * BLOCK_SIZE;
    (start, (start + BLOCK_SIZE).min(size))
}

/// Indices of the blocks overlapping the byte range `[start, end)`.
pub fn blocks_overlapping(start: u64, end: u64) -> std::ops::Range<u64> {
    if start >= end {
        return 0..0;
    }
    (start / BLOCK_SIZE)..end.div_ceil(BLOCK_SIZE)
}

/// The digest of pristine block `idx` of the file with content key `key`.
pub fn pristine_block_digest(key: &str, idx: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"esg-block\0");
    h.update(key.as_bytes());
    h.update(&idx.to_le_bytes());
    h.finalize()
}

/// The digest of block `idx` after a corruption event salted by `nonce`.
/// Distinct from the pristine digest for every nonce, and distinct across
/// nonces, so repeated corruption of the same block stays observable.
pub fn corrupt_block_digest(key: &str, idx: u64, nonce: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"esg-flip\0");
    h.update(key.as_bytes());
    h.update(&idx.to_le_bytes());
    h.update(&nonce.to_le_bytes());
    h.finalize()
}

/// Whole-file digest (hex) over a sequence of per-block digests — what the
/// replica catalog pins for a logical file and what a receiver recomputes.
pub fn file_digest_hex_of(blocks: &[[u8; 32]]) -> String {
    let mut h = Sha256::new();
    for b in blocks {
        h.update(b);
    }
    hex(&h.finalize())
}

/// Whole-file digest (hex) of the pristine content for `key`/`size`.
pub fn file_digest_hex(key: &str, size: u64) -> String {
    let blocks: Vec<[u8; 32]> = (0..block_count(size))
        .map(|i| pristine_block_digest(key, i))
        .collect();
    file_digest_hex_of(&blocks)
}

/// Deterministic 64-bit mix used to sample corruption events (which block
/// a tape error hits, whether a wire fault flips a given block). FNV-1a
/// over the key bytes, then the two parameters, then a splitmix finisher;
/// seed-stable and independent of any RNG stream.
pub fn stable_hash(key: &str, a: u64, b: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key
        .as_bytes()
        .iter()
        .copied()
        .chain(a.to_le_bytes())
        .chain(b.to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Per-site record of silently corrupted blocks: content key → block index
/// → (nonce, time the corruption landed).
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    flips: HashMap<String, HashMap<u64, (u64, SimTime)>>,
}

impl ObjectStore {
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Record a corruption of `block` of `key` at time `at`. The first
    /// flip of a block wins: re-corrupting an already-bad block does not
    /// rewrite history.
    pub fn flip(&mut self, key: &str, block: u64, nonce: u64, at: SimTime) {
        self.flips
            .entry(key.to_string())
            .or_default()
            .entry(block)
            .or_insert((nonce, at));
    }

    /// Nonce of the corruption affecting `block` of `key`, if it landed at
    /// or before `by`.
    pub fn flip_at(&self, key: &str, block: u64, by: SimTime) -> Option<u64> {
        self.flips
            .get(key)?
            .get(&block)
            .filter(|&&(_, at)| at <= by)
            .map(|&(nonce, _)| nonce)
    }

    /// All corruptions of `key` landed at or before `by`, as sorted
    /// `(block, nonce)` pairs.
    pub fn flips_at(&self, key: &str, by: SimTime) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .flips
            .get(key)
            .map(|m| {
                m.iter()
                    .filter(|&(_, &(_, at))| at <= by)
                    .map(|(&b, &(nonce, _))| (b, nonce))
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Sorted indices of currently-corrupt blocks of `key`.
    pub fn corrupt_blocks(&self, key: &str) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .flips
            .get(key)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Whether the store holds any corruption at all.
    pub fn is_clean(&self) -> bool {
        self.flips.values().all(|m| m.is_empty())
    }

    /// Drop every recorded corruption (the site restored its copies from
    /// an authoritative source during re-verification).
    pub fn scrub(&mut self) {
        self.flips.clear();
    }

    /// Drop corruption records for one file.
    pub fn scrub_file(&mut self, key: &str) {
        self.flips.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_gsi::sha256;

    #[test]
    fn block_geometry() {
        assert_eq!(block_count(0), 0);
        assert_eq!(block_count(1), 1);
        assert_eq!(block_count(BLOCK_SIZE), 1);
        assert_eq!(block_count(BLOCK_SIZE + 1), 2);
        assert_eq!(
            block_span(3 * BLOCK_SIZE + 7, 3),
            (3 * BLOCK_SIZE, 3 * BLOCK_SIZE + 7)
        );
        assert_eq!(block_span(3 * BLOCK_SIZE, 1), (BLOCK_SIZE, 2 * BLOCK_SIZE));
        assert_eq!(blocks_overlapping(0, 0), 0..0);
        assert_eq!(blocks_overlapping(0, 1), 0..1);
        assert_eq!(blocks_overlapping(BLOCK_SIZE - 1, BLOCK_SIZE + 1), 0..2);
    }

    #[test]
    fn digests_distinguish_content_and_corruption() {
        let p = pristine_block_digest("c/f.nc", 0);
        assert_eq!(p, pristine_block_digest("c/f.nc", 0));
        assert_ne!(p, pristine_block_digest("c/f.nc", 1));
        assert_ne!(p, pristine_block_digest("c/g.nc", 0));
        let c1 = corrupt_block_digest("c/f.nc", 0, 1);
        let c2 = corrupt_block_digest("c/f.nc", 0, 2);
        assert_ne!(p, c1);
        assert_ne!(c1, c2);
    }

    #[test]
    fn file_digest_matches_block_concatenation() {
        let key = "co2/jan.nc";
        let size = 2 * BLOCK_SIZE + 5;
        let blocks: Vec<[u8; 32]> = (0..block_count(size))
            .map(|i| pristine_block_digest(key, i))
            .collect();
        assert_eq!(file_digest_hex(key, size), file_digest_hex_of(&blocks));
        // Flipping one block changes the file digest.
        let mut bad = blocks.clone();
        bad[1] = corrupt_block_digest(key, 1, 99);
        assert_ne!(file_digest_hex_of(&bad), file_digest_hex_of(&blocks));
        // Empty file digest is the digest of nothing, stable.
        assert_eq!(file_digest_hex("x", 0), hex(&sha256(b"")));
    }

    #[test]
    fn stable_hash_is_stable_and_spreads() {
        assert_eq!(stable_hash("k", 1, 2), stable_hash("k", 1, 2));
        assert_ne!(stable_hash("k", 1, 2), stable_hash("k", 2, 1));
        assert_ne!(stable_hash("k", 1, 2), stable_hash("j", 1, 2));
    }

    #[test]
    fn object_store_time_gating() {
        let mut s = ObjectStore::new();
        let t5 = SimTime::from_secs(5);
        s.flip("f", 3, 42, t5);
        assert_eq!(s.flip_at("f", 3, SimTime::from_secs(4)), None);
        assert_eq!(s.flip_at("f", 3, t5), Some(42));
        assert_eq!(s.flip_at("f", 3, SimTime::from_secs(9)), Some(42));
        assert_eq!(s.flip_at("f", 0, SimTime::from_secs(9)), None);
        assert_eq!(s.flip_at("g", 3, SimTime::from_secs(9)), None);
        // First flip wins.
        s.flip("f", 3, 77, SimTime::from_secs(1));
        assert_eq!(s.flip_at("f", 3, SimTime::from_secs(9)), Some(42));
        s.flip("f", 1, 7, SimTime::from_secs(6));
        assert_eq!(
            s.flips_at("f", SimTime::from_secs(9)),
            vec![(1, 7), (3, 42)]
        );
        assert_eq!(s.flips_at("f", t5), vec![(3, 42)]);
        assert_eq!(s.corrupt_blocks("f"), vec![1, 3]);
        assert!(!s.is_clean());
        s.scrub_file("f");
        assert!(s.is_clean());
        s.flip("f", 0, 1, t5);
        s.scrub();
        assert!(s.is_clean());
    }
}
