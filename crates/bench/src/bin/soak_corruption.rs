//! Integrity soak: randomized silent-corruption schedules against the
//! request manager's block-digest verification + ERET repair layer.
//!
//! `cargo run --release -p esg-bench --bin soak_corruption [seed] [requests] [trace_path]`
//!
//! Thin shim since the scenario-lab migration: the corruption schedule
//! (at-rest flips, tape-read errors, wire-corruption windows), the
//! request workload, the integrity gates and the exported ULM trace are
//! declared in `crates/lab/scenarios/soak_corruption.json`; this bin
//! loads that spec and applies the legacy CLI overrides (byte-identical
//! trace to the pre-migration bin). Exits non-zero if any gate fails.

use esg_lab::json::Json;
use esg_lab::runner::{run_and_report, RunOptions};
use esg_lab::spec::ScenarioSpec;

fn main() {
    let mut spec = ScenarioSpec::load("soak_corruption").expect("builtin scenario parses");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(seed) = args.first().and_then(|s| s.parse().ok()) {
        spec.seeds = vec![seed];
    }
    if let Some(n) = args.get(1).and_then(|s| s.parse::<i128>().ok()) {
        spec.params.0.push(("requests".into(), Json::Int(n)));
    }
    if let Some(path) = args.get(2) {
        spec.params.0.push(("trace_path".into(), Json::str(path)));
    }

    let opts = RunOptions {
        fresh: true,
        ..RunOptions::default()
    };
    match run_and_report(&spec, &opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("soak_corruption: {e}");
            std::process::exit(1);
        }
    }
}
