//! The scenario-lab runner CLI.
//!
//! ```text
//! cargo run --release -p esg-lab --bin lab -- [options] <scenario>...
//!
//!   <scenario>          builtin name (see --list) or path to a spec file
//!   --journal-dir DIR   journal + analysis-table directory (default lab_out)
//!   --fresh             ignore existing journals, rerun every trial
//!   --max-trials N      execute at most N new trials per scenario, then stop
//!   --quiet             suppress per-trial progress lines
//!   --list              print builtin scenario names and exit
//! ```
//!
//! Runs each scenario's variant × seed × rep matrix (resuming from its
//! journal), prints the deterministic analysis table and the gate
//! report, and exits non-zero if any scenario is left incomplete or any
//! gate does not pass (gate errors count as failures).

use esg_lab::runner::{run_and_report, RunOptions};
use esg_lab::spec::{builtin_names, ScenarioSpec};
use std::path::PathBuf;

fn main() {
    let mut opts = RunOptions::default();
    let mut scenarios: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--journal-dir" => match args.next() {
                Some(d) => opts.journal_dir = PathBuf::from(d),
                None => die("--journal-dir needs a directory argument"),
            },
            "--max-trials" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.max_trials = Some(n),
                None => die("--max-trials needs an integer argument"),
            },
            "--fresh" => opts.fresh = true,
            "--quiet" => opts.quiet = true,
            "--list" => {
                for name in builtin_names() {
                    let spec = ScenarioSpec::load(name).expect("builtin parses");
                    println!("{name:<24} {}", spec.description);
                }
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown option {other}")),
            _ => scenarios.push(a),
        }
    }
    if scenarios.is_empty() {
        die("usage: lab [options] <scenario>...  (--list shows builtins)");
    }

    let mut failed = false;
    for name in &scenarios {
        let spec = match ScenarioSpec::load(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lab: {e}");
                failed = true;
                continue;
            }
        };
        match run_and_report(&spec, &opts) {
            Ok(true) => {}
            Ok(false) => failed = true,
            Err(e) => {
                eprintln!("lab: {}: {e}", spec.name);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("lab: {msg}");
    std::process::exit(2)
}
