//! Offline stand-in for the `proptest` crate.
//!
//! The container builds without registry access, so this crate vendors the
//! slice of proptest the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, numeric-range and
//! tuple strategies, `prop::collection::vec`, `any::<T>()`, and string
//! strategies written as regex-like literals (`"[a-z]{1,6}"`, `"\\PC{0,40}"`).
//!
//! Differences from upstream: no shrinking (failures report the raw inputs),
//! and each test runs a fixed, deterministic case count seeded from the test
//! name (override with `PROPTEST_CASES`). That keeps runs reproducible,
//! which matters more here than shrink quality.

use std::fmt::Debug;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values for one property-test input.
pub trait Strategy {
    type Value: Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as u128).wrapping_sub(s as u128).wrapping_add(1);
                (s as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64)) as f32
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// String strategies from regex-like literals
// ---------------------------------------------------------------------------

/// Pool of printable chars used for `\PC`, deliberately mixing ASCII with
/// multi-byte codepoints (combining-adjacent letters, CJK, symbols) so
/// robustness properties see non-trivial Unicode, like upstream proptest's
/// regex strategies do.
const PRINTABLE_EXOTIC: &[char] = &[
    'é', 'ß', 'Ω', 'λ', '中', '文', 'あ', '√', '€', '♦', '꥟', 'Ḽ', 'ё', '٭', 'ᚠ', '𝔊',
];

fn gen_printable(rng: &mut TestRng) -> char {
    // 3/4 ASCII printable, 1/4 exotic.
    if !rng.next_u64().is_multiple_of(4) {
        char::from(rng.below(0x20, 0x7e) as u8)
    } else {
        PRINTABLE_EXOTIC[rng.below(0, PRINTABLE_EXOTIC.len() - 1)]
    }
}

/// Parsed form of the supported pattern subset:
/// one atom — a `[...]` class or `\PC` — followed by `{m,n}` / `{n}`.
enum Atom {
    Class(Vec<(char, char)>),
    Printable,
}

struct PatternStrategy {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> PatternStrategy {
    let chars: Vec<char> = pat.chars().collect();
    let mut i;
    let atom = if chars.first() == Some(&'\\')
        && chars.get(1) == Some(&'P')
        && chars.get(2) == Some(&'C')
    {
        i = 3;
        Atom::Printable
    } else if chars.first() == Some(&'[') {
        let mut ranges = Vec::new();
        i = 1;
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            // `a-z` range when '-' sits between two class members.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((c, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        assert!(
            chars.get(i) == Some(&']'),
            "unterminated char class in `{pat}`"
        );
        i += 1;
        assert!(!ranges.is_empty(), "empty char class in `{pat}`");
        Atom::Class(ranges)
    } else {
        panic!("unsupported pattern strategy `{pat}`: expected `[class]{{m,n}}` or `\\PC{{m,n}}`");
    };

    // Repetition: `{m,n}` or `{n}`; bare atom means exactly one.
    let rest: String = chars[i..].iter().collect();
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition `{rest}` in `{pat}`"));
        match inner.split_once(',') {
            Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
            None => {
                let n: usize = inner.trim().parse().unwrap();
                (n, n)
            }
        }
    };
    PatternStrategy { atom, min, max }
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(self.min, self.max);
        (0..len)
            .map(|_| match &self.atom {
                Atom::Printable => gen_printable(rng),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(0, ranges.len() - 1)];
                    char::from_u32(rng.below(lo as usize, hi as usize) as u32)
                        .expect("class range produced invalid char")
                }
            })
            .collect()
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        parse_pattern(self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy (`proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// collection strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for collection strategies (inclusive min,
    /// exclusive max — matching proptest's `SizeRange` from `Range<usize>`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.min, self.size.max_excl - 1);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out.
    Reject,
    /// `prop_assert!`-family failure with rendered message.
    Fail(String),
}

pub enum CaseResult {
    Pass,
    Reject,
    Fail(String),
}

fn default_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

/// Drive `f` over `default_cases()` generated cases, deterministically
/// seeded from the test name. Panics (failing the enclosing `#[test]`) on
/// the first failing case, reporting the case number for reproduction.
pub fn run_cases<F: FnMut(&mut TestRng) -> CaseResult>(name: &str, mut f: F) {
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = TestRng::seed_from_u64(seed);
    let target = default_cases();
    let mut passed = 0usize;
    let mut rejected = 0usize;
    let mut case_no = 0usize;
    while passed < target {
        case_no += 1;
        match f(&mut rng) {
            CaseResult::Pass => passed += 1,
            CaseResult::Reject => {
                rejected += 1;
                assert!(
                    rejected < target * 20,
                    "proptest `{name}`: too many rejected cases ({rejected}); \
                     loosen prop_assume! conditions"
                );
            }
            CaseResult::Fail(msg) => {
                panic!("proptest `{name}` failed at case #{case_no} (seed {seed:#x}):\n{msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                $crate::run_cases(stringify!($name), |rng| {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, rng);
                    // Render inputs up front: the body may consume them.
                    let inputs = format!(concat!("(", $(stringify!($arg), " = {:?}, ",)+ ")"), $(&$arg),+);
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => $crate::CaseResult::Pass,
                        Err($crate::TestCaseError::Reject) => $crate::CaseResult::Reject,
                        Err($crate::TestCaseError::Fail(msg)) => $crate::CaseResult::Fail(
                            format!("{}\ninputs: {}", msg, inputs),
                        ),
                    }
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+),
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u64..100, 1u64..10), 0..20)) {
            prop_assert!(v.len() < 20);
            for &(a, b) in &v {
                prop_assert!(a < 100 && (1..10).contains(&b));
            }
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(any::<u8>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn class_pattern_strategy(s in "[a-cX_.-]{2,6}") {
            prop_assert!((2..=6).contains(&s.chars().count()), "{:?}", s);
            for c in s.chars() {
                prop_assert!("abcX_.-".contains(c), "unexpected {:?}", c);
            }
        }

        #[test]
        fn printable_pattern_strategy(s in "\\PC{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            for c in s.chars() {
                prop_assert!(!c.is_control());
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert!(n.is_multiple_of(2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = crate::TestRng::seed_from_u64(99);
            let strat = crate::collection::vec(0u64..1000, 1..10);
            (0..5).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", |_rng| {
            crate::CaseResult::Fail("boom".into())
        });
    }
}
