//! The dynamic transfer monitor (Figure 4).
//!
//! Submits a three-file request (one file tape-resident behind the HRM)
//! and prints the monitor screen at several instants: progress bars on
//! top, replica selections in the middle, NetLogger messages at the
//! bottom — the same three panes as the paper's Figure 4.
//!
//! Run with: `cargo run --release --example transfer_monitor`

use esg::core::esg_testbed;
use esg::reqman::{render_monitor, submit_request};
use esg::simnet::{SimDuration, SimTime};

fn main() {
    let mut tb = esg_testbed(4);
    // Dataset with three chunks; disk replicas at LLNL + the tape site.
    tb.publish_dataset("pcm_b06.61", 24, 8, 25_000_000, &[0, 1]);
    tb.start_nws(SimDuration::from_secs(20));
    tb.sim.run_until(SimTime::from_secs(80));

    let collection = tb.sim.world.metadata.collection_of("pcm_b06.61").unwrap();
    let files: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files("pcm_b06.61")
        .unwrap()
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();

    // Force one file to be tape-only so the staging pane shows.
    // (Remove its disk replica at LLNL; it remains at the HPSS site.)
    let tape_file = files[2].1.clone();
    tb.sim
        .world
        .rm
        .catalog
        .remove_file_from_location(&collection, "pcmdi.llnl.gov", &tape_file)
        .unwrap();

    let client = tb.client;
    let id = submit_request(&mut tb.sim, client, files, |s, o| s.world.outcomes.push(o));

    // Snapshot the monitor at a few instants, like a refreshing screen.
    for secs in [82.0, 95.0, 130.0, 220.0] {
        tb.sim.run_until(SimTime::from_secs_f64(secs));
        match tb.sim.world.rm.status(id) {
            Some(files) => {
                let screen = render_monitor(tb.sim.now(), &files, &tb.sim.world.rm.log);
                println!("{screen}");
                println!("{}", "=".repeat(72));
            }
            None => break, // finished early
        }
    }

    tb.sim.run_until(SimTime::from_secs(4000));
    let outcome = tb.sim.world.outcomes.first().expect("request completes");
    println!(
        "\nrequest complete at t={:.1}s — {} files, {:.0} MB total",
        outcome.finished.as_secs_f64(),
        outcome.files.len(),
        outcome.total_bytes as f64 / 1e6
    );
    for f in &outcome.files {
        println!(
            "  {:<34} from {}",
            f.name,
            f.replica_host.as_deref().unwrap_or("?")
        );
    }
}
