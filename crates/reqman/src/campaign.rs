//! Replication campaigns: fault-tolerant bulk dataset→site copies.
//!
//! A [`CampaignSpec`] names a collection and a target host; the
//! orchestrator decomposes the copy into batched rounds, drives each round
//! through the ordinary request pipeline ([`submit_request_for_tenant`])
//! so campaign pulls share the scheduler's admission caps, the host
//! ledger, the circuit breakers and the integrity layer with interactive
//! traffic, and journals per-file progress to a durable checkpoint so an
//! interrupted campaign resumes without re-transferring any verified
//! bytes.
//!
//! ## Checkpoint journal
//!
//! Line-oriented text, one fact per line, percent-escaped fields:
//!
//! ```text
//! campaign v1 spec=<sha256> name=<enc> collection=<enc> target=<enc> files=<n>
//! settled file=<enc> size=<u64> digest=<hex|-> status=done|failed round=<k>
//! marker file=<enc> offset=<u64> round=<k>
//! resume skipped=<k> bytes=<n>
//! complete manifest=<sha256>
//! ```
//!
//! The same torn-tail discipline as the lab journal applies: a crash can
//! only tear the final line, so the reader drops an unterminated tail and
//! the writer truncates it before appending. A header whose `spec` hash
//! does not match the live spec (the collection changed, a file was
//! resized) invalidates the whole checkpoint — the campaign restarts
//! fresh rather than trusting stale facts. Only `status=done` entries are
//! skipped on resume; `failed` entries are retried. Resume granularity is
//! the settled file: `marker` lines record mid-transfer progress for
//! forensics, but a file interrupted mid-flight restarts from its banked
//! bytes inside the RM's own restart-marker machinery, not from the
//! journal.
//!
//! ## Equivalence
//!
//! The campaign's `manifest_sha256` is a pure function of the delivered
//! file set (sorted name/size/digest lines), so an interrupted-and-resumed
//! campaign is checked bit-for-bit against an uninterrupted one by
//! comparing manifests; `bytes_skipped + bytes_transferred == total`
//! accounts every byte to exactly one of the two runs.

use crate::manager::{cancel_request, submit_request_for_tenant, RequestOutcome, RmWorld};
use esg_gridftp::GridUrl;
use esg_netlogger::{FlightRecorder, LogEvent, Phase, SpanId, TraceCtx};
use esg_simnet::{profile, NodeId, Sim, SimDuration, SimTime};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// What to replicate, where to, and how.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name — also the fair-share tenant its rounds bill to.
    pub name: String,
    /// Logical collection to replicate (every file of it).
    pub collection: String,
    /// Destination host (must be registered with the RM).
    pub target_host: String,
    /// Replica-catalog location name registered at the target.
    pub location_name: String,
    /// Files per round. Each round is one multi-file request, so the
    /// scheduler's per-request admission cap pipelines within a round and
    /// the checkpoint settles at round grain.
    pub batch_files: usize,
    /// Checkpoint journal path; `None` disables durability.
    pub checkpoint: Option<PathBuf>,
    /// How often the marker tick snapshots mid-transfer progress into the
    /// journal. Zero disables markers (settled lines still written).
    pub checkpoint_every: SimDuration,
    /// Metrics flight-recorder tape path; `None` disables recording. When
    /// set, the campaign appends one delta-encoded [`FlightRecorder`]
    /// JSONL snapshot of the RM's registry at start, every
    /// [`recorder_every`](CampaignSpec::recorder_every), and at completion
    /// — a byte-stable record of how the run's metrics evolved.
    pub recorder: Option<PathBuf>,
    /// Sim-time cadence of flight-recorder snapshots. Zero disables the
    /// periodic tick (the start/complete snapshots still land).
    pub recorder_every: SimDuration,
}

impl CampaignSpec {
    pub fn new(
        name: impl Into<String>,
        collection: impl Into<String>,
        target_host: impl Into<String>,
    ) -> CampaignSpec {
        let name = name.into();
        CampaignSpec {
            location_name: format!("{name}-replica"),
            name,
            collection: collection.into(),
            target_host: target_host.into(),
            batch_files: 4,
            checkpoint: None,
            checkpoint_every: SimDuration::from_secs(30),
            recorder: None,
            recorder_every: SimDuration::from_secs(10),
        }
    }
}

/// Final accounting delivered to the campaign's completion callback.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    pub id: u64,
    pub name: String,
    pub collection: String,
    pub target_host: String,
    /// Files in the collection when the campaign started.
    pub files_total: usize,
    /// Files transferred (and verified) by *this* run.
    pub files_delivered: usize,
    /// Files that exhausted their retries this run.
    pub files_failed: usize,
    /// Files skipped because the checkpoint proved them already delivered.
    pub files_skipped: usize,
    /// Bytes moved by this run.
    pub bytes_transferred: u64,
    /// Bytes *not* moved because the checkpoint vouched for them.
    pub bytes_skipped: u64,
    /// Rounds driven this run.
    pub rounds: usize,
    /// A valid checkpoint was loaded at start.
    pub resumed: bool,
    pub cancelled: bool,
    /// sha256 over the sorted delivered-file manifest — the
    /// resume-equivalence witness.
    pub manifest_sha256: String,
    pub started: SimTime,
    pub finished: SimTime,
}

/// One settled fact about a file, in memory and in the journal.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Settled {
    pub size: u64,
    pub digest: Option<String>,
    pub done: bool,
    pub round: u64,
}

pub(crate) struct CampaignState {
    pub spec: CampaignSpec,
    pub id: u64,
    target_node: NodeId,
    files_total: usize,
    rounds: Vec<Vec<String>>,
    round_idx: usize,
    pub current_request: Option<u64>,
    /// Every settled file (done or failed), by name. `done` entries are
    /// exactly the checkpoint-skippable set.
    settled: BTreeMap<String, Settled>,
    bytes_transferred: u64,
    bytes_skipped: u64,
    files_skipped: usize,
    resumed: bool,
    cancelled: bool,
    finished: bool,
    started: SimTime,
    span: SpanId,
    /// Last journaled marker offset per in-flight file.
    last_marker: HashMap<String, u64>,
    /// Persistent journal handle (indexed pipeline): torn-tail healing
    /// runs once at open instead of on every append. `None` under the
    /// legacy flag or when no checkpoint is configured.
    writer: Option<JournalWriter>,
    /// Delta state of the metrics flight recorder when a tape is
    /// configured.
    recorder: Option<FlightRecorder>,
}

impl CampaignState {
    /// Append journal lines: through the persistent writer when one is
    /// open, else the legacy re-read-and-heal [`append_lines`] path.
    /// Both produce byte-identical journals (the campaign is the only
    /// writer mid-run). Returns durability; `false` with no checkpoint.
    fn journal(&mut self, lines: &[String]) -> bool {
        match (&mut self.writer, &self.spec.checkpoint) {
            (Some(w), _) => w.append(lines).is_ok(),
            (None, Some(path)) => append_lines(path, lines).is_ok(),
            (None, None) => false,
        }
    }
}

pub(crate) type SharedCampaign = Rc<RefCell<CampaignState>>;
type CampaignDone<W> = Rc<RefCell<Option<Box<dyn FnOnce(&mut Sim<W>, CampaignOutcome)>>>>;

// ---------------------------------------------------------------------------
// Journal encoding

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Percent-escape the characters that would break line/field framing.
fn enc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3D"),
            '\n' => out.push_str("%0A"),
            c => out.push(c),
        }
    }
    out
}

fn dec(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// An open journal whose torn tail was healed once, at open; appends are
/// then O(lines written). The per-call [`append_lines`] path below re-reads
/// the whole journal on every append — O(journal) per settled batch, the
/// cost the `rm_scaling` bench charges to the legacy arm.
struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    fn open(path: &Path) -> std::io::Result<JournalWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let keep = match buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => 0,
        };
        if keep != buf.len() {
            file.set_len(keep as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter { file })
    }

    fn append(&mut self, lines: &[String]) -> std::io::Result<()> {
        use std::io::Write;
        let _j = profile::scope(profile::JOURNAL);
        profile::count("journal.lines", lines.len() as u64);
        for l in lines {
            writeln!(self.file, "{l}")?;
        }
        self.file.flush()
    }
}

/// Append `lines` to the journal, first truncating any torn tail left by
/// a crash mid-write (mirrors the lab journal's healing discipline).
fn append_lines(path: &Path, lines: &[String]) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let _j = profile::scope(profile::JOURNAL);
    profile::count("journal.lines", lines.len() as u64);
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let keep = match buf.iter().rposition(|&b| b == b'\n') {
        Some(i) => i + 1,
        None => 0,
    };
    if keep != buf.len() {
        f.set_len(keep as u64)?;
    }
    f.seek(SeekFrom::End(0))?;
    for l in lines {
        writeln!(f, "{l}")?;
    }
    f.flush()
}

/// Parsed checkpoint: the settled map, whether the journal already holds a
/// `complete` line.
struct Checkpoint {
    settled: BTreeMap<String, Settled>,
}

/// Load a checkpoint if it exists and its header vouches for `spec_sha`.
/// A torn final line is dropped; a missing, unreadable, or mismatched
/// journal yields `None` (fresh start).
fn load_checkpoint(path: &Path, spec_sha: &str) -> Option<Checkpoint> {
    let raw = std::fs::read_to_string(path).ok()?;
    if raw.is_empty() {
        return None;
    }
    // Only complete lines are facts: drop an unterminated tail.
    let upto = raw.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let mut lines = raw[..upto].lines();
    let header = lines.next()?;
    if !header.starts_with("campaign v1 ") {
        return None;
    }
    let fields = parse_fields(header, "campaign")?;
    if fields.get("spec").map(String::as_str) != Some(spec_sha) {
        return None;
    }
    let mut settled = BTreeMap::new();
    for line in lines {
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("settled") => {
                let Some(f) = parse_fields(line, "settled") else {
                    continue;
                };
                let (Some(name), Some(size)) = (f.get("file"), f.get("size")) else {
                    continue;
                };
                let Ok(size) = size.parse::<u64>() else {
                    continue;
                };
                let digest = f.get("digest").filter(|d| d.as_str() != "-").cloned();
                let done = f.get("status").map(String::as_str) == Some("done");
                let round = f.get("round").and_then(|r| r.parse().ok()).unwrap_or(0u64);
                settled.insert(
                    dec(name),
                    Settled {
                        size,
                        digest,
                        done,
                        round,
                    },
                );
            }
            // Markers, resume notes and the complete line are forensic
            // records, not resume inputs.
            Some("marker") | Some("resume") | Some("complete") => {}
            _ => {}
        }
    }
    Some(Checkpoint { settled })
}

/// Split a `kind k=v k=v ...` journal line into its fields.
fn parse_fields(line: &str, kind: &str) -> Option<HashMap<String, String>> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some(kind) {
        return None;
    }
    let mut out = HashMap::new();
    for t in toks {
        if let Some((k, v)) = t.split_once('=') {
            out.insert(k.to_string(), v.to_string());
        }
    }
    Some(out)
}

fn settled_line(name: &str, s: &Settled) -> String {
    format!(
        "settled file={} size={} digest={} status={} round={}",
        enc(name),
        s.size,
        s.digest.as_deref().unwrap_or("-"),
        if s.done { "done" } else { "failed" },
        s.round,
    )
}

/// sha256 over the canonical spec identity: name, collection, target,
/// location, and the sorted file list with sizes. Tuning knobs (batch
/// size, tenant weights, marker period) are deliberately excluded so a
/// resume may retune without forfeiting the checkpoint.
fn spec_sha(spec: &CampaignSpec, files: &[(String, u64)]) -> String {
    let mut s = format!(
        "campaign-spec v1\nname={}\ncollection={}\ntarget={}\nlocation={}\n",
        enc(&spec.name),
        enc(&spec.collection),
        enc(&spec.target_host),
        enc(&spec.location_name),
    );
    for (name, size) in files {
        s.push_str(&format!("file={} size={size}\n", enc(name)));
    }
    hex(&esg_gsi::sha256(s.as_bytes()))
}

/// The resume-equivalence witness: sha256 over the sorted delivered set.
fn manifest_sha(settled: &BTreeMap<String, Settled>) -> String {
    let mut s = String::new();
    for (name, e) in settled.iter().filter(|(_, e)| e.done) {
        s.push_str(&format!(
            "file={} size={} digest={}\n",
            enc(name),
            e.size,
            e.digest.as_deref().unwrap_or("-"),
        ));
    }
    hex(&esg_gsi::sha256(s.as_bytes()))
}

// ---------------------------------------------------------------------------
// Orchestration

/// Start a replication campaign. Returns the campaign id; `on_complete`
/// fires once, when the final round settles (never on cancellation).
pub fn start_campaign<W: RmWorld>(
    sim: &mut Sim<W>,
    spec: CampaignSpec,
    on_complete: impl FnOnce(&mut Sim<W>, CampaignOutcome) + 'static,
) -> u64 {
    let now = sim.now();
    let rm = sim.world.reqman();
    rm.campaign_seq += 1;
    let id = rm.campaign_seq;
    let ctx = TraceCtx::system();

    let target_node = rm.hosts.get(&spec.target_host).copied();
    let mut files: Vec<(String, u64)> = rm
        .catalog
        .logical_files(&spec.collection)
        .unwrap_or_default()
        .into_iter()
        .map(|f| {
            let size = rm.catalog.file_size(&spec.collection, &f).unwrap_or(0);
            (f, size)
        })
        .collect();
    files.sort();
    let files_total = files.len();

    rm.metrics.counter_add("rm.campaign.started", 1);
    rm.log.emit(
        &ctx,
        LogEvent::new(now, "rm.campaign.start")
            .field("campaign", id)
            .field("name", spec.name.clone())
            .field("collection", spec.collection.clone())
            .field("target", spec.target_host.clone())
            .field("files", files_total as u64),
    );

    // An unknown target is a configuration error, not a retryable fault:
    // fail the whole campaign immediately.
    let Some(target_node) = target_node else {
        rm.metrics.counter_add("rm.campaign.failed", 1);
        rm.log.emit(
            &ctx,
            LogEvent::new(now, "rm.campaign.complete")
                .field("campaign", id)
                .field("status", "failed")
                .field("reason", "unknown_target"),
        );
        let outcome = CampaignOutcome {
            id,
            name: spec.name.clone(),
            collection: spec.collection.clone(),
            target_host: spec.target_host.clone(),
            files_total,
            files_delivered: 0,
            files_failed: files_total,
            files_skipped: 0,
            bytes_transferred: 0,
            bytes_skipped: 0,
            rounds: 0,
            resumed: false,
            cancelled: false,
            manifest_sha256: manifest_sha(&BTreeMap::new()),
            started: now,
            finished: now,
        };
        sim.schedule(SimDuration::from_secs(0), move |s| on_complete(s, outcome));
        return id;
    };

    let sha = spec_sha(&spec, &files);

    // Load the checkpoint (if any) and classify it: valid → resume,
    // invalid/mismatched → fresh start with a rewritten header.
    let mut settled = BTreeMap::new();
    let mut resumed = false;
    if let Some(path) = &spec.checkpoint {
        match load_checkpoint(path, &sha) {
            Some(cp) => {
                settled = cp.settled;
                resumed = true;
            }
            None => {
                if path.exists() {
                    rm.metrics.counter_add("rm.campaign.fresh_start", 1);
                }
                let header = format!(
                    "campaign v1 spec={sha} name={} collection={} target={} files={files_total}",
                    enc(&spec.name),
                    enc(&spec.collection),
                    enc(&spec.target_host),
                );
                let _ = std::fs::write(path, format!("{header}\n"));
            }
        }
    }
    // A configured tape starts fresh each run: the recorder's first
    // snapshot is the full flattened state, so nothing is lost by
    // truncating a stale tape.
    let recorder = spec.recorder.as_ref().map(|path| {
        let _ = std::fs::write(path, "");
        FlightRecorder::new()
    });

    // The indexed pipeline holds the journal open for the campaign's
    // lifetime: one heal at open, O(lines) per append. Legacy re-opens
    // and re-reads per batch.
    let mut writer = if rm.scheduler.indexed {
        spec.checkpoint
            .as_ref()
            .and_then(|path| JournalWriter::open(path).ok())
    } else {
        None
    };

    // Checkpoint facts only count when they still describe a current file
    // (name and size both match); anything else is retried. Indexed by
    // name so a 10k-file resume is O(N log N), not O(N²).
    let by_name: HashMap<&str, u64> = files.iter().map(|(f, s)| (f.as_str(), *s)).collect();
    settled.retain(|name, e| e.done && by_name.get(name.as_str()) == Some(&e.size));
    drop(by_name);
    let files_skipped = settled.len();
    let bytes_skipped: u64 = settled.values().map(|e| e.size).sum();

    // The target location exists from the first round; settled files are
    // re-registered so a resumed catalog converges with an uninterrupted
    // one.
    let base = GridUrl::new(
        spec.target_host.clone(),
        format!("/replicas/{}", spec.collection),
    );
    let _ = rm
        .catalog
        .register_location(&spec.collection, &spec.location_name, &base, &[]);
    for name in settled.keys() {
        let _ = rm
            .catalog
            .add_file_to_location(&spec.collection, &spec.location_name, name);
    }

    if resumed {
        rm.metrics.counter_add("rm.campaign.resumed", 1);
        rm.metrics
            .counter_add("rm.campaign.bytes_skipped", bytes_skipped);
        rm.log.emit(
            &ctx,
            LogEvent::new(now, "rm.campaign.resume")
                .field("campaign", id)
                .field("skipped", files_skipped as u64)
                .field("bytes_skipped", bytes_skipped),
        );
        if let Some(path) = &spec.checkpoint {
            let line = format!("resume skipped={files_skipped} bytes={bytes_skipped}");
            let _ = match &mut writer {
                Some(w) => w.append(&[line]),
                None => append_lines(path, &[line]),
            };
        }
    }

    // Round plan: the unsettled files, in sorted order, chunked.
    let batch = spec.batch_files.max(1);
    let mut rounds: Vec<Vec<String>> = Vec::new();
    for (name, _) in files.iter().filter(|(f, _)| !settled.contains_key(f)) {
        if rounds.last().map(|r| r.len() >= batch).unwrap_or(true) {
            rounds.push(Vec::new());
        }
        rounds.last_mut().unwrap().push(name.clone());
    }

    let span = rm.log.span_start(&ctx, now, Phase::Campaign, None);
    let camp: SharedCampaign = Rc::new(RefCell::new(CampaignState {
        spec,
        id,
        target_node,
        files_total,
        rounds,
        round_idx: 0,
        current_request: None,
        settled,
        bytes_transferred: 0,
        bytes_skipped,
        files_skipped,
        resumed,
        cancelled: false,
        finished: false,
        started: now,
        span,
        last_marker: HashMap::new(),
        writer,
        recorder,
    }));
    rm.campaigns.insert(id, camp.clone());
    let cb: CampaignDone<W> = Rc::new(RefCell::new(Some(Box::new(on_complete))));

    if camp.borrow().rounds.is_empty() {
        complete_campaign(sim, &camp, &cb);
    } else {
        record_snapshot(sim, &camp);
        launch_round(sim, camp.clone(), cb);
        schedule_markers(sim, &camp);
        schedule_recorder(sim, &camp);
    }
    id
}

/// Cancel a live campaign: tears down the in-flight round (transfers,
/// ledger entries, breaker probe slots), closes the campaign span and
/// removes the campaign without firing its callback. The checkpoint keeps
/// every settled fact, so a later [`start_campaign`] with the same spec
/// resumes where the cancel left off. Returns `false` for unknown ids.
pub fn cancel_campaign<W: RmWorld>(sim: &mut Sim<W>, id: u64) -> bool {
    let Some(camp) = sim.world.reqman().campaigns.remove(&id) else {
        return false;
    };
    let (req, span, name) = {
        let mut c = camp.borrow_mut();
        c.cancelled = true;
        c.finished = true;
        (c.current_request.take(), c.span, c.spec.name.clone())
    };
    if let Some(req) = req {
        cancel_request(sim, req);
    }
    let now = sim.now();
    let ctx = TraceCtx::system();
    let rm = sim.world.reqman();
    rm.metrics.counter_add("rm.campaign.cancelled", 1);
    rm.log.span_end(
        &ctx,
        now,
        span,
        Phase::Campaign,
        vec![("campaign", id.into()), ("status", "cancelled".into())],
    );
    rm.log.emit(
        &ctx,
        LogEvent::new(now, "rm.campaign.cancel")
            .field("campaign", id)
            .field("name", name),
    );
    true
}

fn launch_round<W: RmWorld>(sim: &mut Sim<W>, camp: SharedCampaign, cb: CampaignDone<W>) {
    let now = sim.now();
    let (id, round, req_files, tenant, target_node) = {
        let c = camp.borrow();
        let files: Vec<(String, String)> = c.rounds[c.round_idx]
            .iter()
            .map(|f| (c.spec.collection.clone(), f.clone()))
            .collect();
        (
            c.id,
            c.round_idx as u64,
            files,
            c.spec.name.clone(),
            c.target_node,
        )
    };
    let rm = sim.world.reqman();
    rm.metrics.counter_add("rm.campaign.rounds", 1);
    rm.log.emit(
        &TraceCtx::system(),
        LogEvent::new(now, "rm.campaign.round")
            .field("campaign", id)
            .field("round", round)
            .field("files", req_files.len() as u64),
    );
    let camp2 = camp.clone();
    let req = submit_request_for_tenant(sim, target_node, req_files, &tenant, move |s, o| {
        round_done(s, camp2, cb, o)
    });
    camp.borrow_mut().current_request = Some(req);
}

fn round_done<W: RmWorld>(
    sim: &mut Sim<W>,
    camp: SharedCampaign,
    cb: CampaignDone<W>,
    outcome: RequestOutcome,
) {
    let now = sim.now();
    // Digest lookups need the RM while the campaign is unborrowed.
    let (collection, location, id, round) = {
        let c = camp.borrow();
        (
            c.spec.collection.clone(),
            c.spec.location_name.clone(),
            c.id,
            c.round_idx as u64,
        )
    };
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let mut lines = Vec::new();
    for fs in &outcome.files {
        let digest = sim
            .world
            .reqman()
            .catalog
            .file_digest(&collection, &fs.name);
        let entry = Settled {
            size: fs.size,
            digest,
            done: fs.done,
            round,
        };
        if fs.done {
            delivered += 1;
            let _ =
                sim.world
                    .reqman()
                    .catalog
                    .add_file_to_location(&collection, &location, &fs.name);
        } else {
            failed += 1;
        }
        lines.push(settled_line(&fs.name, &entry));
        let mut c = camp.borrow_mut();
        if fs.done {
            c.bytes_transferred += fs.size;
        }
        c.settled.insert(fs.name.clone(), entry);
        c.last_marker.remove(&fs.name);
    }
    {
        let rm = sim.world.reqman();
        rm.metrics
            .counter_add("rm.campaign.files_delivered", delivered);
        rm.metrics.counter_add("rm.campaign.files_failed", failed);
        rm.metrics.counter_add(
            "rm.campaign.bytes_transferred",
            outcome
                .files
                .iter()
                .filter(|f| f.done)
                .map(|f| f.size)
                .sum(),
        );
    }
    let checkpointed = camp.borrow_mut().journal(&lines);
    {
        let settled_total = camp.borrow().settled.len() as u64;
        let rm = sim.world.reqman();
        rm.metrics.counter_add("rm.campaign.checkpoints", 1);
        rm.log.emit(
            &TraceCtx::system(),
            LogEvent::new(now, "rm.campaign.checkpoint")
                .field("campaign", id)
                .field("round", round)
                .field("settled", settled_total)
                .field("durable", u64::from(checkpointed)),
        );
    }
    let (more, cancelled) = {
        let mut c = camp.borrow_mut();
        c.current_request = None;
        c.round_idx += 1;
        (c.round_idx < c.rounds.len(), c.cancelled)
    };
    if cancelled {
        return;
    }
    if more {
        launch_round(sim, camp, cb);
    } else {
        complete_campaign(sim, &camp, &cb);
    }
}

fn complete_campaign<W: RmWorld>(sim: &mut Sim<W>, camp: &SharedCampaign, cb: &CampaignDone<W>) {
    let now = sim.now();
    let outcome = {
        let mut c = camp.borrow_mut();
        c.finished = true;
        let manifest = manifest_sha(&c.settled);
        CampaignOutcome {
            id: c.id,
            name: c.spec.name.clone(),
            collection: c.spec.collection.clone(),
            target_host: c.spec.target_host.clone(),
            files_total: c.files_total,
            files_delivered: c.settled.values().filter(|e| e.done).count() - c.files_skipped,
            files_failed: c.files_total - c.settled.values().filter(|e| e.done).count(),
            files_skipped: c.files_skipped,
            bytes_transferred: c.bytes_transferred,
            bytes_skipped: c.bytes_skipped,
            rounds: c.round_idx,
            resumed: c.resumed,
            cancelled: false,
            manifest_sha256: manifest,
            started: c.started,
            finished: now,
        }
    };
    let _ = camp
        .borrow_mut()
        .journal(&[format!("complete manifest={}", outcome.manifest_sha256)]);
    let span = camp.borrow().span;
    let id = outcome.id;
    let ctx = TraceCtx::system();
    let rm = sim.world.reqman();
    rm.campaigns.remove(&id);
    rm.metrics.counter_add("rm.campaign.completed", 1);
    rm.log.span_end(
        &ctx,
        now,
        span,
        Phase::Campaign,
        vec![
            ("campaign", id.into()),
            ("status", "complete".into()),
            ("bytes", outcome.bytes_transferred.into()),
        ],
    );
    rm.log.emit(
        &ctx,
        LogEvent::new(now, "rm.campaign.complete")
            .field("campaign", id)
            .field("delivered", outcome.files_delivered as u64)
            .field("failed", outcome.files_failed as u64)
            .field("skipped", outcome.files_skipped as u64)
            .field("rounds", outcome.rounds as u64)
            .field("manifest", outcome.manifest_sha256.clone()),
    );
    // The tape's last line holds the completion counters.
    record_snapshot(sim, camp);
    if let Some(f) = cb.borrow_mut().take() {
        f(sim, outcome);
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder ticks

/// Capture one flight-recorder snapshot of the RM registry and append it
/// to the campaign's tape. No-op without a configured recorder.
fn record_snapshot<W: RmWorld>(sim: &mut Sim<W>, camp: &SharedCampaign) {
    let now = sim.now();
    let Some(path) = camp.borrow().spec.recorder.clone() else {
        return;
    };
    let line = {
        let rm = sim.world.reqman();
        let mut c = camp.borrow_mut();
        let Some(rec) = c.recorder.as_mut() else {
            return;
        };
        rec.snapshot(now, &rm.metrics).to_string()
    };
    {
        let _j = profile::scope(profile::JOURNAL);
        profile::count("journal.recorder_lines", 1);
        let _ = append_to_tape(&path, &line);
    }
    sim.world
        .reqman()
        .metrics
        .counter_add("rm.campaign.recorder_snapshots", 1);
}

/// Plain append for the tape: the recorder owns the whole file for the
/// campaign's lifetime (truncated at start), so no healing pass is needed.
fn append_to_tape(path: &Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    writeln!(f, "{line}")?;
    f.flush()
}

fn schedule_recorder<W: RmWorld>(sim: &mut Sim<W>, camp: &SharedCampaign) {
    let every = {
        let c = camp.borrow();
        if c.recorder.is_none() {
            return;
        }
        c.spec.recorder_every
    };
    if every.is_zero() {
        return;
    }
    let camp2 = camp.clone();
    sim.schedule(every, move |s| {
        if camp2.borrow().finished {
            return;
        }
        record_snapshot(s, &camp2);
        schedule_recorder(s, &camp2);
    });
}

// ---------------------------------------------------------------------------
// Marker ticks

fn schedule_markers<W: RmWorld>(sim: &mut Sim<W>, camp: &SharedCampaign) {
    let every = {
        let c = camp.borrow();
        if c.spec.checkpoint.is_none() {
            return;
        }
        c.spec.checkpoint_every
    };
    if every.is_zero() {
        return;
    }
    let camp2 = camp.clone();
    sim.schedule(every, move |s| marker_tick(s, camp2));
}

/// Periodic durability snapshot: journal a `marker` line for every
/// in-flight file whose delivered byte count grew since the last tick.
/// Markers are forensic — resume is file-grained — but they bound how much
/// progress a post-crash observer can be blind to.
fn marker_tick<W: RmWorld>(sim: &mut Sim<W>, camp: SharedCampaign) {
    if camp.borrow().finished {
        return;
    }
    let req = camp.borrow().current_request;
    if let Some(req) = req {
        // The indexed pipeline reads only the files with banked unfinished
        // bytes from the request's incremental progress set; the legacy
        // path clones every FileStatus of the round and filters, and is
        // charged one rescan of the round per tick for it. Both yield the
        // same (name, offset) sequence in the same order.
        let progress: Option<Vec<(String, u64)>> = if sim.world.reqman().scheduler.indexed {
            sim.world.reqman().marker_progress(req)
        } else {
            let rm = sim.world.reqman();
            let statuses = rm.status(req);
            if let Some(statuses) = &statuses {
                rm.metrics.counter_add(crate::manager::QUEUE_RESCANS, 1);
                rm.metrics
                    .counter_add(crate::manager::LEDGER_SCAN_LEN, statuses.len() as u64);
            }
            statuses.map(|v| {
                v.into_iter()
                    .filter(|fs| !fs.done && fs.bytes_done != 0)
                    .map(|fs| (fs.name, fs.bytes_done))
                    .collect()
            })
        };
        if let Some(progress) = progress {
            let (lines, id) = {
                let mut c = camp.borrow_mut();
                let round = c.round_idx as u64;
                let mut lines = Vec::new();
                for (name, bytes_done) in &progress {
                    let last = c.last_marker.get(name).copied().unwrap_or(0);
                    if *bytes_done > last {
                        c.last_marker.insert(name.clone(), *bytes_done);
                        lines.push(format!(
                            "marker file={} offset={bytes_done} round={round}",
                            enc(name),
                        ));
                    }
                }
                (lines, c.id)
            };
            if !lines.is_empty() {
                let _ = camp.borrow_mut().journal(&lines);
                let n = lines.len() as u64;
                let now = sim.now();
                let rm = sim.world.reqman();
                rm.metrics.counter_add("rm.campaign.markers", n);
                rm.log.emit(
                    &TraceCtx::system(),
                    LogEvent::new(now, "rm.campaign.checkpoint")
                        .field("campaign", id)
                        .field("markers", n),
                );
            }
        }
    }
    schedule_markers(sim, &camp);
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{submit_request, HasReqMan, RequestManager};
    use crate::reliability::BreakerState;
    use esg_gridftp::simxfer::{GridFtpSim, HasGridFtp};
    use esg_nws::{HasNws, NwsRegistry};
    use esg_replica::Policy;
    use esg_simnet::{Node, Topology};

    struct World {
        rm: RequestManager,
        gridftp: GridFtpSim,
        nws: NwsRegistry,
        outcomes: Vec<CampaignOutcome>,
        requests: Vec<RequestOutcome>,
    }

    impl HasReqMan for World {
        fn reqman(&mut self) -> &mut RequestManager {
            &mut self.rm
        }
    }
    impl HasGridFtp for World {
        fn gridftp(&mut self) -> &mut GridFtpSim {
            &mut self.gridftp
        }
    }
    impl HasNws for World {
        fn nws(&mut self) -> &mut NwsRegistry {
            &mut self.nws
        }
    }

    const FILES: usize = 6;
    const FILE_BYTES: u64 = 50_000_000;

    /// Two source sites and one archive target. The target's 10 MB/s link
    /// is the bottleneck, so a round of two 50 MB files takes ≈10 s and
    /// the full six-file campaign ≈30 s — slow enough that `run_until`
    /// can interrupt it mid-flight.
    fn setup() -> (Sim<World>, NodeId) {
        let mut topo = Topology::new();
        let core = topo.add_node(Node::router("core"));
        let src_a = topo.add_node(Node::host("pcmdi.llnl.gov"));
        topo.add_link(src_a, core, 10e6, SimDuration::from_millis(5));
        let src_b = topo.add_node(Node::host("jupiter.isi.edu"));
        topo.add_link(src_b, core, 10e6, SimDuration::from_millis(10));
        let target = topo.add_node(Node::host("archive.ucar.edu"));
        topo.add_link(target, core, 10e6, SimDuration::from_millis(5));

        let mut rm = RequestManager::new(Policy::BestBandwidth, 7);
        rm.add_host("pcmdi.llnl.gov", src_a);
        rm.add_host("jupiter.isi.edu", src_b);
        rm.add_host("archive.ucar.edu", target);
        rm.catalog.create_collection("pcm").unwrap();
        for i in 0..FILES {
            let name = format!("pcm.run1.f{i:03}");
            rm.catalog
                .add_logical_file("pcm", &name, FILE_BYTES)
                .unwrap();
            let key = format!("pcm/{name}");
            let hexd = esg_storage::file_digest_hex(&key, FILE_BYTES);
            rm.catalog.set_file_digest("pcm", &name, &hexd).unwrap();
        }
        let names: Vec<String> = (0..FILES).map(|i| format!("pcm.run1.f{i:03}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        rm.catalog
            .register_location(
                "pcm",
                "llnl",
                &GridUrl::new("pcmdi.llnl.gov", "/data"),
                &refs,
            )
            .unwrap();
        rm.catalog
            .register_location(
                "pcm",
                "isi",
                &GridUrl::new("jupiter.isi.edu", "/data"),
                &refs,
            )
            .unwrap();

        let mut world = World {
            rm,
            gridftp: GridFtpSim::new(),
            nws: NwsRegistry::new(),
            outcomes: Vec::new(),
            requests: Vec::new(),
        };
        world
            .nws
            .observe_bandwidth(src_a, target, SimTime::ZERO, 10e6);
        world
            .nws
            .observe_bandwidth(src_b, target, SimTime::ZERO, 8e6);
        (Sim::new(topo, world), target)
    }

    fn tmp_checkpoint(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("esg-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn spec_with(tag: &str, checkpoint: Option<PathBuf>) -> CampaignSpec {
        let mut spec = CampaignSpec::new(tag, "pcm", "archive.ucar.edu");
        spec.batch_files = 2;
        spec.checkpoint = checkpoint;
        spec.checkpoint_every = SimDuration::from_secs(5);
        spec
    }

    #[test]
    fn campaign_completes_and_registers_target_replicas() {
        let (mut sim, _target) = setup();
        start_campaign(&mut sim, spec_with("mirror", None), |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        assert_eq!(sim.world.outcomes.len(), 1);
        let o = &sim.world.outcomes[0];
        assert_eq!(o.files_total, FILES);
        assert_eq!(o.files_delivered, FILES);
        assert_eq!(o.files_failed, 0);
        assert_eq!(o.files_skipped, 0);
        assert_eq!(o.bytes_transferred, FILES as u64 * FILE_BYTES);
        assert_eq!(o.rounds, FILES / 2);
        assert!(!o.resumed);
        assert_eq!(o.manifest_sha256.len(), 64);
        // Every file is now registered at the target location.
        for i in 0..FILES {
            let name = format!("pcm.run1.f{i:03}");
            let replicas = sim.world.rm.catalog.lookup_replicas("pcm", &name).unwrap();
            assert!(
                replicas.iter().any(|r| r.host == "archive.ucar.edu"),
                "{name} must be registered at the target"
            );
        }
        // The campaign's root span closed and its lifecycle events fired.
        assert!(sim.world.rm.campaigns.is_empty());
        assert_eq!(sim.world.rm.metrics.counter("rm.campaign.completed"), 1);
        assert_eq!(
            sim.world.rm.metrics.counter("rm.campaign.rounds"),
            (FILES / 2) as u64
        );
        assert!(sim.world.rm.log.named("rm.campaign.start").next().is_some());
        assert!(sim
            .world
            .rm
            .log
            .named("rm.campaign.complete")
            .next()
            .is_some());
    }

    #[test]
    fn completed_checkpoint_resumes_with_zero_retransfer() {
        let ckpt = tmp_checkpoint("resume-full");
        let manifest_a;
        {
            let (mut sim, _) = setup();
            start_campaign(&mut sim, spec_with("mirror", Some(ckpt.clone())), |s, o| {
                s.world.outcomes.push(o)
            });
            sim.run();
            manifest_a = sim.world.outcomes[0].manifest_sha256.clone();
        }
        // A fresh simulation (fresh RM, fresh catalog) resuming from the
        // journal: every file is vouched for, so nothing moves.
        let (mut sim, _) = setup();
        start_campaign(&mut sim, spec_with("mirror", Some(ckpt.clone())), |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        let o = &sim.world.outcomes[0];
        assert!(o.resumed);
        assert_eq!(o.files_skipped, FILES);
        assert_eq!(o.files_delivered, 0);
        assert_eq!(
            o.bytes_transferred, 0,
            "verified bytes must not re-transfer"
        );
        assert_eq!(o.bytes_skipped, FILES as u64 * FILE_BYTES);
        assert_eq!(o.manifest_sha256, manifest_a, "resume-equivalence");
        assert_eq!(
            sim.world.rm.metrics.counter("rm.campaign.bytes_skipped"),
            FILES as u64 * FILE_BYTES
        );
        // Skipped files still converge the catalog.
        let replicas = sim
            .world
            .rm
            .catalog
            .lookup_replicas("pcm", "pcm.run1.f000")
            .unwrap();
        assert!(replicas.iter().any(|r| r.host == "archive.ucar.edu"));
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn interrupted_campaign_resumes_without_retransferring_settled_bytes() {
        let ckpt = tmp_checkpoint("resume-partial");
        // Uninterrupted baseline manifest.
        let manifest_baseline = {
            let (mut sim, _) = setup();
            start_campaign(&mut sim, spec_with("mirror", None), |s, o| {
                s.world.outcomes.push(o)
            });
            sim.run();
            sim.world.outcomes[0].manifest_sha256.clone()
        };
        // Interrupted run: stop the world mid-campaign (the "crash").
        {
            let (mut sim, _) = setup();
            start_campaign(&mut sim, spec_with("mirror", Some(ckpt.clone())), |s, o| {
                s.world.outcomes.push(o)
            });
            sim.run_until(SimTime::from_secs(15));
            assert!(
                sim.world.outcomes.is_empty(),
                "campaign must still be in flight at the interruption point"
            );
        }
        // Resume in a fresh world.
        let (mut sim, _) = setup();
        start_campaign(&mut sim, spec_with("mirror", Some(ckpt.clone())), |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        let o = &sim.world.outcomes[0];
        assert!(o.resumed);
        assert!(
            o.files_skipped >= 1 && o.files_skipped < FILES,
            "interruption must land mid-campaign (skipped {})",
            o.files_skipped
        );
        assert_eq!(o.files_skipped + o.files_delivered, FILES);
        assert_eq!(
            o.bytes_skipped + o.bytes_transferred,
            FILES as u64 * FILE_BYTES,
            "every byte is accounted to exactly one run"
        );
        assert_eq!(
            o.manifest_sha256, manifest_baseline,
            "resumed manifest must match the uninterrupted baseline"
        );
        let journal = std::fs::read_to_string(&ckpt).unwrap();
        assert!(journal.contains("\nresume "));
        assert!(journal.contains("complete manifest="));
        let _ = std::fs::remove_file(&ckpt);
    }

    /// Satellite: cancelling a campaign with pulls in flight (and a retry
    /// pending against a downed host) must drain the shared host ledger to
    /// zero — no leaked in-flight slots, no late finish_request.
    #[test]
    fn cancel_mid_flight_drains_ledger_to_zero() {
        let (mut sim, _) = setup();
        let id = start_campaign(&mut sim, spec_with("mirror", None), |s, o| {
            s.world.outcomes.push(o)
        });
        // Knock out a source mid-round: the stalled pulls will be torn
        // down by the monitor *after* the cancel, and their retry/backoff
        // closures must no-op against the cancelled request.
        sim.schedule(SimDuration::from_millis(500), |s| {
            let node = s.world.rm.hosts["pcmdi.llnl.gov"];
            s.net.set_node_up(node, false);
        });
        // At t=5 s (seed 7): f000 has failed fast on the dead host, backed
        // off, and restarted from the healthy one (in flight, holding a
        // ledger slot); f001's retry backoff is still pending and will
        // fire *after* the cancel.
        sim.run_until(SimTime::from_secs(5));
        assert!(
            sim.world.rm.inflight().total() > 0,
            "pulls must be in flight at the cancel point"
        );
        assert!(cancel_campaign(&mut sim, id));
        assert_eq!(
            sim.world.rm.inflight().total(),
            0,
            "cancel must release every ledger slot"
        );
        // Let pending monitor ticks and backoff wakes fire: they must all
        // no-op against the settled files.
        sim.run();
        assert_eq!(sim.world.rm.inflight().total(), 0);
        assert!(sim.world.rm.live_requests().is_empty());
        assert!(sim.world.rm.campaigns.is_empty());
        assert!(sim.world.outcomes.is_empty(), "no callback after cancel");
        assert!(!cancel_campaign(&mut sim, id), "second cancel is a no-op");
        assert_eq!(sim.world.rm.metrics.counter("rm.campaign.cancelled"), 1);
    }

    /// Satellite: campaign and interactive traffic share one breaker per
    /// host — after campaign failures trip a source, an interactive
    /// request sees the breaker half-open (probe), not closed.
    #[test]
    fn campaign_trips_breaker_shared_with_interactive() {
        let (mut sim, target) = setup();
        {
            let rm = &mut sim.world.rm;
            rm.breaker_threshold = 2;
            rm.breaker_cooldown = SimDuration::from_secs(30);
            // Leave only one replica per file so failover cannot dodge the
            // downed host.
            for i in 0..FILES {
                let name = format!("pcm.run1.f{i:03}");
                rm.catalog
                    .remove_file_from_location("pcm", "isi", &name)
                    .unwrap();
            }
        }
        // The sole source goes down before anything moves.
        let node = sim.world.rm.hosts["pcmdi.llnl.gov"];
        sim.net.set_node_up(node, false);
        let id = start_campaign(&mut sim, spec_with("mirror", None), |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run_until(SimTime::from_secs(25));
        assert!(
            matches!(
                sim.world.rm.breaker_state("pcmdi.llnl.gov"),
                Some(BreakerState::Open { .. })
            ),
            "campaign failures must trip the shared breaker, got {:?}",
            sim.world.rm.breaker_state("pcmdi.llnl.gov")
        );
        cancel_campaign(&mut sim, id);
        // Past the cooldown, an interactive request probes the host
        // through the *same* breaker: the half-open transition must be
        // observable before the probe's success closes it.
        sim.net.set_node_up(node, true);
        let half_open_before = sim.world.rm.log.named("rm.breaker.half_open").count();
        sim.run_until(SimTime::from_secs(40));
        submit_request(
            &mut sim,
            target,
            vec![("pcm".into(), "pcm.run1.f000".into())],
            |s, o| s.world.requests.push(o),
        );
        sim.run();
        assert_eq!(sim.world.requests.len(), 1);
        assert!(sim.world.requests[0].files[0].done);
        assert!(
            sim.world.rm.log.named("rm.breaker.half_open").count() > half_open_before,
            "interactive probe must pass through the campaign-tripped breaker's half-open state"
        );
    }

    /// Fair-share gate: a campaign whose tenant quota is 1 can only hold
    /// one ledger slot; the rest of its round defers, and once the wait
    /// exceeds the starvation window the distress signal fires.
    #[test]
    fn tenant_quota_defers_campaign_and_reports_starvation() {
        let (mut sim, _) = setup();
        {
            let rm = &mut sim.world.rm;
            rm.tenants.budget = 2;
            rm.tenants.set_quota("mirror", 1);
            rm.tenants.starvation_after = SimDuration::from_secs(2);
        }
        let mut spec = spec_with("mirror", None);
        spec.batch_files = FILES; // one big round: max pressure on the quota
        start_campaign(&mut sim, spec, |s, o| s.world.outcomes.push(o));
        sim.run();
        let o = &sim.world.outcomes[0];
        assert_eq!(o.files_delivered, FILES);
        let stats = sim.world.rm.sched_stats();
        assert!(
            stats.tenant_deferred > 0,
            "quota must defer the over-subscribed round"
        );
        assert!(
            sim.world.rm.metrics.counter("rm.campaign.starved") > 0,
            "starvation window must trip while the quota throttles the round"
        );
        assert!(sim
            .world
            .rm
            .log
            .named("rm.campaign.starved")
            .next()
            .is_some());
    }

    #[test]
    fn torn_checkpoint_tail_is_dropped_and_healed() {
        let ckpt = tmp_checkpoint("torn");
        let spec = spec_with("mirror", Some(ckpt.clone()));
        let (sim, _) = setup();
        let files: Vec<(String, u64)> = (0..FILES)
            .map(|i| (format!("pcm.run1.f{i:03}"), FILE_BYTES))
            .collect();
        let sha = spec_sha(&spec, &files);
        drop(sim);
        std::fs::write(
            &ckpt,
            format!(
                "campaign v1 spec={sha} name=mirror collection=pcm target=archive.ucar.edu files={FILES}\n\
                 settled file=pcm.run1.f000 size={FILE_BYTES} digest=- status=done round=0\n\
                 settled file=pcm.run1.f001 si",
            ),
        )
        .unwrap();
        // The torn tail is not a fact.
        let cp = load_checkpoint(&ckpt, &sha).expect("journal must load");
        assert_eq!(cp.settled.len(), 1);
        assert!(cp.settled["pcm.run1.f000"].done);
        // Appending heals the tear before writing.
        append_lines(&ckpt, &["resume skipped=1 bytes=0".into()]).unwrap();
        let raw = std::fs::read_to_string(&ckpt).unwrap();
        assert!(!raw.contains("f001 si"), "torn fragment must be truncated");
        assert!(raw.ends_with("resume skipped=1 bytes=0\n"));
        // And a resumed campaign trusts exactly the surviving fact.
        let (mut sim, _) = setup();
        start_campaign(&mut sim, spec, |s, o| s.world.outcomes.push(o));
        sim.run();
        let o = &sim.world.outcomes[0];
        assert!(o.resumed);
        assert_eq!(o.files_skipped, 1);
        assert_eq!(o.files_delivered, FILES - 1);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn mismatched_checkpoint_restarts_fresh() {
        let ckpt = tmp_checkpoint("mismatch");
        std::fs::write(
            &ckpt,
            format!(
                "campaign v1 spec={} name=mirror collection=pcm target=archive.ucar.edu files=6\n\
                 settled file=pcm.run1.f000 size={FILE_BYTES} digest=- status=done round=0\n",
                hex(&esg_gsi::sha256(b"some other spec")),
            ),
        )
        .unwrap();
        let (mut sim, _) = setup();
        start_campaign(&mut sim, spec_with("mirror", Some(ckpt.clone())), |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        let o = &sim.world.outcomes[0];
        assert!(!o.resumed, "a stale checkpoint must not be trusted");
        assert_eq!(o.files_skipped, 0);
        assert_eq!(o.files_delivered, FILES);
        assert_eq!(sim.world.rm.metrics.counter("rm.campaign.fresh_start"), 1);
        // The journal was rewritten under the live spec.
        let raw = std::fs::read_to_string(&ckpt).unwrap();
        let files: Vec<(String, u64)> = (0..FILES)
            .map(|i| (format!("pcm.run1.f{i:03}"), FILE_BYTES))
            .collect();
        assert!(raw.starts_with(&format!(
            "campaign v1 spec={}",
            spec_sha(&spec_with("mirror", Some(ckpt.clone())), &files)
        )));
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn failed_status_checkpoint_entries_are_retried() {
        let ckpt = tmp_checkpoint("retry-failed");
        let spec = spec_with("mirror", Some(ckpt.clone()));
        let files: Vec<(String, u64)> = (0..FILES)
            .map(|i| (format!("pcm.run1.f{i:03}"), FILE_BYTES))
            .collect();
        let sha = spec_sha(&spec, &files);
        std::fs::write(
            &ckpt,
            format!(
                "campaign v1 spec={sha} name=mirror collection=pcm target=archive.ucar.edu files={FILES}\n\
                 settled file=pcm.run1.f000 size={FILE_BYTES} digest=- status=done round=0\n\
                 settled file=pcm.run1.f001 size={FILE_BYTES} digest=- status=failed round=0\n",
            ),
        )
        .unwrap();
        let (mut sim, _) = setup();
        start_campaign(&mut sim, spec, |s, o| s.world.outcomes.push(o));
        sim.run();
        let o = &sim.world.outcomes[0];
        assert!(o.resumed);
        assert_eq!(o.files_skipped, 1, "only the done entry is vouched for");
        assert_eq!(o.files_delivered, FILES - 1, "the failed entry is retried");
        assert_eq!(o.files_failed, 0);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn unknown_target_fails_the_campaign_immediately() {
        let (mut sim, _) = setup();
        let spec = CampaignSpec::new("mirror", "pcm", "nowhere.example.org");
        start_campaign(&mut sim, spec, |s, o| s.world.outcomes.push(o));
        sim.run();
        let o = &sim.world.outcomes[0];
        assert_eq!(o.files_failed, FILES);
        assert_eq!(o.files_delivered, 0);
        assert!(sim.world.rm.campaigns.is_empty());
    }

    #[test]
    fn campaign_writes_byte_stable_flight_tape() {
        let run = |tag: &str| {
            let tape = tmp_checkpoint(tag);
            let (mut sim, _) = setup();
            let mut spec = spec_with("mirror", None);
            spec.recorder = Some(tape.clone());
            spec.recorder_every = SimDuration::from_secs(5);
            start_campaign(&mut sim, spec, |s, o| s.world.outcomes.push(o));
            sim.run();
            let raw = std::fs::read_to_string(&tape).unwrap();
            let _ = std::fs::remove_file(&tape);
            (
                raw,
                sim.world
                    .rm
                    .metrics
                    .counter("rm.campaign.recorder_snapshots"),
            )
        };
        let (raw, snapshots) = run("tape-a");
        let lines: Vec<&str> = raw.lines().collect();
        // Start snapshot + periodic ticks over the ~30 s run + completion.
        assert!(lines.len() >= 4, "tape too short:\n{raw}");
        assert_eq!(snapshots, lines.len() as u64);
        // First line is the full state at campaign start...
        assert!(lines[0].starts_with("{\"t\": "), "{}", lines[0]);
        assert!(lines[0].contains("\"rm.campaign.started\": 1"));
        // ...later lines are deltas: keys that never change stop appearing.
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("rm.campaign.started"))
                .count(),
            1,
            "unchanged keys must be delta-elided:\n{raw}"
        );
        // The last line carries the completion counters.
        assert!(
            lines
                .last()
                .unwrap()
                .contains("\"rm.campaign.completed\": 1"),
            "{raw}"
        );
        // Same seed, same spec → byte-identical tape.
        let (raw2, _) = run("tape-b");
        assert_eq!(raw, raw2, "flight tape must be byte-stable");
    }

    #[test]
    fn field_encoding_round_trips() {
        for s in ["plain", "with space", "a=b", "50%", "nl\nend", "%20"] {
            assert_eq!(dec(&enc(s)), s, "{s:?}");
        }
    }
}
