//! Collection replication: the higher-level replica management service.
//!
//! §6 describes building, atop the catalog and GridFTP, services such as
//! "reliable creation of a copy of a large data collection at a new
//! location". §4 adds the motivation: "one can choose to replicate
//! popular collections in multiple sites", letting the RM spread
//! concurrent transfers across sites.
//!
//! [`replicate_collection`] copies every file of a collection to a target
//! site with third-party transfers (source site → target site; the
//! controller only watches), retries failures with restart semantics, and
//! registers the new location in the replica catalog once each file lands.

use crate::manager::RmWorld;
use esg_gridftp::simxfer::{start_transfer, TransferSpec};
use esg_gridftp::GridUrl;
use esg_netlogger::{LogEvent, TraceCtx};
use esg_simnet::{NodeId, Sim, SimDuration, SimTime};

use std::cell::RefCell;
use std::rc::Rc;

/// Outcome of a collection replication.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationOutcome {
    pub collection: String,
    pub target_host: String,
    pub files_copied: usize,
    pub bytes_copied: u64,
    pub started: SimTime,
    pub finished: SimTime,
    /// Files that could not be copied (no source replica).
    pub failed: Vec<String>,
}

struct ReplState {
    collection: String,
    target_host: String,
    target_location: String,
    remaining: usize,
    files_copied: usize,
    bytes_copied: u64,
    started: SimTime,
    failed: Vec<String>,
}

type Shared = Rc<RefCell<ReplState>>;
type DoneCell<W> = Rc<RefCell<Option<Box<dyn FnOnce(&mut Sim<W>, ReplicationOutcome)>>>>;

/// Replicate every file of `collection` to `target_host` (which must be a
/// registered RM host). Registers a new catalog location named
/// `location_name` as files land. `on_done` fires when all files have been
/// attempted.
pub fn replicate_collection<W: RmWorld>(
    sim: &mut Sim<W>,
    collection: &str,
    target_host: &str,
    location_name: &str,
    on_done: impl FnOnce(&mut Sim<W>, ReplicationOutcome) + 'static,
) {
    let rm = sim.world.reqman();
    let files = rm.catalog.logical_files(collection).unwrap_or_default();
    let target_node = rm.hosts.get(target_host).copied();
    // Create the (initially empty) location entry up front.
    let _ = rm.catalog.register_location(
        collection,
        location_name,
        &GridUrl::new(target_host.to_string(), format!("/replicas/{collection}")),
        &[],
    );
    let now = sim.now();
    sim.world.reqman().log.emit(
        &TraceCtx::system(),
        LogEvent::new(now, "rm.replicate.start")
            .field("collection", collection)
            .field("target", target_host)
            .field("files", files.len()),
    );

    let state: Shared = Rc::new(RefCell::new(ReplState {
        collection: collection.to_string(),
        target_host: target_host.to_string(),
        target_location: location_name.to_string(),
        remaining: files.len(),
        files_copied: 0,
        bytes_copied: 0,
        started: now,
        failed: Vec::new(),
    }));
    let cb: DoneCell<W> = Rc::new(RefCell::new(Some(Box::new(on_done))));

    let Some(target_node) = target_node else {
        // Unknown target host: everything fails immediately.
        state.borrow_mut().failed = files;
        state.borrow_mut().remaining = 0;
        finish(sim, &state, &cb);
        return;
    };
    if files.is_empty() {
        finish(sim, &state, &cb);
        return;
    }
    for file in files {
        copy_one(sim, state.clone(), cb.clone(), file, target_node, 0);
    }
}

fn finish<W: RmWorld>(sim: &mut Sim<W>, state: &Shared, cb: &DoneCell<W>) {
    let outcome = {
        let st = state.borrow();
        ReplicationOutcome {
            collection: st.collection.clone(),
            target_host: st.target_host.clone(),
            files_copied: st.files_copied,
            bytes_copied: st.bytes_copied,
            started: st.started,
            finished: sim.now(),
            failed: st.failed.clone(),
        }
    };
    let now = sim.now();
    sim.world.reqman().log.emit(
        &TraceCtx::system(),
        LogEvent::new(now, "rm.replicate.complete")
            .field("collection", outcome.collection.clone())
            .field("copied", outcome.files_copied)
            .field("failed", outcome.failed.len()),
    );
    if let Some(f) = cb.borrow_mut().take() {
        f(sim, outcome);
    }
}

fn copy_one<W: RmWorld>(
    sim: &mut Sim<W>,
    state: Shared,
    cb: DoneCell<W>,
    file: String,
    target_node: NodeId,
    attempt: u32,
) {
    const MAX_ATTEMPTS: u32 = 4;
    let (collection, target_host, target_location) = {
        let st = state.borrow();
        (
            st.collection.clone(),
            st.target_host.clone(),
            st.target_location.clone(),
        )
    };
    // Pick any existing replica that is not the target itself, skipping
    // hosts whose circuit breaker is open: replication shares the
    // manager-wide breakers with interactive requests, so a host tripped
    // by either workload is avoided by both until its cooldown probe.
    let now = sim.now();
    let (source, candidates, size) = {
        let rm = sim.world.reqman();
        let replicas = rm
            .catalog
            .lookup_replicas(&collection, &file)
            .unwrap_or_default();
        let candidates = replicas.iter().filter(|r| r.host != target_host).count();
        let source = replicas
            .iter()
            .filter(|r| r.host != target_host && rm.breaker_would_admit(&r.host, now))
            .find_map(|r| rm.hosts.get(&r.host).copied().map(|n| (r.host.clone(), n)));
        let size = rm.catalog.file_size(&collection, &file).unwrap_or(0);
        (source, candidates, size)
    };
    let Some((source_host, source_node)) = source else {
        if candidates > 0 {
            // Replicas exist but every source is breaker-blocked: wait
            // for a cooldown probe window instead of failing the file.
            retry_or_fail(sim, state, cb, file, target_node, attempt);
            return;
        }
        let mut st = state.borrow_mut();
        st.failed.push(file);
        st.remaining -= 1;
        let done = st.remaining == 0;
        drop(st);
        if done {
            finish(sim, &state, &cb);
        }
        return;
    };
    sim.world.reqman().breaker_admit(&source_host, now);

    let tuning = sim.world.reqman().tuning;
    let mut spec = TransferSpec::new(source_node, target_node, size)
        .streams(tuning.streams)
        .window(tuning.window);
    if tuning.channel_cache {
        spec = spec.cached();
    }
    let st2 = state.clone();
    let cb2 = cb.clone();
    let file2 = file.clone();
    let source_host2 = source_host.clone();
    let started = start_transfer(sim, spec, move |s, result| match result {
        Ok(r) => {
            // Register the new replica in the catalog.
            {
                let now = s.now();
                let rm = s.world.reqman();
                rm.breaker_success(&source_host2, now);
                let _ = rm
                    .catalog
                    .add_file_to_location(&collection, &target_location, &file2);
            }
            let done = {
                let mut st = st2.borrow_mut();
                st.files_copied += 1;
                st.bytes_copied += r.bytes;
                st.remaining -= 1;
                st.remaining == 0
            };
            let now = s.now();
            s.world.reqman().log.emit(
                &TraceCtx::system().with_file(file2.clone()),
                LogEvent::new(now, "rm.replicate.file").field("bytes", r.bytes),
            );
            if done {
                finish(s, &st2, &cb2);
            }
        }
        Err(_) => {
            let now = s.now();
            s.world.reqman().breaker_failure(&source_host2, now);
            retry_or_fail(s, st2, cb2, file2, target_node, attempt);
        }
    });
    if started.is_err() {
        sim.world.reqman().breaker_failure(&source_host, now);
        retry_or_fail(sim, state, cb, file, target_node, attempt);
    }

    fn retry_or_fail<W: RmWorld>(
        sim: &mut Sim<W>,
        state: Shared,
        cb: DoneCell<W>,
        file: String,
        target_node: NodeId,
        attempt: u32,
    ) {
        if attempt + 1 >= MAX_ATTEMPTS {
            let done = {
                let mut st = state.borrow_mut();
                st.failed.push(file);
                st.remaining -= 1;
                st.remaining == 0
            };
            if done {
                finish(sim, &state, &cb);
            }
            return;
        }
        sim.schedule(SimDuration::from_secs(20), move |s| {
            copy_one(s, state, cb, file, target_node, attempt + 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{HasReqMan, RequestManager};
    use esg_gridftp::simxfer::{GridFtpSim, HasGridFtp};
    use esg_nws::{HasNws, NwsRegistry};
    use esg_replica::Policy;
    use esg_simnet::{Node, Topology};

    struct World {
        rm: RequestManager,
        gridftp: GridFtpSim,
        nws: NwsRegistry,
        outcomes: Vec<ReplicationOutcome>,
    }

    impl HasReqMan for World {
        fn reqman(&mut self) -> &mut RequestManager {
            &mut self.rm
        }
    }
    impl HasGridFtp for World {
        fn gridftp(&mut self) -> &mut GridFtpSim {
            &mut self.gridftp
        }
    }
    impl HasNws for World {
        fn nws(&mut self) -> &mut NwsRegistry {
            &mut self.nws
        }
    }

    fn setup() -> (Sim<World>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let core = topo.add_node(Node::router("core"));
        let src = topo.add_node(Node::host("src.llnl.gov"));
        let dst = topo.add_node(Node::host("dst.ncar.edu"));
        topo.add_link(src, core, 50e6, SimDuration::from_millis(5));
        topo.add_link(dst, core, 50e6, SimDuration::from_millis(10));

        let mut rm = RequestManager::new(Policy::BestBandwidth, 1);
        rm.add_host("src.llnl.gov", src);
        rm.add_host("dst.ncar.edu", dst);
        rm.catalog.create_collection("co2").unwrap();
        for f in ["jan.esg", "feb.esg", "mar.esg"] {
            rm.catalog.add_logical_file("co2", f, 20_000_000).unwrap();
        }
        rm.catalog
            .register_location(
                "co2",
                "llnl",
                &GridUrl::new("src.llnl.gov", "/data"),
                &["jan.esg", "feb.esg", "mar.esg"],
            )
            .unwrap();
        let world = World {
            rm,
            gridftp: GridFtpSim::new(),
            nws: NwsRegistry::new(),
            outcomes: Vec::new(),
        };
        (Sim::new(topo, world), src, dst)
    }

    #[test]
    fn replicates_whole_collection_and_registers() {
        let (mut sim, _, _) = setup();
        replicate_collection(&mut sim, "co2", "dst.ncar.edu", "ncar", |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        let o = &sim.world.outcomes[0];
        assert_eq!(o.files_copied, 3);
        assert_eq!(o.bytes_copied, 60_000_000);
        assert!(o.failed.is_empty());
        // Catalog now answers with both sites.
        let reps = sim
            .world
            .rm
            .catalog
            .lookup_replicas("co2", "jan.esg")
            .unwrap();
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().any(|r| r.host == "dst.ncar.edu"));
        // And the replication is observable in the log.
        assert_eq!(sim.world.rm.log.named("rm.replicate.file").count(), 3);
    }

    #[test]
    fn replication_survives_transient_outage() {
        let (mut sim, _, dst) = setup();
        replicate_collection(&mut sim, "co2", "dst.ncar.edu", "ncar", |s, o| {
            s.world.outcomes.push(o)
        });
        // Target site briefly down during the copies: start_transfer fails,
        // the retry path kicks in.
        sim.schedule(SimDuration::from_millis(100), move |s| {
            s.net.set_node_up(dst, false);
        });
        sim.schedule(SimDuration::from_secs(30), move |s| {
            s.net.set_node_up(dst, true);
        });
        sim.run_until(SimTime::from_secs(600));
        // Transfers launched pre-outage stall; our simple replicator does
        // not watch for stalls (the RM does) — but retries of *failed
        // starts* must eventually succeed.
        let o = sim.world.outcomes.first();
        if let Some(o) = o {
            assert!(o.files_copied >= 1, "{o:?}");
        }
    }

    #[test]
    fn unknown_target_fails_all() {
        let (mut sim, _, _) = setup();
        replicate_collection(&mut sim, "co2", "nowhere.example.org", "x", |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        let o = &sim.world.outcomes[0];
        assert_eq!(o.files_copied, 0);
        assert_eq!(o.failed.len(), 3);
    }

    #[test]
    fn empty_collection_finishes_immediately() {
        let (mut sim, _, _) = setup();
        sim.world.rm.catalog.create_collection("empty").unwrap();
        replicate_collection(&mut sim, "empty", "dst.ncar.edu", "n", |s, o| {
            s.world.outcomes.push(o)
        });
        sim.run();
        assert_eq!(sim.world.outcomes[0].files_copied, 0);
        assert!(sim.world.outcomes[0].failed.is_empty());
    }
}
