//! `lifeline` executor (A13): causal tracing and Figure-8 lifeline
//! reconstruction over the shared mixed hot/cold workload. The old
//! bin's fail-fast asserts became counted metrics the spec gates on
//! (lifelines complete == lifelines, tiling gap <= 1e-6, transfer spans
//! cover every byte, one critical path per request, ULM round-trip
//! identical); the full `BENCH_lifeline.json` body is produced here as
//! the trial fragment, and the raw ULM trace is journaled as an
//! auxiliary file by path + sha256.

use super::{mixed, TrialCtx};
use crate::journal::{AuxFile, MetricValue, TrialKey, TrialRecord};
use esg_netlogger::{LifelineSet, NetLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub const DISK_DS: &str = "pcm_life.disk";
pub const TAPE_DS: &str = "pcm_life.tape";

pub fn run(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let n_requests = p.usize("requests", 6);
    let min_rate = p.f64("min_rate", mixed::DEFAULT_MIN_RATE);
    let stall_s = p.f64("stall_threshold_s", 120.0);
    let artifact = ctx
        .spec
        .artifact
        .clone()
        .unwrap_or_else(|| "BENCH_lifeline.json".into());
    let trace_path = artifact.replace(".json", "_trace.ulm");

    let mut run = mixed::run_mixed(
        ctx.seed,
        &mixed::MixedConfig {
            disk_ds: DISK_DS,
            tape_ds: TAPE_DS,
            scheduler_on: None,
            min_rate,
            n_requests,
        },
        &ctx.spec.faults,
    )?;
    let outcomes = std::mem::take(&mut run.tb.sim.world.outcomes);
    let tb = &mut run.tb;

    // ULM round-trip: export -> parse -> export must be byte-identical,
    // and the analysis runs on the *parsed* trace like the paper's
    // offline pipeline did.
    let ulm = tb.sim.world.rm.log.to_ulm();
    let parsed = NetLog::from_ulm(&ulm).map_err(|e| format!("trace does not parse back: {e}"))?;
    let roundtrip_identical = parsed.to_ulm() == ulm;

    let set = LifelineSet::from_log(&parsed);
    let mut max_gap = 0.0f64;
    let mut delivered_bytes = 0u64;
    let mut span_bytes = 0u64;
    let mut n_files = 0usize;
    let mut files_delivered = 0usize;
    let mut files_with_lifeline = 0usize;
    let mut files_bytes_exact = 0usize;
    let mut files_status_done = 0usize;
    for o in &outcomes {
        for f in &o.files {
            n_files += 1;
            if !f.done {
                continue;
            }
            files_delivered += 1;
            delivered_bytes += f.size;
            let Some(l) = set.lifeline(o.id, &f.name) else {
                continue;
            };
            files_with_lifeline += 1;
            max_gap = max_gap.max(l.tiling_gap_s().unwrap_or(f64::INFINITY));
            span_bytes += l.transfer_bytes();
            if l.transfer_bytes() == f.size {
                files_bytes_exact += 1;
            }
            if l.status() == Some("done") {
                files_status_done += 1;
            }
        }
    }
    let complete = set.lifelines.iter().filter(|l| l.is_complete()).count();
    let cps = set.critical_paths();
    let stalls = set.detect_stalls(stall_s);

    let mut phase_totals: BTreeMap<&'static str, f64> = BTreeMap::new();
    for l in &set.lifelines {
        for (ph, d) in l.phase_totals() {
            *phase_totals.entry(ph).or_insert(0.0) += d;
        }
    }

    // Unified metrics snapshot: RM + allocator + GridFTP + integrity.
    let mut reg = tb.sim.world.rm.metrics.clone();
    reg.import_alloc(&tb.sim.net.alloc_stats());
    tb.sim.world.gridftp.export_metrics(&mut reg);
    tb.sim.world.rm.integrity.export_metrics(&mut reg);

    let trace_sha = crate::sha_hex(&ulm);
    std::fs::write(&trace_path, &ulm).map_err(|e| format!("write {trace_path}: {e}"))?;

    // The whole committed artifact body is this trial's fragment,
    // byte-format-identical to the old bin.
    let mut json = String::new();
    write!(
        json,
        concat!(
            "{{\n  \"bench\": \"lifeline\",\n  \"seed\": {},\n  \"requests\": {},\n",
            "  \"files\": {},\n  \"lifelines\": {},\n  \"complete\": {},\n",
            "  \"orphans\": {},\n  \"max_tiling_gap_s\": {:.3e},\n",
            "  \"delivered_bytes\": {},\n  \"transfer_span_bytes\": {},\n",
            "  \"roundtrip_identical\": true,\n  \"stall_threshold_s\": {:.0},\n",
            "  \"stalls\": {},\n  \"trace_sha256\": \"{}\",\n"
        ),
        ctx.seed,
        n_requests,
        files_delivered,
        set.lifelines.len(),
        complete,
        set.orphans.len(),
        max_gap,
        delivered_bytes,
        span_bytes,
        stall_s,
        stalls.len(),
        trace_sha,
    )
    .unwrap();
    json.push_str("  \"phase_totals_s\": {");
    for (i, (ph, d)) in phase_totals.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        write!(json, "\"{ph}\": {d:.3}").unwrap();
    }
    json.push_str("},\n  \"critical_paths\": [\n");
    for (i, cp) in cps.iter().enumerate() {
        writeln!(
            json,
            "    {{\"request\": {}, \"file\": \"{}\", \"makespan_s\": {:.3}}}{}",
            cp.request,
            cp.file,
            cp.makespan_s,
            if i + 1 < cps.len() { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("  ],\n  \"metrics\": ");
    json.push_str(&reg.to_json());
    json.push_str("\n}\n");

    let num = |v: f64| MetricValue::Num(v);
    let mut metrics = vec![
        ("requests".into(), num(n_requests as f64)),
        ("requests_done".into(), num(outcomes.len() as f64)),
        ("files".into(), num(n_files as f64)),
        ("files_delivered".into(), num(files_delivered as f64)),
        (
            "files_with_lifeline".into(),
            num(files_with_lifeline as f64),
        ),
        ("files_bytes_exact".into(), num(files_bytes_exact as f64)),
        ("files_status_done".into(), num(files_status_done as f64)),
        ("lifelines".into(), num(set.lifelines.len() as f64)),
        ("lifelines_complete".into(), num(complete as f64)),
        ("orphans".into(), num(set.orphans.len() as f64)),
        ("max_tiling_gap_s".into(), num(max_gap)),
        ("delivered_bytes".into(), num(delivered_bytes as f64)),
        ("transfer_span_bytes".into(), num(span_bytes as f64)),
        (
            "roundtrip_identical".into(),
            num(roundtrip_identical as u64 as f64),
        ),
        ("critical_paths".into(), num(cps.len() as f64)),
        ("stalls".into(), num(stalls.len() as f64)),
        (
            "stalls_open".into(),
            num(stalls.iter().filter(|s| s.open).count() as f64),
        ),
        ("trace_sha256".into(), MetricValue::Str(trace_sha.clone())),
    ];
    // Spec-declared registry metrics ride along under a `reg.` prefix, so
    // gates can target the unified snapshot directly.
    for name in &ctx.spec.metrics {
        if let Some(v) = reg.value(name) {
            metrics.push((format!("reg.{name}"), num(v)));
        }
    }

    Ok(TrialRecord {
        key: TrialKey {
            variant: ctx.variant.clone(),
            seed: ctx.seed,
            rep: ctx.rep,
        },
        metrics,
        timing: vec![("wall_ms".into(), run.wall.as_secs_f64() * 1e3)],
        fragment: Some(json),
        aux: vec![AuxFile {
            path: trace_path,
            sha256: trace_sha,
        }],
    })
}

/// The lifeline artifact is the (single) trial's fragment verbatim.
pub fn assemble(rows: &[TrialRecord]) -> Option<String> {
    rows.first().and_then(|r| r.fragment.clone())
}
