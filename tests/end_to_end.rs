//! Cross-crate integration tests: the whole prototype working together.

use esg::core::{esg_testbed, fetch_and_analyze, standard_synth};
use esg::nws::mds;
use esg::replica::Policy;
use esg::reqman::submit_request;
use esg::simnet::{SimDuration, SimTime};

fn published(seed: u64) -> (esg::core::EsgTestbed, esg::cdms::SynthParams) {
    let mut tb = esg_testbed(seed);
    let synth = standard_synth(32, 5);
    tb.publish_dataset("pcm_b06.61", 32, 8, 10_000_000, &[1, 3]);
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));
    (tb, synth)
}

#[test]
fn full_pipeline_metadata_to_visualization() {
    let (mut tb, synth) = published(1);
    let (outcome, product) = fetch_and_analyze(
        &mut tb,
        "pcm_b06.61",
        "pr",
        (0, 16),
        synth,
        SimTime::from_secs(7200),
    )
    .unwrap();
    assert_eq!(outcome.files.len(), 2);
    assert!(outcome.files.iter().all(|f| f.done));
    // Precipitation is non-negative everywhere.
    assert!(product.stats.min >= 0.0);
    assert!(product.stats.max > 1.0, "somewhere it rains");
    assert!(!product.ascii.is_empty());
}

#[test]
fn concurrent_requests_from_multiple_users() {
    let (mut tb, _) = published(2);
    let collection = tb.sim.world.metadata.collection_of("pcm_b06.61").unwrap();
    let files: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files("pcm_b06.61")
        .unwrap()
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();
    let client = tb.client;
    // Three overlapping requests ("multiple users concurrently", §4).
    for chunk in files.chunks(2) {
        submit_request(&mut tb.sim, client, chunk.to_vec(), |s, o| {
            s.world.outcomes.push(o)
        });
    }
    tb.sim.run_until(SimTime::from_secs(7200));
    assert_eq!(tb.sim.world.outcomes.len(), 2);
    assert!(tb
        .sim
        .world
        .outcomes
        .iter()
        .all(|o| o.files.iter().all(|f| f.done)));
}

#[test]
fn nws_measurements_flow_into_mds_directory() {
    let (mut tb, _) = published(3);
    // Publish NWS forecasts into the MDS directory, then read them back
    // the way the request manager's §5 description says it does.
    let pairs: Vec<_> = tb.sites.iter().map(|s| (s.node, tb.client)).collect();
    let names: std::collections::HashMap<_, _> = tb
        .sites
        .iter()
        .map(|s| (s.node, s.host.clone()))
        .chain(std::iter::once((tb.client, "vcdat.desktop".to_string())))
        .collect();
    let name_of = move |n: esg::simnet::NodeId| names[&n].clone();
    let mds_dir = &mut tb.sim.world.mds;
    mds::publish(&tb.sim.world.nws, &pairs, &name_of, mds_dir);
    let bw = mds::lookup_bandwidth(&tb.sim.world.mds, "pcmdi.llnl.gov", "vcdat.desktop");
    assert!(bw.is_some(), "LLNL forecast published to MDS");
    assert!(bw.unwrap() > 0.0);
}

#[test]
fn policy_choice_changes_selection_behaviour() {
    // With BestBandwidth, the faster (622 Mb/s access) LLNL site should
    // win over the 155 Mb/s ISI site for nearly all requests.
    let (mut tb, _) = published(4);
    tb.sim.world.rm.selector = esg::replica::ReplicaSelector::new(Policy::BestBandwidth, 9);
    let collection = tb.sim.world.metadata.collection_of("pcm_b06.61").unwrap();
    let files: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files("pcm_b06.61")
        .unwrap()
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();
    let client = tb.client;
    submit_request(&mut tb.sim, client, files, |s, o| s.world.outcomes.push(o));
    tb.sim.run_until(SimTime::from_secs(7200));
    let o = &tb.sim.world.outcomes[0];
    // publish_dataset placed replicas at sites[1] (LLNL) and sites[3] (ANL,
    // same 622 Mb/s access but 25 ms away): NWS should prefer LLNL.
    let llnl_picks = o
        .files
        .iter()
        .filter(|f| f.replica_host.as_deref() == Some("pcmdi.llnl.gov"))
        .count();
    assert!(
        llnl_picks * 2 >= o.files.len(),
        "BestBandwidth should mostly pick the fast close site: {llnl_picks}/{}",
        o.files.len()
    );
}

#[test]
fn netlogger_ulm_export_captures_the_run() {
    let (mut tb, synth) = published(5);
    fetch_and_analyze(
        &mut tb,
        "pcm_b06.61",
        "tas",
        (0, 8),
        synth,
        SimTime::from_secs(7200),
    )
    .unwrap();
    let ulm = tb.sim.world.rm.log.to_ulm();
    assert!(ulm.contains("EVNT=rm.request.submit"));
    assert!(ulm.contains("EVNT=rm.replica.selected"));
    assert!(ulm.contains("EVNT=rm.file.complete"));
    assert!(ulm.contains("EVNT=rm.request.complete"));
    // Timestamps are monotone.
    let times: Vec<f64> = ulm
        .lines()
        .filter_map(|l| l.strip_prefix("DATE=")?.split(' ').next()?.parse().ok())
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn tape_resident_data_is_slower_but_cached_after() {
    let mut tb = esg_testbed(6);
    tb.publish_dataset("deep_archive", 8, 8, 12_500_000, &[0]); // HPSS site only
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));
    let collection = tb.sim.world.metadata.collection_of("deep_archive").unwrap();
    let file = tb.sim.world.metadata.all_files("deep_archive").unwrap()[0]
        .name
        .clone();
    let client = tb.client;
    submit_request(
        &mut tb.sim,
        client,
        vec![(collection.clone(), file.clone())],
        |s, o| s.world.outcomes.push(o),
    );
    tb.sim.run_until(SimTime::from_secs(7200));
    let cold = {
        let o = &tb.sim.world.outcomes[0];
        o.finished.since(o.started).as_secs_f64()
    };
    submit_request(&mut tb.sim, client, vec![(collection, file)], |s, o| {
        s.world.outcomes.push(o)
    });
    tb.sim.run_until(SimTime::from_secs(14_400));
    let warm = {
        let o = &tb.sim.world.outcomes[1];
        o.finished.since(o.started).as_secs_f64()
    };
    assert!(
        cold > 60.0,
        "cold read must pay tape mount+seek+stream: {cold}"
    );
    assert!(
        warm < cold / 3.0,
        "second read hits the HRM disk cache: {cold} vs {warm}"
    );
}

#[test]
fn gsi_secured_end_to_end_identity_flow() {
    // The security layer end to end: user delegates to the RM's proxy,
    // the proxy authenticates to a storage server, identities hold.
    use esg::gsi::{mutual_authenticate, CertificateAuthority};
    let ca = CertificateAuthority::new("/O=ESG/CN=CA", b"root");
    let user = ca.issue("/O=ESG/CN=climate-scientist", 0, 86_400);
    let server = ca.issue("/O=ESG/CN=gridftp.llnl.gov", 0, 86_400);
    // User delegates a 1-hour proxy to the request manager.
    let rm_proxy = user.delegate(0, 3_600, b"request-manager").unwrap();
    let user_secret = user.secret;
    let (client_id, server_id, keys) = mutual_authenticate(
        &rm_proxy,
        &server,
        &ca,
        100,
        &|s| (s.0 == "/O=ESG/CN=climate-scientist").then_some(user_secret),
        b"rm-to-llnl",
    )
    .unwrap();
    assert_eq!(client_id.0, "/O=ESG/CN=climate-scientist");
    assert_eq!(server_id.0, "/O=ESG/CN=gridftp.llnl.gov");
    // And the session keys protect a data channel.
    let (mut tx, mut rx) = esg::gsi::channel_pair(&keys, esg::gsi::Protection::Private);
    let sealed = tx.seal(b"climate bytes");
    assert_eq!(rx.open(&sealed).unwrap(), b"climate bytes");
}

#[test]
fn monitor_polls_do_not_force_recomputes() {
    // Regression: the RM monitor loop polls progress every few seconds via
    // transfer_bytes/transfer_rate/transfer_stalled. Those are read-only
    // queries — during a steady transfer (ramps finished, nothing dirty)
    // they must not trigger any allocation recomputes. Before the
    // incremental allocator, every poll forced a full solve.
    let mut tb = esg_testbed(9);
    // One 20 GB file on a disk site: long enough to straddle the window.
    tb.publish_dataset("steady.b06", 8, 8, 2_500_000_000, &[1]);
    let collection = tb.sim.world.metadata.collection_of("steady.b06").unwrap();
    let file = tb.sim.world.metadata.all_files("steady.b06").unwrap()[0]
        .name
        .clone();
    let client = tb.client;
    tb.sim.run_until(SimTime::from_secs(50));
    submit_request(&mut tb.sim, client, vec![(collection, file)], |s, o| {
        s.world.outcomes.push(o)
    });
    // Let connection setup and the slow-start ramp finish.
    tb.sim.run_until(SimTime::from_secs(120));
    assert!(
        tb.sim.world.outcomes.is_empty(),
        "transfer finished before the steady window; grow the file"
    );
    let before = tb.sim.net.alloc_stats();
    // ~20 poll intervals of steady transfer.
    tb.sim.run_until(SimTime::from_secs(180));
    assert!(
        tb.sim.world.outcomes.is_empty(),
        "transfer finished inside the steady window; grow the file"
    );
    let after = tb.sim.net.alloc_stats();
    assert_eq!(
        after.recompute_passes, before.recompute_passes,
        "monitor polls forced allocation recomputes during a steady transfer"
    );
    assert_eq!(after.components_solved, before.components_solved);
    // Sanity: the transfer is actually moving.
    tb.sim.run_until(SimTime::from_secs(7200));
    assert_eq!(tb.sim.world.outcomes.len(), 1);
    assert!(tb.sim.world.outcomes[0].files.iter().all(|f| f.done));
}
