//! Criterion micro-benchmarks over the hot components: the crypto the GSI
//! layer runs per block, the EBLOCK codec on the data path, restart-marker
//! bookkeeping, the max-min fair allocator, and ESG1 serialization.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("gsi-crypto");
    let data = vec![0xabu8; 64 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_64k", |b| {
        b.iter(|| esg_gsi::sha256(black_box(&data)))
    });
    g.bench_function("hmac_sha256_64k", |b| {
        b.iter(|| esg_gsi::hmac_sha256(b"key", black_box(&data)))
    });
    g.bench_function("chacha20_64k", |b| {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let mut buf = data.clone();
        b.iter(|| {
            esg_gsi::chacha20::chacha20_xor(&key, &nonce, 0, black_box(&mut buf));
        })
    });
    g.finish();

    c.bench_function("gsi-handshake", |b| {
        let ca = esg_gsi::CertificateAuthority::new("/CN=CA", b"seed");
        let alice = ca.issue("/CN=alice", 0, 3600);
        let bob = ca.issue("/CN=bob", 0, 3600);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            esg_gsi::mutual_authenticate(&alice, &bob, &ca, 0, &|_| None, &i.to_be_bytes()).unwrap()
        })
    });
}

fn bench_seal(c: &mut Criterion) {
    let keys = esg_gsi::SessionKeys {
        integrity: [1u8; 32],
        confidentiality: [2u8; 32],
    };
    let payload = vec![0x55u8; 64 * 1024];
    let mut g = c.benchmark_group("secure-channel");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for prot in [esg_gsi::Protection::Safe, esg_gsi::Protection::Private] {
        let name = format!("{prot:?}").to_lowercase();
        g.bench_function(format!("seal_open_64k_{name}"), |b| {
            b.iter(|| {
                let (mut tx, mut rx) = esg_gsi::channel_pair(&keys, prot);
                let sealed = tx.seal(black_box(&payload));
                rx.open(&sealed).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_eblock(c: &mut Criterion) {
    use esg_gridftp::eblock;
    let payload = vec![0u8; 64 * 1024];
    let mut g = c.benchmark_group("eblock");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("write_read_64k_block", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(payload.len() + 32);
            eblock::write_block(&mut buf, 12_345, black_box(&payload)).unwrap();
            let mut r = buf.as_slice();
            eblock::read_block(&mut r, 1 << 20).unwrap()
        })
    });
    g.finish();

    c.bench_function("round_robin_blocks_2gb_32way", |b| {
        b.iter(|| eblock::round_robin_blocks(0, 2_000_000_000, 64 * 1024, black_box(32)))
    });
}

fn bench_ranges(c: &mut Criterion) {
    c.bench_function("rangeset_1000_interleaved_inserts", |b| {
        b.iter(|| {
            let mut set = esg_gridftp::RangeSet::new();
            // 4 parallel streams' worth of interleaved 64 KB blocks.
            for stream in 0..4u64 {
                for i in 0..250u64 {
                    let start = (i * 4 + stream) * 65_536;
                    set.insert(start, start + 65_536);
                }
            }
            black_box(set.is_complete(1000 * 65_536))
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    use esg_simnet::allocation::{max_min_fair, AllocFlow};
    // 64 flows over 24 resources: a busy Table-1-scale allocation problem.
    let caps: Vec<f64> = (0..24).map(|i| 1e8 + (i as f64) * 1e6).collect();
    let flows: Vec<AllocFlow> = (0..64)
        .map(|i| AllocFlow {
            resources: vec![i % 24, (i * 7 + 3) % 24, (i * 13 + 5) % 24],
            cap: 2e6 + (i as f64) * 1e4,
        })
        .collect();
    c.bench_function("max_min_fair_64f_24r", |b| {
        b.iter(|| max_min_fair(black_box(&caps), black_box(&flows)))
    });
}

fn bench_ncio(c: &mut Criterion) {
    let ds = esg_cdms::generate(
        "bench",
        esg_cdms::SynthParams {
            lat_points: 32,
            lon_points: 64,
            time_steps: 8,
            hours_per_step: 6.0,
            seed: 1,
        },
    );
    let bytes = esg_cdms::to_bytes(&ds);
    let mut g = c.benchmark_group("ncio");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize", |b| {
        b.iter(|| esg_cdms::to_bytes(black_box(&ds)))
    });
    g.bench_function("deserialize", |b| {
        b.iter(|| esg_cdms::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto,
        bench_seal,
        bench_eblock,
        bench_ranges,
        bench_allocation,
        bench_ncio
}
criterion_main!(benches);
