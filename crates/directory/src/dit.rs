//! The Directory Information Tree: an in-process LDAP-like store.
//!
//! Supports the operations the ESG prototype issues against its OpenLDAP
//! servers: add/modify/delete entries, lookup by DN, and scoped searches
//! (base / one-level / subtree) with RFC 2254-style filters.

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;
use std::collections::BTreeMap;

/// Search scope, mirroring LDAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the base entry itself.
    Base,
    /// Direct children of the base.
    OneLevel,
    /// The base and everything beneath it.
    Subtree,
}

/// Errors from directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirError {
    AlreadyExists(Dn),
    NoSuchEntry(Dn),
    /// Adding an entry whose parent doesn't exist.
    NoSuchParent(Dn),
    /// Deleting an entry that still has children.
    NotLeaf(Dn),
}

impl std::fmt::Display for DirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirError::AlreadyExists(dn) => write!(f, "entry already exists: {dn}"),
            DirError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DirError::NoSuchParent(dn) => write!(f, "parent does not exist: {dn}"),
            DirError::NotLeaf(dn) => write!(f, "entry has children: {dn}"),
        }
    }
}

impl std::error::Error for DirError {}

/// Sort key: DNs ordered by (depth, reversed-rdn-path) so that a subtree is
/// contiguous... simpler: store by normalized string key and filter. The
/// directory is small (thousands of entries), so linear scans on search are
/// acceptable and keep the code obviously correct.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    entries: BTreeMap<String, Entry>,
}

fn key(dn: &Dn) -> String {
    // Reverse the RDN order so ancestors are string prefixes of descendants.
    let mut parts: Vec<String> = dn
        .rdns
        .iter()
        .rev()
        .map(|r| format!("{}={}", r.attr, r.value.to_ascii_lowercase()))
        .collect();
    parts.insert(0, String::new()); // leading separator
    let mut k = parts.join("\u{1}");
    // Trailing separator so `lc=co2 1998` is never a prefix of its sibling
    // `lc=co2 1998 extra`, only of true descendants.
    k.push('\u{1}');
    k
}

impl Directory {
    pub fn new() -> Self {
        Directory::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add an entry. The parent must exist (except for depth-1 suffixes,
    /// which act as naming-context roots).
    pub fn add(&mut self, entry: Entry) -> Result<(), DirError> {
        let k = key(&entry.dn);
        if self.entries.contains_key(&k) {
            return Err(DirError::AlreadyExists(entry.dn));
        }
        if entry.dn.depth() > 1 {
            let parent = entry.dn.parent().unwrap();
            if !self.entries.contains_key(&key(&parent)) {
                return Err(DirError::NoSuchParent(parent));
            }
        }
        self.entries.insert(k, entry);
        Ok(())
    }

    /// Add an entry, creating any missing ancestors as bare entries.
    pub fn add_with_ancestors(&mut self, entry: Entry) -> Result<(), DirError> {
        let mut missing = Vec::new();
        let mut cur = entry.dn.parent();
        while let Some(dn) = cur {
            if dn.is_root() || self.entries.contains_key(&key(&dn)) {
                break;
            }
            missing.push(dn.clone());
            cur = dn.parent();
        }
        for dn in missing.into_iter().rev() {
            self.entries.insert(key(&dn), Entry::new(dn));
        }
        self.add(entry)
    }

    /// Fetch an entry by DN.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(&key(dn))
    }

    /// Mutable access for modify operations.
    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Entry> {
        self.entries.get_mut(&key(dn))
    }

    /// Apply a modification closure to an entry.
    pub fn modify(&mut self, dn: &Dn, f: impl FnOnce(&mut Entry)) -> Result<(), DirError> {
        match self.entries.get_mut(&key(dn)) {
            Some(e) => {
                f(e);
                Ok(())
            }
            None => Err(DirError::NoSuchEntry(dn.clone())),
        }
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<Entry, DirError> {
        if !self.entries.contains_key(&key(dn)) {
            return Err(DirError::NoSuchEntry(dn.clone()));
        }
        if self.children(dn).next().is_some() {
            return Err(DirError::NotLeaf(dn.clone()));
        }
        Ok(self.entries.remove(&key(dn)).unwrap())
    }

    /// Delete an entry and its whole subtree; returns how many entries went.
    pub fn delete_subtree(&mut self, dn: &Dn) -> usize {
        let prefix = key(dn);
        let keys: Vec<String> = self
            .entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect();
        let n = keys.len();
        for k in keys {
            self.entries.remove(&k);
        }
        n
    }

    /// Direct children of a DN.
    pub fn children<'a>(&'a self, dn: &Dn) -> impl Iterator<Item = &'a Entry> + 'a {
        let parent = dn.clone();
        self.subtree_iter(dn)
            .filter(move |e| e.dn.is_child_of(&parent))
    }

    fn subtree_iter<'a>(&'a self, dn: &Dn) -> impl Iterator<Item = &'a Entry> + 'a {
        let prefix = key(dn);
        self.entries
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(&prefix))
            .map(|(_, e)| e)
    }

    /// Scoped, filtered search from `base`.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<&Entry> {
        match scope {
            Scope::Base => self
                .get(base)
                .into_iter()
                .filter(|e| filter.matches(e))
                .collect(),
            Scope::OneLevel => self.children(base).filter(|e| filter.matches(e)).collect(),
            Scope::Subtree => self
                .subtree_iter(base)
                .filter(|e| filter.matches(e))
                .collect(),
        }
    }

    /// All entries (tests, dumps).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Directory {
        let mut d = Directory::new();
        d.add(Entry::new(Dn::parse("o=Grid").unwrap())).unwrap();
        d.add(
            Entry::new(Dn::parse("rc=ESG, o=Grid").unwrap())
                .with("objectclass", "GlobusReplicaCatalog"),
        )
        .unwrap();
        d.add(
            Entry::new(Dn::parse("lc=CO2 1998, rc=ESG, o=Grid").unwrap())
                .with("objectclass", "GlobusReplicaLogicalCollection")
                .with("filename", "jan.nc")
                .with("filename", "feb.nc"),
        )
        .unwrap();
        d.add(
            Entry::new(Dn::parse("lc=CO2 1999, rc=ESG, o=Grid").unwrap())
                .with("objectclass", "GlobusReplicaLogicalCollection")
                .with("filename", "mar.nc"),
        )
        .unwrap();
        d.add(
            Entry::new(Dn::parse("loc=jupiter, lc=CO2 1998, rc=ESG, o=Grid").unwrap())
                .with("objectclass", "GlobusReplicaLocation")
                .with("host", "jupiter.isi.edu"),
        )
        .unwrap();
        d
    }

    #[test]
    fn add_get_round_trip() {
        let d = grid();
        let e = d
            .get(&Dn::parse("lc=CO2 1998, rc=ESG, o=Grid").unwrap())
            .unwrap();
        assert_eq!(e.values("filename").len(), 2);
    }

    #[test]
    fn dn_lookup_is_case_insensitive_in_attrs() {
        let d = grid();
        assert!(d
            .get(&Dn::parse("LC=CO2 1998, RC=ESG, O=Grid").unwrap())
            .is_some());
    }

    #[test]
    fn parent_required() {
        let mut d = Directory::new();
        let err = d
            .add(Entry::new(Dn::parse("a=1, b=2").unwrap()))
            .unwrap_err();
        assert!(matches!(err, DirError::NoSuchParent(_)));
    }

    #[test]
    fn add_with_ancestors_creates_path() {
        let mut d = Directory::new();
        d.add_with_ancestors(Entry::new(Dn::parse("a=1, b=2, c=3").unwrap()))
            .unwrap();
        assert_eq!(d.len(), 3);
        assert!(d.get(&Dn::parse("b=2, c=3").unwrap()).is_some());
    }

    #[test]
    fn duplicate_rejected() {
        let mut d = grid();
        let err = d
            .add(Entry::new(Dn::parse("rc=ESG, o=Grid").unwrap()))
            .unwrap_err();
        assert!(matches!(err, DirError::AlreadyExists(_)));
    }

    #[test]
    fn scoped_searches() {
        let d = grid();
        let base = Dn::parse("rc=ESG, o=Grid").unwrap();
        let any = Filter::parse("(objectclass=*)").unwrap();
        assert_eq!(d.search(&base, Scope::Base, &any).len(), 1);
        assert_eq!(d.search(&base, Scope::OneLevel, &any).len(), 2);
        assert_eq!(d.search(&base, Scope::Subtree, &any).len(), 4);
    }

    #[test]
    fn filtered_search() {
        let d = grid();
        let base = Dn::parse("o=Grid").unwrap();
        let f = Filter::parse("(filename=jan.nc)").unwrap();
        let hits = d.search(&base, Scope::Subtree, &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn.to_string(), "lc=CO2 1998, rc=ESG, o=Grid");
    }

    #[test]
    fn sibling_prefix_names_do_not_collide() {
        // "lc=CO2 1998" and a hypothetical "lc=CO2 1998 extra" must not be
        // confused by the prefix-based subtree scan.
        let mut d = grid();
        d.add(
            Entry::new(Dn::parse("lc=CO2 1998 extra, rc=ESG, o=Grid").unwrap())
                .with("objectclass", "GlobusReplicaLogicalCollection"),
        )
        .unwrap();
        let base = Dn::parse("lc=CO2 1998, rc=ESG, o=Grid").unwrap();
        let any = Filter::parse("(objectclass=*)").unwrap();
        // Subtree of "CO2 1998" should contain itself + its location child,
        // NOT the "CO2 1998 extra" sibling.
        let hits = d.search(&base, Scope::Subtree, &any);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn modify_in_place() {
        let mut d = grid();
        let dn = Dn::parse("lc=CO2 1999, rc=ESG, o=Grid").unwrap();
        d.modify(&dn, |e| e.add("filename", "apr.nc")).unwrap();
        assert_eq!(d.get(&dn).unwrap().values("filename").len(), 2);
        let missing = Dn::parse("lc=nope, rc=ESG, o=Grid").unwrap();
        assert!(d.modify(&missing, |_| ()).is_err());
    }

    #[test]
    fn delete_rules() {
        let mut d = grid();
        let parent = Dn::parse("lc=CO2 1998, rc=ESG, o=Grid").unwrap();
        assert!(matches!(d.delete(&parent), Err(DirError::NotLeaf(_))));
        let child = Dn::parse("loc=jupiter, lc=CO2 1998, rc=ESG, o=Grid").unwrap();
        d.delete(&child).unwrap();
        d.delete(&parent).unwrap();
        assert!(d.get(&parent).is_none());
    }

    #[test]
    fn delete_subtree_counts() {
        let mut d = grid();
        let n = d.delete_subtree(&Dn::parse("rc=ESG, o=Grid").unwrap());
        assert_eq!(n, 4);
        assert_eq!(d.len(), 1); // o=Grid remains
    }

    #[test]
    fn children_iterator() {
        let d = grid();
        let base = Dn::parse("rc=ESG, o=Grid").unwrap();
        let names: Vec<String> = d.children(&base).map(|e| e.dn.to_string()).collect();
        assert_eq!(names.len(), 2);
        assert!(names.iter().all(|n| n.contains("lc=CO2")));
    }
}
