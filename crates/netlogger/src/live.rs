//! Online lifeline analysis: the streaming half of the observability plane.
//!
//! [`LifelineSet::from_log`] is a post-hoc pass — it needs the whole trace
//! before it can say where a file's time went. [`LiveLifelines`] is the same
//! analysis run *while the trace is being written*: the request manager's
//! [`TracedLog`](crate::trace::TracedLog) taps every event it records into
//! [`LiveLifelines::observe`], which feeds the exact same
//! `SpanCollector` the offline pass uses (same parse, same grouping on
//! [`snapshot`](LiveLifelines::snapshot)) *plus* cheap incremental state the
//! offline pass cannot offer mid-run:
//!
//! * the set of currently-open spans with ages ([`open_spans`],
//!   [`oldest_open`], [`open_phase_of`]) — what a monitor needs to say
//!   "file X has sat in `stage` for 212 s";
//! * per-(request, file) closed-phase totals accumulated at span close
//!   ([`file_phase_totals`]), matching [`Lifeline::phase_totals`] for every
//!   attached lifeline;
//! * a count of live-fired stall probes ([`note_stall_fired`]).
//!
//! Byte-identity with the offline pass is structural: `snapshot()` calls the
//! same `assemble()` over the same collector state, so phase totals,
//! critical paths, stall sets and tiling verdicts are bit-for-bit those of
//! `LifelineSet::from_log` over the full trace — `tests/observability.rs`
//! and the `tests/live_lifeline.rs` proptest pin it against real faulted
//! runs.
//!
//! [`open_spans`]: LiveLifelines::open_spans
//! [`oldest_open`]: LiveLifelines::oldest_open
//! [`open_phase_of`]: LiveLifelines::open_phase_of
//! [`file_phase_totals`]: LiveLifelines::file_phase_totals
//! [`note_stall_fired`]: LiveLifelines::note_stall_fired

use crate::event::LogEvent;
use crate::lifeline::{LifelineSet, SpanCollector};
use crate::trace::Phase;
use esg_simnet::SimTime;
use std::collections::BTreeMap;

/// A currently-open span, as tracked incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSpan {
    pub span: u64,
    pub phase: Phase,
    pub request: Option<u64>,
    pub file: Option<String>,
    pub start: SimTime,
}

impl OpenSpan {
    /// How long the span has been open as of `now`.
    pub fn age_s(&self, now: SimTime) -> f64 {
        now.since(self.start).as_secs_f64()
    }
}

/// Incremental span-tree builder fed event-by-event as a run executes.
#[derive(Debug, Clone, Default)]
pub struct LiveLifelines {
    collector: SpanCollector,
    /// Open span id → details, kept sorted by id (= open order: span ids
    /// are allocated sequentially by `TracedLog`).
    open: BTreeMap<u64, OpenSpan>,
    /// Root File span id → (request, file), for attributing child closes.
    roots: BTreeMap<u64, (u64, String)>,
    /// (request, file) → closed phase totals in seconds, accumulated at
    /// span close — the streaming mirror of [`Lifeline::phase_totals`].
    ///
    /// [`Lifeline::phase_totals`]: crate::lifeline::Lifeline::phase_totals
    totals: BTreeMap<(u64, String), BTreeMap<&'static str, f64>>,
    events_seen: u64,
    spans_closed: u64,
    stalls_fired: u64,
}

impl LiveLifelines {
    pub fn new() -> LiveLifelines {
        LiveLifelines::default()
    }

    /// Feed one event. Non-span events still advance the trace horizon
    /// (`trace_end`), exactly as the offline pass scans them.
    pub fn observe(&mut self, e: &LogEvent) {
        self.events_seen += 1;
        let is_span = e.name == "span.start" || e.name == "span.end";
        let id = e.get_num("span").map(|x| x as u64);
        self.collector.observe(e);
        let (true, Some(id)) = (is_span, id) else {
            return;
        };
        if e.name == "span.start" {
            // The collector just parsed the span; mirror it into the
            // incremental indexes from its canonical parsed form.
            if let Some(s) = self.collector.span(id) {
                if s.end.is_none() {
                    self.open.insert(
                        id,
                        OpenSpan {
                            span: id,
                            phase: s.phase,
                            request: s.request,
                            file: s.file.clone(),
                            start: s.start,
                        },
                    );
                    if s.phase == Phase::File {
                        if let (Some(r), Some(f)) = (s.request, s.file.clone()) {
                            self.roots.insert(id, (r, f));
                        }
                    }
                }
            }
        } else if let Some(done) = self.open.remove(&id) {
            self.spans_closed += 1;
            self.credit_close(&done, e.time);
        }
        // end-without-start: the collector already recorded the orphan.
    }

    /// Accumulate a closed child phase span into its lifeline's totals,
    /// matching the offline attribution: only children whose parent is a
    /// root File span with both request and file count.
    fn credit_close(&mut self, done: &OpenSpan, end: SimTime) {
        if matches!(done.phase, Phase::File | Phase::Prestage | Phase::Campaign) {
            return;
        }
        let Some(parent) = self.collector.span(done.span).map(|s| s.parent) else {
            return;
        };
        let Some(key) = self.roots.get(&parent).cloned() else {
            return;
        };
        *self
            .totals
            .entry(key)
            .or_default()
            .entry(done.phase.as_str())
            .or_insert(0.0) += end.since(done.start).as_secs_f64();
    }

    /// The full offline-equivalent analysis of everything observed so far:
    /// the same `assemble()` grouping pass `LifelineSet::from_log` runs, so
    /// every downstream product (phase totals, critical paths,
    /// `detect_stalls`, `is_complete` tiling) is byte-identical to the
    /// offline pass over the same events.
    pub fn snapshot(&self) -> LifelineSet {
        self.collector.assemble()
    }

    /// Time of the latest event observed (the live "now" of the trace).
    pub fn trace_end(&self) -> SimTime {
        self.collector.trace_end()
    }

    /// Is this span currently open?
    pub fn is_open(&self, span: u64) -> bool {
        self.open.contains_key(&span)
    }

    /// Currently-open spans in open order.
    pub fn open_spans(&self) -> impl Iterator<Item = &OpenSpan> {
        self.open.values()
    }

    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// The longest-open span, excluding root/umbrella spans (File,
    /// Prestage, Campaign) when `phases_only` — those are open for a file's
    /// whole lifetime by design and would drown the signal.
    pub fn oldest_open(&self, phases_only: bool) -> Option<&OpenSpan> {
        self.open
            .values()
            .filter(|s| {
                !phases_only || !matches!(s.phase, Phase::File | Phase::Prestage | Phase::Campaign)
            })
            .min_by_key(|s| (s.start, s.span))
    }

    /// The currently-open *phase* span of a named file (any request), for
    /// monitor straggler annotation. Root File spans are skipped: the
    /// answer is "what is this file doing right now", not "it exists".
    pub fn open_phase_of(&self, file: &str) -> Option<&OpenSpan> {
        self.open
            .values()
            .filter(|s| {
                s.file.as_deref() == Some(file)
                    && !matches!(s.phase, Phase::File | Phase::Prestage | Phase::Campaign)
            })
            .min_by_key(|s| (s.start, s.span))
    }

    /// Closed-phase totals for one lifeline, accumulated incrementally.
    pub fn file_phase_totals(
        &self,
        request: u64,
        file: &str,
    ) -> Option<&BTreeMap<&'static str, f64>> {
        self.totals.get(&(request, file.to_string()))
    }

    /// All incremental per-lifeline totals, keyed (request, file).
    pub fn all_phase_totals(&self) -> &BTreeMap<(u64, String), BTreeMap<&'static str, f64>> {
        &self.totals
    }

    /// Open spans older than `threshold_s` as of the live trace horizon —
    /// the cheap mid-run stall query (same strict `>` the offline detector
    /// applies, restricted to what can be known without the trace's end).
    pub fn open_stalls(&self, threshold_s: f64) -> Vec<&OpenSpan> {
        let now = self.trace_end();
        self.open
            .values()
            .filter(|s| {
                !matches!(s.phase, Phase::File | Phase::Campaign) && s.age_s(now) > threshold_s
            })
            .collect()
    }

    /// Record that a live stall probe fired `obs.stall` (called by the
    /// request manager's detector so displays can show a running count).
    pub fn note_stall_fired(&mut self) {
        self.stalls_fired += 1;
    }

    pub fn stalls_fired(&self) -> u64 {
        self.stalls_fired
    }

    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    pub fn spans_closed(&self) -> u64 {
        self.spans_closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceCtx, TracedLog};
    use esg_simnet::SimTime;

    /// Two files in one request, interleaved with non-decreasing event
    /// times (as a real run emits them); f2 is left open mid-transfer.
    fn sample() -> TracedLog {
        let mut log = TracedLog::new();
        let c1 = TraceCtx::request(7).with_file("f1");
        let c2 = TraceCtx::request(7).with_file("f2");
        let r1 = log.span_start(&c1, SimTime::ZERO, Phase::File, None);
        let q1 = log.span_start(&c1, SimTime::ZERO, Phase::Queue, Some(r1));
        let r2 = log.span_start(&c2, SimTime::ZERO, Phase::File, None);
        let q2 = log.span_start(&c2, SimTime::ZERO, Phase::Queue, Some(r2));
        log.span_end(&c1, SimTime::from_secs(3), q1, Phase::Queue, vec![]);
        let t1 = log.span_start(&c1, SimTime::from_secs(3), Phase::Transfer, Some(r1));
        log.span_end(&c2, SimTime::from_secs(3), q2, Phase::Queue, vec![]);
        let _t2 = log.span_start(&c2, SimTime::from_secs(3), Phase::Transfer, Some(r2));
        log.span_end(
            &c1,
            SimTime::from_secs(10),
            t1,
            Phase::Transfer,
            vec![("bytes", 500u64.into())],
        );
        log.span_end(
            &c1,
            SimTime::from_secs(10),
            r1,
            Phase::File,
            vec![("status", "done".into())],
        );
        log
    }

    fn feed(log: &TracedLog) -> LiveLifelines {
        let mut live = LiveLifelines::new();
        for e in log.iter() {
            live.observe(e);
        }
        live
    }

    #[test]
    fn snapshot_matches_offline_pass() {
        let log = sample();
        let live = feed(&log);
        let offline = LifelineSet::from_log(&log);
        let snap = live.snapshot();
        assert_eq!(snap.lifelines.len(), offline.lifelines.len());
        assert_eq!(snap.orphans, offline.orphans);
        assert_eq!(snap.trace_end, offline.trace_end);
        for (a, b) in snap.lifelines.iter().zip(&offline.lifelines) {
            assert_eq!((a.request, &a.file), (b.request, &b.file));
            assert_eq!(a.phase_totals(), b.phase_totals());
            assert_eq!(a.is_complete(), b.is_complete());
        }
    }

    #[test]
    fn open_span_tracking() {
        let log = sample();
        let live = feed(&log);
        // f2's root + transfer still open.
        assert_eq!(live.open_count(), 2);
        let oldest = live.oldest_open(true).unwrap();
        assert_eq!(oldest.phase, Phase::Transfer);
        assert_eq!(oldest.file.as_deref(), Some("f2"));
        assert_eq!(oldest.age_s(SimTime::from_secs(10)), 7.0);
        let open = live.open_phase_of("f2").unwrap();
        assert_eq!(open.phase, Phase::Transfer);
        assert!(live.open_phase_of("f1").is_none());
    }

    #[test]
    fn incremental_totals_match_lifeline_totals() {
        let log = sample();
        let live = feed(&log);
        let offline = LifelineSet::from_log(&log);
        let l = offline.lifeline(7, "f1").unwrap();
        assert_eq!(live.file_phase_totals(7, "f1").unwrap(), &l.phase_totals());
        // f2's transfer never closed: only the queue phase is credited,
        // exactly like the offline closed-only sum.
        let l2 = offline.lifeline(7, "f2").unwrap();
        assert_eq!(live.file_phase_totals(7, "f2").unwrap(), &l2.phase_totals());
    }

    #[test]
    fn open_stalls_respect_threshold() {
        let log = sample();
        let live = feed(&log);
        // trace_end = 10; f2's transfer opened at 3 → age 7.
        let stalls = live.open_stalls(5.0);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].phase, Phase::Transfer);
        assert!(live.open_stalls(8.0).is_empty());
    }
}
