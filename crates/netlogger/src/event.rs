//! NetLogger-style structured events.
//!
//! NetLogger [Gunter et al., 2000] records timestamped key-value events from
//! every component of a distributed system and correlates them afterwards —
//! it produced the paper's Figure 8. We reproduce its event model: an event
//! has a time, a dotted event name (`gridftp.transfer.start`), and a flat
//! set of string/number fields.

use esg_simnet::SimTime;
use std::fmt;

/// A field value: NetLogger fields are strings or numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Int(i64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(x) => write!(f, "{x}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    pub time: SimTime,
    pub name: String,
    pub fields: Vec<(String, Value)>,
}

impl LogEvent {
    pub fn new(time: SimTime, name: impl Into<String>) -> Self {
        LogEvent {
            time,
            name: name.into(),
            fields: Vec::new(),
        }
    }

    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::Str(_) => None,
        }
    }

    /// NetLogger ULM text format:
    /// `DATE=<secs> EVNT=<name> KEY=VALUE ...`
    pub fn to_ulm(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        write!(s, "DATE={:.6} EVNT={}", self.time.as_secs_f64(), self.name).unwrap();
        for (k, v) in &self.fields {
            write!(s, " {}={}", k.to_uppercase(), v).unwrap();
        }
        s
    }
}

/// An append-only event log with simple queries.
#[derive(Debug, Default, Clone)]
pub struct NetLog {
    events: Vec<LogEvent>,
}

impl NetLog {
    pub fn new() -> Self {
        NetLog::default()
    }

    pub fn push(&mut self, event: LogEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time <= event.time),
            "events must be appended in time order"
        );
        self.events.push(event);
    }

    pub fn log(&mut self, time: SimTime, name: impl Into<String>) -> &mut Self {
        self.push(LogEvent::new(time, name));
        self
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &LogEvent> {
        self.events.iter()
    }

    /// Events with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a LogEvent> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Events in the half-open interval `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &LogEvent> {
        self.events
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// Export everything in NetLogger's ULM text format.
    pub fn to_ulm(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_ulm());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_getters() {
        let e = LogEvent::new(SimTime::from_secs(1), "gridftp.transfer.start")
            .field("host", "dallas0")
            .field("bytes", 2_000_000_000u64)
            .field("rate", 55.5);
        assert_eq!(e.get("host"), Some(&Value::Str("dallas0".into())));
        assert_eq!(e.get_num("bytes"), Some(2e9));
        assert_eq!(e.get_num("rate"), Some(55.5));
        assert_eq!(e.get_num("host"), None);
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn ulm_format() {
        let e = LogEvent::new(SimTime::from_secs_f64(1.5), "x.y").field("n", 3u64);
        assert_eq!(e.to_ulm(), "DATE=1.500000 EVNT=x.y N=3");
    }

    #[test]
    fn log_queries() {
        let mut log = NetLog::new();
        for i in 0..10u64 {
            let name = if i % 2 == 0 { "even" } else { "odd" };
            log.push(LogEvent::new(SimTime::from_secs(i), name).field("i", i));
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.named("even").count(), 5);
        assert_eq!(
            log.between(SimTime::from_secs(2), SimTime::from_secs(5))
                .count(),
            3
        );
    }

    #[test]
    fn ulm_export_lines() {
        let mut log = NetLog::new();
        log.log(SimTime::ZERO, "a");
        log.log(SimTime::from_secs(1), "b");
        let text = log.to_ulm();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("DATE=0.000000 EVNT=a"));
    }
}
