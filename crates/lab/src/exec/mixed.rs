//! Shared builder for the A12/A13 mixed hot/cold workload: sixteen
//! replicated disk files plus two tape-only files per request on the
//! Figure 1 testbed, under a minimum-rate reliability floor and a
//! 4-drive HPSS robot. `request_pipeline` and `lifeline` both replay
//! exactly this world; factoring it here keeps the two executors
//! operation-for-operation identical to their pre-migration bins (which
//! had duplicated this block verbatim).

use crate::spec::FaultSpec;
use esg_core::{esg_testbed, EsgTestbed};
use esg_reqman::submit_request;
use esg_simnet::prelude::inject_all;
use esg_simnet::{SimDuration, SimTime};
use esg_storage::{Hrm, TapeParams};

/// Disk files: 24 x 40 MB replicated at LLNL, ISI, ANL.
pub const DISK_STEPS: usize = 96;
pub const DISK_SPF: usize = 4;
pub const DISK_BPS: u64 = 10_000_000;
/// Tape files: 8 x 30 MB, HPSS only (cold until staged).
pub const TAPE_STEPS: usize = 16;
pub const TAPE_SPF: usize = 2;
pub const TAPE_BPS: u64 = 15_000_000;
/// Reliability floor: flows slower than this (after grace) fail over.
pub const DEFAULT_MIN_RATE: f64 = 2.6e6;
/// Sim horizon; every request must complete by here.
pub const HORIZON_S: u64 = 3600;

pub struct MixedConfig<'a> {
    pub disk_ds: &'a str,
    pub tape_ds: &'a str,
    /// `Some(on)` sets `rm.scheduler.enabled` before the run (the A12
    /// arms); `None` leaves the testbed default untouched (A13).
    pub scheduler_on: Option<bool>,
    pub min_rate: f64,
    pub n_requests: usize,
}

pub struct MixedRun {
    pub tb: EsgTestbed,
    /// Wall clock of the main `run_until(HORIZON)` only, like the bins.
    pub wall: std::time::Duration,
}

pub fn run_mixed(
    seed: u64,
    cfg: &MixedConfig,
    fault_specs: &[FaultSpec],
) -> Result<MixedRun, String> {
    let mut tb = esg_testbed(seed);
    if let Some(on) = cfg.scheduler_on {
        tb.sim.world.rm.scheduler.enabled = on;
    }
    tb.sim.world.rm.min_rate = cfg.min_rate;
    tb.sim.world.rm.grace = SimDuration::from_secs(6);
    tb.sim.world.rm.retry.base = SimDuration::from_secs(6);
    // Faster robot than the HPSS default so the staging pipeline, not the
    // tape mount queue, shapes the cold half of the workload.
    tb.sim.world.rm.add_hrm(
        "hpss.lbl.gov",
        Hrm::new(
            TapeParams {
                drives: 4,
                mount: SimDuration::from_secs(10),
                seek: SimDuration::from_secs(5),
                rate: 25e6,
            },
            1 << 38,
        ),
    );
    tb.publish_dataset(cfg.disk_ds, DISK_STEPS, DISK_SPF, DISK_BPS, &[1, 2, 3]);
    tb.publish_dataset(cfg.tape_ds, TAPE_STEPS, TAPE_SPF, TAPE_BPS, &[0]);
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));
    if !fault_specs.is_empty() {
        let faults = super::spec_faults(fault_specs, &tb.sites)?;
        inject_all(&mut tb.sim, &faults);
    }

    let disk_coll = tb
        .sim
        .world
        .metadata
        .collection_of(cfg.disk_ds)
        .map_err(|e| format!("collection_of(disk): {e}"))?;
    let tape_coll = tb
        .sim
        .world
        .metadata
        .collection_of(cfg.tape_ds)
        .map_err(|e| format!("collection_of(tape): {e}"))?;
    let disk_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(cfg.disk_ds)
        .map_err(|e| format!("all_files(disk): {e}"))?
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let tape_files: Vec<String> = tb
        .sim
        .world
        .metadata
        .all_files(cfg.tape_ds)
        .map_err(|e| format!("all_files(tape): {e}"))?
        .iter()
        .map(|f| f.name.clone())
        .collect();

    // Request r: sixteen disk files + two tape files, deterministic picks,
    // submitted two seconds apart.
    let client = tb.client;
    for r in 0..cfg.n_requests {
        let mut files: Vec<(String, String)> = (0..16)
            .map(|k| {
                let f = &disk_files[(r * 16 + k) % disk_files.len()];
                (disk_coll.clone(), f.clone())
            })
            .collect();
        for k in 0..2 {
            let f = &tape_files[(r * 2 + k) % tape_files.len()];
            files.push((tape_coll.clone(), f.clone()));
        }
        let at = SimTime::from_secs(100 + 2 * r as u64);
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }

    let wall = std::time::Instant::now();
    tb.sim.run_until(SimTime::from_secs(HORIZON_S));
    let wall = wall.elapsed();

    if tb.sim.world.outcomes.len() != cfg.n_requests {
        return Err(format!(
            "{} of {} requests finished by the horizon",
            tb.sim.world.outcomes.len(),
            cfg.n_requests
        ));
    }
    Ok(MixedRun { tb, wall })
}
