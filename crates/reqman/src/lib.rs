//! # esg-reqman — the Request Manager
//!
//! The collective-layer broker of the ESG prototype (LBNL): accepts
//! multi-file requests from the CDAT client over a (simulated) CORBA hop,
//! runs one worker per file — replica lookup, NWS consultation, replica
//! selection, HRM tape staging, GridFTP initiation — monitors each transfer
//! by polling delivered bytes "every few seconds", and applies the §7
//! reliability plugin (failover to an alternate replica, resuming from the
//! bytes already delivered).
//!
//! * [`manager`] — the RM itself and the per-file worker state machines.
//! * [`scheduler`] — pipelined transfer scheduling: admission control,
//!   BDP auto-tuning, stage-ahead prefetch and the cross-request ledger.
//! * [`monitor`] — the Figure 4 dynamic transfer monitor rendering.
//! * [`reliability`] — retry/backoff policy and per-host circuit breakers.
//! * [`integrity`] — post-delivery block digest verification, ERET block
//!   repair planning and replica quarantine.
//! * [`campaign`] — fault-tolerant replication campaigns: batched rounds
//!   driven through the scheduler, durable checkpoint/resume, and
//!   multi-tenant fair sharing with the interactive workload.

pub mod campaign;
pub mod integrity;
pub mod manager;
pub mod monitor;
pub mod planner;
pub mod reliability;
pub mod replication;
pub mod scheduler;

pub use campaign::{cancel_campaign, start_campaign, CampaignOutcome, CampaignSpec};
pub use integrity::{verify_blocks, IntegrityManager, SegRecord, SegmentView, VerifyReport};
pub use manager::{
    cancel_request, submit_request, submit_request_for_tenant, FileStatus, HasReqMan,
    RequestManager, RequestOutcome, RmWorld, TransferTuning, LEDGER_SCAN_LEN, QUEUE_RESCANS,
};
pub use monitor::{render_monitor, render_monitor_metered};
pub use planner::plan_spread;
pub use reliability::{BreakerState, BreakerTransition, CircuitBreaker, RetryPolicy};
pub use replication::{replicate_collection, ReplicationOutcome};
pub use scheduler::{
    bdp_tuning, order_queue, AdmissionPolicy, HostLedger, SchedStats, SchedulerConfig, TenantTable,
    DEFAULT_TENANT,
};
