//! # esg-cdms — Climate Data Management System
//!
//! The data layer of the ESG prototype: CDAT/CDMS at LLNL gave users "a view
//! of data as a collection of datasets, comprised primarily of
//! multidimensional data variables together with descriptive, textual data"
//! (§3). This crate reproduces that layer end to end:
//!
//! * [`model`] — axes, variables, datasets (the CDMS data model).
//! * [`ncio`] — a self-describing binary file format ("ESG1", standing in
//!   for netCDF) with robust corruption handling.
//! * [`hyperslab`] — spatiotemporal region extraction (VCDAT's selection,
//!   and the subsetting ESG-II planned to push server-side).
//! * [`analysis`] — time/zonal/area-weighted means, anomalies, statistics.
//! * [`synth`] — deterministic synthetic climate fields (substitution for
//!   PCMDI archives; see DESIGN.md).
//! * [`partition`] — dataset → logical file chunking (the unit the replica
//!   catalog and GridFTP operate on), including real files on disk.
//! * [`regrid`] — bilinear regridding and PCMDI-style model
//!   intercomparison (bias/RMS/pattern correlation), the "intercomparing
//!   distributed data" goal of the paper's introduction.
//! * [`viz`] — ASCII and PPM rendering (Figure 3's role).

pub mod analysis;
pub mod climatology;
pub mod hyperslab;
pub mod model;
pub mod ncio;
pub mod partition;
pub mod regrid;
pub mod synth;
pub mod viz;

pub use analysis::{
    anomaly, global_mean_series, stats, time_mean, time_slice, zonal_mean, Field2d, Stats,
};
pub use climatology::{cycle_amplitude, deseasonalized_global_mean, phase_composite};
pub use hyperslab::{extract, extract_dataset, Hyperslab};
pub use model::{flat_index, Axis, Dataset, ModelError, Variable};
pub use ncio::{from_bytes, load, read_dataset, save, to_bytes, write_dataset, NcError};
pub use partition::{chunk_of, files_for_range, partition_by_time, write_chunks, LogicalFile};
pub use regrid::{intercompare, regrid_bilinear, Intercomparison};
pub use synth::{generate, SynthParams};
pub use viz::{ascii_map, ppm, save_ppm};
