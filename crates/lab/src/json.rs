//! Minimal JSON value model with a canonical emitter.
//!
//! The build environment has no registry access, so there is no serde;
//! the lab owns a small parser/emitter instead. Canonical form is the
//! contract the rest of the crate leans on: object members keep their
//! insertion order, integers and floats are distinct variants (a float
//! always renders with a `.` or exponent so it re-parses as a float),
//! and floats use Rust's shortest round-trip `Display`. Emission is a
//! pure function of the value, so `emit ∘ parse ∘ emit == emit` — the
//! byte-identity that spec hashing and the journal rely on
//! (proptest-enforced in `tests/spec_roundtrip.rs`).

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer literal (no `.`/`e`); covers every u64/i64 the specs use.
    Int(i128),
    /// Fractional or exponent literal. Always finite: JSON has no NaN.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in insertion order — canonical emission preserves it.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view: both `Int` and `Float` coerce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact canonical emission (no whitespace).
    pub fn emit(&self) -> String {
        let mut s = String::new();
        self.emit_into(&mut s);
        s
    }

    fn emit_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                write!(s, "{i}").unwrap();
            }
            Json::Float(f) => emit_float(*f, s),
            Json::Str(v) => emit_str(v, s),
            Json::Arr(a) => {
                s.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    v.emit_into(s);
                }
                s.push(']');
            }
            Json::Obj(m) => {
                s.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    emit_str(k, s);
                    s.push(':');
                    v.emit_into(s);
                }
                s.push('}');
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            at: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.at != p.b.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(v)
    }
}

/// A float renders so that it re-parses as `Float`: Rust's `{}` is the
/// shortest representation that round-trips the value; if it contains
/// neither `.` nor an exponent (e.g. `-0` or `2600000`), `.0` is
/// appended to keep the int/float distinction stable across a re-parse.
fn emit_float(f: f64, s: &mut String) {
    debug_assert!(f.is_finite(), "JSON has no non-finite numbers");
    let start = s.len();
    write!(s, "{f}").unwrap();
    if !s[start..].contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
}

fn emit_str(v: &str, s: &mut String) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(s, "\\u{:04x}", c as u32).unwrap();
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.at < self.b.len() && matches!(self.b[self.at], b' ' | b'\t' | b'\n' | b'\r') {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.at,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.at
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.b[start..self.at])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.at + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.b[self.at..self.at + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.at += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        if !f.is_finite() {
            return Err(format!("number '{text}' overflows f64"));
        }
        Ok(Json::Float(f))
    }
}

/// Render a metric value: integral floats in range emit as integers
/// (counts read as counts), everything else as a canonical float.
pub fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        let mut s = String::new();
        emit_float(v, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let src = r#"{"a": 1, "b": [true, null, -2.5], "c": {"x": "hi\nthere"}, "d": 2600000.0}"#;
        let v = Json::parse(src).unwrap();
        let once = v.emit();
        let twice = Json::parse(&once).unwrap().emit();
        assert_eq!(once, twice, "emit must be idempotent over parse");
        assert_eq!(v.get("a").unwrap(), &Json::Int(1));
        assert_eq!(v.get("d").unwrap(), &Json::Float(2_600_000.0));
    }

    #[test]
    fn int_float_distinction_survives() {
        let v = Json::parse("[1, 1.0, -0.0, 1e3]").unwrap();
        assert_eq!(v.emit(), "[1,1.0,-0.0,1000.0]");
        let v2 = Json::parse(&v.emit()).unwrap();
        assert_eq!(v2.emit(), v.emit());
    }

    #[test]
    fn big_integers_are_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.emit(), "18446744073709551615");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""A\t\" é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t\" é 😀"));
        let emitted = v.emit();
        assert_eq!(Json::parse(&emitted).unwrap().emit(), emitted);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn fmt_num_prefers_integers() {
        assert_eq!(fmt_num(4.0), "4");
        assert_eq!(fmt_num(1.51), "1.51");
        assert_eq!(fmt_num(-0.5), "-0.5");
    }
}
