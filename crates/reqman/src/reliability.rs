//! The reliability layer: retry policy and per-host circuit breakers.
//!
//! §7 of the paper describes the RM's reliability plugin in terms of three
//! behaviours: detect a failed or degraded transfer, remember how much of
//! the file already arrived (the restart marker), and move the remainder of
//! the work elsewhere. The seed implementation hard-coded its retry delays
//! (5 s / 10 s / 30 s) and blacklisted failing hosts permanently, which
//! meant a host that suffered one transient outage was never used again for
//! that file. This module replaces both mechanisms:
//!
//! * [`RetryPolicy`] — exponential backoff with seeded jitter, a cap on
//!   attempts, and an optional per-attempt timeout. Every requeue the RM
//!   schedules goes through one policy, so tests can tighten or relax the
//!   whole manager's patience in one place.
//! * [`CircuitBreaker`] — a per-host three-state machine (closed → open →
//!   half-open). Consecutive failures open the breaker; while open the host
//!   receives no traffic; after a cooldown a single probe transfer is
//!   admitted, and its outcome decides whether the host is readmitted or
//!   the breaker re-opens.
//!
//! Both are deterministic: jitter comes from the manager's seeded RNG and
//! breaker transitions depend only on simulated time.

use esg_simnet::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// Backoff schedule for requeued file workers.
///
/// Attempt `n` (0-based) sleeps `base * factor^n`, clamped to
/// `max_backoff`, then spread by ±`jitter` (a fraction of the delay) so
/// that workers knocked over by the same outage do not thunder back in
/// lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First retry delay.
    pub base: SimDuration,
    /// Exponential growth factor per attempt.
    pub factor: f64,
    /// Ceiling on any single delay (pre-jitter).
    pub max_backoff: SimDuration,
    /// Jitter amplitude as a fraction of the delay, in `[0, 1)`.
    pub jitter: f64,
    /// Give up on a file after this many attempts (0 = never give up).
    pub max_attempts: u32,
    /// Cancel an attempt that has run longer than this (ZERO = no limit).
    pub attempt_timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(2),
            factor: 2.0,
            max_backoff: SimDuration::from_secs(60),
            jitter: 0.2,
            max_attempts: 0,
            attempt_timeout: SimDuration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based), jittered by `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let exp = self.factor.powi(attempt.min(30) as i32);
        let raw = (self.base.as_secs_f64() * exp).min(self.max_backoff.as_secs_f64());
        let delay = if self.jitter > 0.0 {
            let u: f64 = rng.gen_range(-1.0..1.0);
            raw * (1.0 + self.jitter * u)
        } else {
            raw
        };
        SimDuration::from_secs_f64(delay.max(0.0))
    }

    /// Whether attempt count `attempts` has exhausted the policy.
    pub fn exhausted(&self, attempts: u32) -> bool {
        self.max_attempts > 0 && attempts >= self.max_attempts
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Tripped: no traffic until `until`.
    Open { until: SimTime },
    /// Cooled down: one probe transfer may test the host.
    HalfOpen { probing: bool },
}

/// State transition reported by a breaker operation, for event logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    Opened,
    HalfOpened,
    Closed,
}

/// Per-host circuit breaker.
///
/// `threshold` consecutive failures trip it open for `cooldown`; the first
/// admission query after the cooldown moves it to half-open and admits a
/// single probe. The probe's outcome either closes the breaker or re-opens
/// it for another cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    pub threshold: u32,
    pub cooldown: SimDuration,
    consecutive_failures: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Non-committal admission check, for filtering candidate lists
    /// without consuming the half-open probe slot.
    pub fn would_admit(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { until } => now >= until,
            BreakerState::HalfOpen { probing } => !probing,
        }
    }

    /// May a new transfer go to this host now? Transitions open → half-open
    /// once the cooldown has elapsed; in half-open, admits exactly one
    /// probe at a time.
    pub fn admits(&mut self, now: SimTime) -> (bool, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen { probing: true };
                (true, Some(BreakerTransition::HalfOpened))
            }
            BreakerState::Open { .. } => (false, None),
            BreakerState::HalfOpen { probing: false } => {
                self.state = BreakerState::HalfOpen { probing: true };
                (true, None)
            }
            BreakerState::HalfOpen { probing: true } => (false, None),
        }
    }

    /// Record a failed transfer (or failed start) against this host.
    pub fn record_failure(&mut self, now: SimTime) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::HalfOpen { .. } => {
                // Probe failed: straight back to open.
                self.consecutive_failures = self.threshold;
                self.state = BreakerState::Open {
                    until: now + self.cooldown,
                };
                Some(BreakerTransition::Opened)
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cooldown,
                    };
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            // Already open: nothing changes (late failures from attempts
            // started before the trip).
            BreakerState::Open { .. } => None,
        }
    }

    /// Release an admitted probe without judging the host — used when the
    /// attempt aborted for reasons unrelated to it (e.g. a global name
    /// service outage), so the probe slot frees up for the next worker.
    pub fn release(&mut self) {
        if let BreakerState::HalfOpen { probing: true } = self.state {
            self.state = BreakerState::HalfOpen { probing: false };
        }
    }

    /// Record a completed transfer from this host.
    pub fn record_success(&mut self) -> Option<BreakerTransition> {
        let was_half_open = matches!(self.state, BreakerState::HalfOpen { .. });
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::Closed => None,
            _ => {
                self.state = BreakerState::Closed;
                if was_half_open {
                    Some(BreakerTransition::Closed)
                } else {
                    // Success while nominally open (attempt predating the
                    // trip): close quietly.
                    Some(BreakerTransition::Closed)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn backoff_grows_and_clamps() {
        let p = RetryPolicy {
            base: SimDuration::from_secs(1),
            factor: 2.0,
            max_backoff: SimDuration::from_secs(10),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.backoff(0, &mut rng).as_secs_f64(), 1.0);
        assert_eq!(p.backoff(1, &mut rng).as_secs_f64(), 2.0);
        assert_eq!(p.backoff(3, &mut rng).as_secs_f64(), 8.0);
        // Clamped at max_backoff from attempt 4 on.
        assert_eq!(p.backoff(4, &mut rng).as_secs_f64(), 10.0);
        assert_eq!(p.backoff(20, &mut rng).as_secs_f64(), 10.0);
    }

    #[test]
    fn backoff_jitter_stays_in_band_and_is_deterministic() {
        let p = RetryPolicy {
            base: SimDuration::from_secs(4),
            factor: 1.0,
            jitter: 0.25,
            ..RetryPolicy::default()
        };
        let sample = |seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|_| p.backoff(0, &mut rng).as_secs_f64())
                .collect()
        };
        let a = sample(9);
        for d in &a {
            assert!((3.0..=5.0).contains(d), "jitter out of band: {d}");
        }
        assert_eq!(a, sample(9), "same seed must give same delays");
        assert_ne!(a, sample(10));
    }

    #[test]
    fn exhaustion_cap() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        let unlimited = RetryPolicy::default();
        assert!(!unlimited.exhausted(u32::MAX));
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(30));
        assert_eq!(b.record_failure(t(1)), None);
        assert_eq!(b.record_failure(t(2)), None);
        assert_eq!(b.record_failure(t(3)), Some(BreakerTransition::Opened));
        assert!(!b.admits(t(10)).0, "open breaker must block");
        assert!(matches!(b.state(), BreakerState::Open { .. }));
    }

    #[test]
    fn breaker_half_open_probe_readmits_on_success() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(30));
        assert_eq!(b.record_failure(t(0)), Some(BreakerTransition::Opened));
        assert!(!b.admits(t(10)).0);
        // Cooldown elapsed: exactly one probe allowed.
        let (ok, tr) = b.admits(t(31));
        assert!(ok);
        assert_eq!(tr, Some(BreakerTransition::HalfOpened));
        assert!(!b.admits(t(32)).0, "second concurrent probe must wait");
        assert_eq!(b.record_success(), Some(BreakerTransition::Closed));
        assert!(b.admits(t(33)).0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(30));
        b.record_failure(t(0));
        assert!(b.admits(t(31)).0);
        assert_eq!(b.record_failure(t(31)), Some(BreakerTransition::Opened));
        assert!(!b.admits(t(40)).0);
        // A second full cooldown is required before the next probe.
        assert!(b.admits(t(62)).0);
    }

    #[test]
    fn would_admit_does_not_consume_probe() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(30));
        b.record_failure(t(0));
        assert!(b.would_admit(t(31)), "cooldown elapsed");
        assert!(
            matches!(b.state(), BreakerState::Open { .. }),
            "peek must not transition"
        );
        assert!(b.admits(t(31)).0);
        assert!(!b.would_admit(t(31)), "probe slot taken");
        b.release();
        assert!(b.would_admit(t(31)));
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(30));
        b.record_failure(t(1));
        b.record_failure(t(2));
        b.record_success();
        assert_eq!(b.record_failure(t(3)), None, "streak must restart");
        assert!(b.admits(t(4)).0);
    }
}
