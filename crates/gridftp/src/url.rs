//! `gsiftp://` URL handling.
//!
//! Replica catalog location entries "contain attributes that provide all
//! information (protocol, hostname, port, path) required to map from
//! logical names for files to URLs corresponding to file locations on the
//! storage system" (§6.2).

use std::fmt;

/// Default GridFTP control port.
pub const DEFAULT_PORT: u16 = 2811;

/// A parsed storage URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridUrl {
    pub scheme: String,
    pub host: String,
    pub port: u16,
    /// Path on the storage system (leading slash stripped).
    pub path: String,
}

/// URL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl GridUrl {
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Self {
        GridUrl {
            scheme: "gsiftp".to_string(),
            host: host.into(),
            port: DEFAULT_PORT,
            path: path.into().trim_start_matches('/').to_string(),
        }
    }

    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Parse `scheme://host[:port]/path`.
    pub fn parse(s: &str) -> Result<GridUrl, UrlError> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| UrlError(format!("missing scheme: {s}")))?;
        if scheme.is_empty() {
            return Err(UrlError(format!("empty scheme: {s}")));
        }
        let (authority, path) = match rest.split_once('/') {
            Some((a, p)) => (a, p),
            None => (rest, ""),
        };
        if authority.is_empty() {
            // `file:///path` has an empty authority: local files.
            if scheme == "file" {
                return Ok(GridUrl {
                    scheme: scheme.to_string(),
                    host: String::new(),
                    port: 0,
                    path: path.to_string(),
                });
            }
            return Err(UrlError(format!("empty host: {s}")));
        }
        let (host, port) = match authority.split_once(':') {
            Some((h, p)) => (
                h,
                p.parse::<u16>()
                    .map_err(|_| UrlError(format!("bad port in {s}")))?,
            ),
            None => (authority, DEFAULT_PORT),
        };
        if host.is_empty() {
            return Err(UrlError(format!("empty host: {s}")));
        }
        Ok(GridUrl {
            scheme: scheme.to_string(),
            host: host.to_string(),
            port,
            path: path.to_string(),
        })
    }
}

impl fmt::Display for GridUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.port == DEFAULT_PORT {
            write!(f, "{}://{}/{}", self.scheme, self.host, self.path)
        } else {
            write!(
                f,
                "{}://{}:{}/{}",
                self.scheme, self.host, self.port, self.path
            )
        }
    }
}

impl std::str::FromStr for GridUrl {
    type Err = UrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GridUrl::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full() {
        let u = GridUrl::parse("gsiftp://sprite.llnl.gov:2812/data/co2/jan.esg").unwrap();
        assert_eq!(u.scheme, "gsiftp");
        assert_eq!(u.host, "sprite.llnl.gov");
        assert_eq!(u.port, 2812);
        assert_eq!(u.path, "data/co2/jan.esg");
    }

    #[test]
    fn default_port() {
        let u = GridUrl::parse("gsiftp://jupiter.isi.edu/f").unwrap();
        assert_eq!(u.port, DEFAULT_PORT);
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "gsiftp://host/a/b/c",
            "gsiftp://host:9999/a",
            "http://dods.server/data",
        ] {
            let u = GridUrl::parse(s).unwrap();
            assert_eq!(GridUrl::parse(&u.to_string()).unwrap(), u, "{s}");
        }
    }

    #[test]
    fn errors() {
        assert!(GridUrl::parse("no-scheme").is_err());
        assert!(GridUrl::parse("gsiftp://").is_err());
        assert!(GridUrl::parse("gsiftp://host:notaport/x").is_err());
        assert!(GridUrl::parse("://host/x").is_err());
    }

    #[test]
    fn file_urls_have_empty_host() {
        let u = GridUrl::parse("file:///tmp/data/payload.bin").unwrap();
        assert_eq!(u.scheme, "file");
        assert_eq!(u.host, "");
        assert_eq!(u.path, "tmp/data/payload.bin");
        assert!(GridUrl::parse("file://").is_ok());
        // Non-file schemes still require a host.
        assert!(GridUrl::parse("http://").is_err());
    }

    #[test]
    fn builder() {
        let u = GridUrl::new("anl.gov", "/cache/file.esg").with_port(3000);
        assert_eq!(u.to_string(), "gsiftp://anl.gov:3000/cache/file.esg");
    }

    #[test]
    fn empty_path_allowed() {
        let u = GridUrl::parse("gsiftp://host").unwrap();
        assert_eq!(u.path, "");
        assert_eq!(u.to_string(), "gsiftp://host/");
    }
}
