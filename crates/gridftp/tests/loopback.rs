//! Loopback integration tests: the real GridFTP server and client moving
//! real bytes (including actual ESG1 climate files) over 127.0.0.1 with
//! parallel streams, GSI authentication, partial retrieval, uploads and
//! fault-injected restart.

use esg_gridftp::server::{GridFtpServer, ServerConfig};
use esg_gridftp::{ClientError, GridFtpClient, RangeSet, ReliableClient, TransferOptions};
use esg_gsi::{CertificateAuthority, Credential};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esg-gridftp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_test_file(root: &Path, name: &str, len: usize) -> Vec<u8> {
    // Deterministic pseudo-random content so corruption is detectable.
    let mut data = vec![0u8; len];
    let mut state = 0x1234_5678_u64;
    for b in data.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (state >> 33) as u8;
    }
    std::fs::write(root.join(name), &data).unwrap();
    data
}

fn start(root: &Path) -> GridFtpServer {
    GridFtpServer::start(ServerConfig::new(root)).unwrap()
}

#[test]
fn anonymous_login_and_feat() {
    let root = temp_root("feat");
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let feats = c.features().unwrap();
    assert!(feats.iter().any(|f| f.contains("MODE E")));
    assert!(feats.iter().any(|f| f.contains("PARALLEL")));
    c.quit();
}

#[test]
fn size_and_checksum() {
    let root = temp_root("size");
    let data = write_test_file(&root, "f.bin", 10_000);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    assert_eq!(c.size("f.bin").unwrap(), 10_000);
    let sum = c.checksum("f.bin", 0, 0).unwrap();
    assert_eq!(sum, esg_gsi::hex(&esg_gsi::sha256(&data)));
    // Range checksum.
    let sum2 = c.checksum("f.bin", 100, 50).unwrap();
    assert_eq!(sum2, esg_gsi::hex(&esg_gsi::sha256(&data[100..150])));
    // Missing file.
    assert!(c.size("ghost.bin").is_err());
    c.quit();
}

#[test]
fn single_stream_get() {
    let root = temp_root("get1");
    let data = write_test_file(&root, "one.bin", 500_000);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let got = c
        .get(
            "one.bin",
            TransferOptions {
                parallelism: 1,
                buffer: None,
            },
        )
        .unwrap();
    assert_eq!(got, data);
    c.quit();
}

#[test]
fn parallel_streams_get() {
    let root = temp_root("get4");
    // Non-multiple of the block size to exercise the tail block.
    let data = write_test_file(&root, "four.bin", 1_000_003);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    for parallelism in [2, 4, 8] {
        let got = c
            .get(
                "four.bin",
                TransferOptions {
                    parallelism,
                    buffer: Some(1 << 20),
                },
            )
            .unwrap();
        assert_eq!(got, data, "parallelism {parallelism}");
    }
    c.quit();
}

#[test]
fn partial_retrieval_eret() {
    let root = temp_root("eret");
    let data = write_test_file(&root, "p.bin", 300_000);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let part = c
        .get_partial("p.bin", 1000, 70_000, TransferOptions::default())
        .unwrap();
    assert_eq!(part, &data[1000..71_000]);
    // Past EOF clamps.
    let tail = c
        .get_partial("p.bin", 299_000, 50_000, TransferOptions::default())
        .unwrap();
    assert_eq!(tail, &data[299_000..]);
    c.quit();
}

#[test]
fn upload_round_trip() {
    let root = temp_root("put");
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let mut data = vec![0u8; 400_001];
    for (i, b) in data.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    c.put("up/stored.bin", &data, TransferOptions::default(), 0)
        .unwrap();
    let back = c.get("up/stored.bin", TransferOptions::default()).unwrap();
    assert_eq!(back, data);
    c.quit();
}

#[test]
fn esto_adjusted_store() {
    let root = temp_root("esto");
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    // Write the second half first at offset 100, then the first 100 bytes.
    let part = vec![7u8; 50];
    c.put(
        "adj.bin",
        &part,
        TransferOptions {
            parallelism: 1,
            buffer: None,
        },
        100,
    )
    .unwrap();
    let head = vec![9u8; 100];
    c.put(
        "adj.bin",
        &head,
        TransferOptions {
            parallelism: 1,
            buffer: None,
        },
        0,
    )
    .unwrap();
    let got = c.get("adj.bin", TransferOptions::default()).unwrap();
    assert_eq!(&got[..100], &head[..]);
    assert_eq!(&got[100..150], &part[..]);
    c.quit();
}

#[test]
fn restart_marker_resumes_manually() {
    let root = temp_root("rest");
    let data = write_test_file(&root, "r.bin", 200_000);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    // Pretend we already have the first 150000 bytes.
    let mut buffer = vec![0u8; 200_000];
    buffer[..150_000].copy_from_slice(&data[..150_000]);
    let mut received = RangeSet::new();
    received.insert(0, 150_000);
    let got = c
        .get_into(
            "r.bin",
            TransferOptions::default(),
            &mut buffer,
            &mut received,
        )
        .unwrap();
    assert_eq!(got, 50_000, "server must send only the hole");
    assert!(received.is_complete(200_000));
    assert_eq!(buffer, data);
    c.quit();
}

#[test]
fn injected_failure_then_reliable_restart() {
    let root = temp_root("fault");
    let data = write_test_file(&root, "big.bin", 2_000_000);
    let mut config = ServerConfig::new(root.clone());
    config.fail_after_bytes = Some(500_000); // die mid-transfer, once
    let server = GridFtpServer::start(config).unwrap();

    let reliable = ReliableClient::new(server.addr(), TransferOptions::default());
    let outcome = reliable.download("big.bin").unwrap();
    assert_eq!(outcome.data, data);
    assert!(outcome.attempts >= 2, "first attempt must have failed");
    assert!(
        outcome.retried_bytes < 2_000_000,
        "restart must not re-fetch everything: {} bytes retried",
        outcome.retried_bytes
    );
}

#[test]
fn gsi_login_and_transfer() {
    let root = temp_root("gsi");
    let data = write_test_file(&root, "secure.bin", 100_000);
    let ca = Arc::new(CertificateAuthority::new("/O=Grid/CN=ESG CA", b"test-ca"));
    let server_cred: Arc<Credential> = Arc::new(ca.issue("/O=Grid/CN=server", 0, 3600));
    let mut config = ServerConfig::new(root.clone());
    config.allow_anonymous = false;
    config.gsi = Some((server_cred, ca.clone()));
    let server = GridFtpServer::start(config).unwrap();

    let user = ca.issue("/O=Grid/CN=alice", 0, 3600);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    // Anonymous is refused.
    assert!(matches!(
        c.login_anonymous(),
        Err(ClientError::Protocol { .. })
    ));
    c.login_gsi(&user, &ca).unwrap();
    let got = c.get("secure.bin", TransferOptions::default()).unwrap();
    assert_eq!(got, data);
    c.quit();
}

#[test]
fn gsi_login_rejects_foreign_ca() {
    let root = temp_root("gsibad");
    let ca = Arc::new(CertificateAuthority::new("/O=Grid/CN=ESG CA", b"test-ca"));
    let server_cred: Arc<Credential> = Arc::new(ca.issue("/O=Grid/CN=server", 0, 3600));
    let mut config = ServerConfig::new(root.clone());
    config.allow_anonymous = false;
    config.gsi = Some((server_cred, ca.clone()));
    let server = GridFtpServer::start(config).unwrap();

    let evil_ca = CertificateAuthority::new("/O=Evil/CN=CA", b"evil");
    let mallory = evil_ca.issue("/O=Grid/CN=mallory", 0, 3600);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    assert!(c.login_gsi(&mallory, &evil_ca).is_err());
}

#[test]
fn path_traversal_rejected() {
    let root = temp_root("trav");
    write_test_file(&root, "ok.bin", 100);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    assert!(c.size("../../../etc/passwd").is_err());
    assert!(c.size("a/../../b").is_err());
    c.quit();
}

#[test]
fn unauthenticated_commands_refused() {
    let root = temp_root("noauth");
    write_test_file(&root, "f.bin", 100);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    // No login: RETR path requires auth (PASV refused first).
    let err = c.get("f.bin", TransferOptions::default()).unwrap_err();
    assert!(matches!(err, ClientError::Protocol { .. }));
}

#[test]
fn real_climate_files_transfer_intact() {
    // End-to-end: generate ESG1 climate chunks, serve them, fetch with
    // parallel streams, reparse and compare datasets.
    let root = temp_root("climate");
    let params = esg_cdms::SynthParams {
        lat_points: 16,
        lon_points: 32,
        time_steps: 8,
        hours_per_step: 6.0,
        seed: 11,
    };
    let chunks = esg_cdms::write_chunks(&root, "pcm_b06", params, 4).unwrap();
    assert_eq!(chunks.len(), 2);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    for (_, path, size) in &chunks {
        let name = path.file_name().unwrap().to_str().unwrap();
        let bytes = c.get(name, TransferOptions::default()).unwrap();
        assert_eq!(bytes.len() as u64, *size);
        let ds = esg_cdms::from_bytes(&bytes).unwrap();
        assert_eq!(ds.variables.len(), 3);
        let orig = esg_cdms::load(path).unwrap();
        assert_eq!(ds, orig);
    }
    c.quit();
}

#[test]
fn third_party_transfer_between_two_servers() {
    use esg_gridftp::third_party_transfer;
    // Two independent servers with their own roots; the controlling client
    // never touches the data path.
    let src_root = temp_root("tp-src");
    let dst_root = temp_root("tp-dst");
    let data = write_test_file(&src_root, "model_output.bin", 700_001);
    let src_server = start(&src_root);
    let dst_server = start(&dst_root);

    let mut src = GridFtpClient::connect(src_server.addr()).unwrap();
    src.login_anonymous().unwrap();
    let mut dst = GridFtpClient::connect(dst_server.addr()).unwrap();
    dst.login_anonymous().unwrap();

    third_party_transfer(
        &mut src,
        &mut dst,
        "model_output.bin",
        "replica/copy.bin",
        2,
    )
    .unwrap();

    // Verify via the destination server's own checksum.
    let sum_dst = dst.checksum("replica/copy.bin", 0, 0).unwrap();
    assert_eq!(sum_dst, esg_gsi::hex(&esg_gsi::sha256(&data)));
    assert_eq!(dst.size("replica/copy.bin").unwrap(), 700_001);
    src.quit();
    dst.quit();
}

#[test]
fn third_party_missing_source_file_fails_cleanly() {
    use esg_gridftp::third_party_transfer;
    let src_root = temp_root("tpm-src");
    let dst_root = temp_root("tpm-dst");
    let src_server = start(&src_root);
    let dst_server = start(&dst_root);
    let mut src = GridFtpClient::connect(src_server.addr()).unwrap();
    src.login_anonymous().unwrap();
    let mut dst = GridFtpClient::connect(dst_server.addr()).unwrap();
    dst.login_anonymous().unwrap();
    let err = third_party_transfer(&mut src, &mut dst, "ghost.bin", "copy.bin", 1).unwrap_err();
    assert!(matches!(err, ClientError::Protocol { .. }));
}

#[test]
fn server_side_subsetting_eret_x() {
    // The ESG-II extension: the server extracts the subset; the client
    // receives a valid single-variable dataset and far fewer bytes.
    let root = temp_root("subset");
    let params = esg_cdms::SynthParams {
        lat_points: 32,
        lon_points: 64,
        time_steps: 40,
        hours_per_step: 6.0,
        seed: 21,
    };
    let chunks = esg_cdms::write_chunks(&root, "pcm_sub", params, 40).unwrap();
    let (_, path, full_size) = &chunks[0];
    let name = path.file_name().unwrap().to_str().unwrap().to_string();

    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let bytes = c
        .get_subset(&name, "tas", 8, 16, TransferOptions::default())
        .unwrap();
    // 1/5 of the steps, 1/3 of the variables: far smaller than the file.
    assert!(
        (bytes.len() as u64) < full_size / 10,
        "subset {} vs full {}",
        bytes.len(),
        full_size
    );
    let sub = esg_cdms::from_bytes(&bytes).unwrap();
    assert_eq!(sub.variables.len(), 1);
    let v = sub.variable("tas").unwrap();
    assert_eq!(sub.shape_of(v), vec![8, 32, 64]);
    // Content matches a local extraction.
    let full = esg_cdms::load(path).unwrap();
    let fv = full.variable("tas").unwrap();
    let slab = esg_cdms::Hyperslab::all(&full, fv).narrow(0, 8, 8);
    let expect = esg_cdms::extract(&full, fv, &slab).unwrap();
    assert_eq!(v.data, expect);

    // Bad requests fail with errors, not hangs.
    assert!(c
        .get_subset(&name, "nope", 0, 4, TransferOptions::default())
        .is_err());
    assert!(c
        .get_subset(&name, "tas", 30, 99, TransferOptions::default())
        .is_err());
    c.quit();
    for (_, p, _) in &chunks {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn concurrent_clients_share_one_server() {
    // "initiate, control and monitor multiple file transfers on behalf of
    // multiple users concurrently": several clients, one server, all
    // downloads intact.
    let root = temp_root("concurrent");
    let data = write_test_file(&root, "shared.bin", 400_000);
    let server = start(&root);
    let addr = server.addr();
    let mut handles = Vec::new();
    for i in 0..6 {
        let expect = data.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = GridFtpClient::connect(addr).unwrap();
            c.login_anonymous().unwrap();
            let opts = TransferOptions {
                parallelism: 1 + (i % 4),
                buffer: None,
            };
            let got = c.get("shared.bin", opts).unwrap();
            assert_eq!(got, expect, "client {i}");
            c.quit();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn sbuf_negotiation_accepted() {
    let root = temp_root("sbuf");
    let data = write_test_file(&root, "b.bin", 100_000);
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    // The paper's 1 MB buffer request travels as SBUF before the transfer.
    let got = c
        .get(
            "b.bin",
            TransferOptions {
                parallelism: 2,
                buffer: Some(1 << 20),
            },
        )
        .unwrap();
    assert_eq!(got, data);
    c.quit();
}

#[test]
fn spas_striped_passive_reply_parses() {
    // SPAS returns the multiline 229; we exercise the reply path raw.
    use esg_gridftp::Command;
    let root = temp_root("spas");
    let server = start(&root);
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    c.login_anonymous().unwrap();
    let reply = c.raw_command(&Command::Spas).unwrap();
    assert_eq!(reply.code, 229);
    assert!(reply.lines.len() >= 3);
    assert!(reply.lines[1].trim().starts_with("127,0,0,1"));
    c.quit();
}

#[test]
fn gsi_plus_subsetting_compose() {
    // Security and server-side processing together: authenticate with a
    // delegated proxy, then run a server-side extraction.
    let root = temp_root("gsisub");
    let params = esg_cdms::SynthParams {
        lat_points: 8,
        lon_points: 16,
        time_steps: 12,
        hours_per_step: 6.0,
        seed: 5,
    };
    let chunks = esg_cdms::write_chunks(&root, "secure_ds", params, 12).unwrap();
    let name = chunks[0]
        .1
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .to_string();

    let ca = Arc::new(CertificateAuthority::new("/O=Grid/CN=ESG CA", b"ca2"));
    let server_cred: Arc<Credential> = Arc::new(ca.issue("/O=Grid/CN=server", 0, 3600));
    let mut config = ServerConfig::new(root.clone());
    config.allow_anonymous = false;
    config.gsi = Some((server_cred, ca.clone()));
    let server = GridFtpServer::start(config).unwrap();

    let user = ca.issue("/O=Grid/CN=scientist", 0, 3600);
    let proxy = user.delegate(0, 600, b"rm").unwrap();
    let mut c = GridFtpClient::connect(server.addr()).unwrap();
    // NOTE: proxy chains need the delegator's key for verification in our
    // shared-anchor model; the server only knows the CA, so authenticate
    // with the end-entity credential here and check the proxy separately.
    let _ = proxy;
    c.login_gsi(&user, &ca).unwrap();
    let sub = c
        .get_subset(&name, "clt", 0, 6, TransferOptions::default())
        .unwrap();
    let ds = esg_cdms::from_bytes(&sub).unwrap();
    assert_eq!(ds.variables.len(), 1);
    c.quit();
    for (_, p, _) in &chunks {
        std::fs::remove_file(p).ok();
    }
}
