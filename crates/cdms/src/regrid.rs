//! Regridding and model intercomparison.
//!
//! The paper's introduction sets the goal: "fundamentally new methodologies
//! for managing, accessing, recombining, analyzing and **intercomparing**
//! distributed data". PCMDI — the LLNL group behind CDAT — is the Program
//! for Climate Model **Diagnosis and Intercomparison**: comparing models
//! (and models against observations) is the workload. Comparing two models
//! requires putting them on a common grid first, hence bilinear
//! regridding.

use crate::analysis::Field2d;

/// Bilinearly regrid a field onto new latitude/longitude axes.
///
/// Latitudes clamp at the poles; longitudes wrap around 0/360. Input axes
/// must be strictly increasing (the convention of [`crate::model::Axis`]
/// builders).
pub fn regrid_bilinear(src: &Field2d, new_lat: &[f64], new_lon: &[f64]) -> Field2d {
    assert!(!src.lat.is_empty() && !src.lon.is_empty(), "empty source");
    let ny = src.lat.len();
    let nx = src.lon.len();
    let mut data = Vec::with_capacity(new_lat.len() * new_lon.len());

    // Fractional index of x in ascending axis vals, clamped to [0, n-1].
    let locate = |vals: &[f64], x: f64| -> (usize, f64) {
        if x <= vals[0] {
            return (0, 0.0);
        }
        let n = vals.len();
        if x >= vals[n - 1] {
            return (n - 1, 0.0);
        }
        let i = vals.partition_point(|&v| v <= x) - 1;
        let frac = (x - vals[i]) / (vals[i + 1] - vals[i]);
        (i, frac)
    };

    for &lat in new_lat {
        let (j, fy) = locate(&src.lat, lat);
        let j1 = (j + 1).min(ny - 1);
        for &lon in new_lon {
            // Wrap longitude into the source range before locating.
            let lon_span = 360.0;
            let mut x = lon;
            while x < src.lon[0] {
                x += lon_span;
            }
            while x > src.lon[nx - 1] + (lon_span - (src.lon[nx - 1] - src.lon[0])) {
                x -= lon_span;
            }
            let (i, fx, i1) = if x > src.lon[nx - 1] {
                // Between the last and first cell across the wrap.
                let gap = lon_span - (src.lon[nx - 1] - src.lon[0]);
                ((nx - 1), (x - src.lon[nx - 1]) / gap, 0)
            } else {
                let (i, fx) = locate(&src.lon, x);
                (i, fx, (i + 1).min(nx - 1))
            };
            let v00 = src.get(j, i) as f64;
            let v01 = src.get(j, i1) as f64;
            let v10 = src.get(j1, i) as f64;
            let v11 = src.get(j1, i1) as f64;
            let v0 = v00 + (v01 - v00) * fx;
            let v1 = v10 + (v11 - v10) * fx;
            data.push((v0 + (v1 - v0) * fy) as f32);
        }
    }
    Field2d {
        lat: new_lat.to_vec(),
        lon: new_lon.to_vec(),
        data,
    }
}

/// Result of intercomparing two fields on a common grid.
#[derive(Debug, Clone)]
pub struct Intercomparison {
    /// a − b, on the target grid.
    pub difference: Field2d,
    /// Area-weighted (cos latitude) mean bias a − b.
    pub mean_bias: f64,
    /// Area-weighted root-mean-square difference.
    pub rms: f64,
    /// Pearson pattern correlation between the two fields.
    pub pattern_correlation: f64,
}

/// Intercompare two fields: `b` is regridded onto `a`'s grid, then
/// difference statistics are computed with cos-latitude area weights —
/// the standard PCMDI-style model-vs-model diagnostic.
pub fn intercompare(a: &Field2d, b: &Field2d) -> Intercomparison {
    let b_on_a = regrid_bilinear(b, &a.lat, &a.lon);
    let nx = a.lon.len();
    let mut diff = Vec::with_capacity(a.data.len());
    let mut wsum = 0.0f64;
    let mut bias = 0.0f64;
    let mut sq = 0.0f64;
    let mut sa = 0.0f64;
    let mut sb = 0.0f64;
    let mut saa = 0.0f64;
    let mut sbb = 0.0f64;
    let mut sab = 0.0f64;
    for (j, &lat) in a.lat.iter().enumerate() {
        let w = lat.to_radians().cos().max(0.0);
        for i in 0..nx {
            let va = a.get(j, i) as f64;
            let vb = b_on_a.get(j, i) as f64;
            let d = va - vb;
            diff.push(d as f32);
            wsum += w;
            bias += w * d;
            sq += w * d * d;
            sa += w * va;
            sb += w * vb;
            saa += w * va * va;
            sbb += w * vb * vb;
            sab += w * va * vb;
        }
    }
    let mean_bias = bias / wsum;
    let rms = (sq / wsum).sqrt();
    let ma = sa / wsum;
    let mb = sb / wsum;
    let cov = sab / wsum - ma * mb;
    let var_a = (saa / wsum - ma * ma).max(0.0);
    let var_b = (sbb / wsum - mb * mb).max(0.0);
    let denom = (var_a * var_b).sqrt();
    let pattern_correlation = if denom > 0.0 { cov / denom } else { 0.0 };
    Intercomparison {
        difference: Field2d {
            lat: a.lat.clone(),
            lon: a.lon.clone(),
            data: diff,
        },
        mean_bias,
        rms,
        pattern_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Axis;

    fn gradient_field(ny: usize, nx: usize) -> Field2d {
        let lat = Axis::latitude(ny).values;
        let lon = Axis::longitude(nx).values;
        let mut data = Vec::new();
        for &la in &lat {
            for &lo in &lon {
                // Smooth, separable function of position.
                data.push((la * 2.0 + lo * 0.1) as f32);
            }
        }
        Field2d { lat, lon, data }
    }

    #[test]
    fn identity_regrid_preserves_values() {
        let f = gradient_field(8, 16);
        let r = regrid_bilinear(&f, &f.lat.clone(), &f.lon.clone());
        for (a, b) in f.data.iter().zip(&r.data) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn refinement_interpolates_linearly() {
        let f = gradient_field(8, 16);
        let fine_lat = Axis::latitude(16).values;
        let fine_lon = Axis::longitude(32).values;
        let r = regrid_bilinear(&f, &fine_lat, &fine_lon);
        // Values are linear in lat/lon away from the wrap seam, so the
        // interpolation must reproduce the function (ignore the longitude
        // cells adjacent to the wrap where the function is discontinuous).
        for (j, &la) in fine_lat.iter().enumerate() {
            for (i, &lo) in fine_lon.iter().enumerate() {
                if !(23.0..335.0).contains(&lo) || la.abs() > 80.0 {
                    continue;
                }
                let expect = (la * 2.0 + lo * 0.1) as f32;
                let got = r.get(j, i);
                assert!(
                    (got - expect).abs() < 0.75,
                    "({la},{lo}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn coarsening_stays_in_range() {
        let f = gradient_field(32, 64);
        let coarse_lat = Axis::latitude(8).values;
        let coarse_lon = Axis::longitude(12).values;
        let r = regrid_bilinear(&f, &coarse_lat, &coarse_lon);
        let (lo, hi) = f.min_max();
        for &v in &r.data {
            assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
        assert_eq!(r.data.len(), 8 * 12);
    }

    #[test]
    fn self_intercomparison_is_null() {
        let f = gradient_field(12, 24);
        let ic = intercompare(&f, &f);
        assert!(ic.mean_bias.abs() < 1e-6);
        assert!(ic.rms < 1e-6);
        assert!((ic.pattern_correlation - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_offset_shows_as_bias() {
        let a = gradient_field(12, 24);
        let mut b = a.clone();
        for v in &mut b.data {
            *v += 2.0;
        }
        let ic = intercompare(&a, &b);
        assert!((ic.mean_bias + 2.0).abs() < 1e-4, "{}", ic.mean_bias);
        assert!((ic.rms - 2.0).abs() < 1e-4);
        // Same pattern, just offset.
        assert!(ic.pattern_correlation > 0.999);
    }

    #[test]
    fn cross_resolution_intercomparison() {
        // Same underlying function sampled on different grids should agree
        // closely after regridding.
        let a = gradient_field(16, 32);
        let b = gradient_field(24, 48);
        let ic = intercompare(&a, &b);
        assert!(ic.rms < 2.0, "rms {}", ic.rms);
        assert!(ic.pattern_correlation > 0.99);
    }

    #[test]
    fn anticorrelated_fields_detected() {
        let a = gradient_field(12, 24);
        let mut b = a.clone();
        let mean: f32 = b.data.iter().sum::<f32>() / b.data.len() as f32;
        for v in &mut b.data {
            *v = 2.0 * mean - *v; // mirror around the mean
        }
        let ic = intercompare(&a, &b);
        assert!(ic.pattern_correlation < -0.9, "{}", ic.pattern_correlation);
    }
}
