//! The SC'2000 striped-transfer experiment (Table 1), at demo length.
//!
//! Recreates the SciNet configuration — eight GigE workstations in Dallas
//! striping a 2 GB file to eight at LBNL with up to four TCP streams per
//! server (32 total) and 1 MB buffers — runs it for ten simulated minutes,
//! and prints the Table 1 statistics next to the paper's one-hour numbers.
//! (`cargo run -p esg-bench --bin table1` runs the full hour.)
//!
//! Run with: `cargo run --release --example sc2000_demo`

use esg::core::{run_table1, Table1Config};
use esg::simnet::SimDuration;

fn main() {
    println!("== SC'2000 SciNet striped transfer (Table 1, 10-minute demo) ==\n");
    let cfg = Table1Config {
        duration: SimDuration::from_mins(10),
        ..Table1Config::default()
    };
    println!(
        "configuration: {} -> {} striped servers, {} streams/server ({} total), 1 MB buffers",
        cfg.net.hosts_per_side,
        cfg.net.hosts_per_side,
        cfg.max_concurrent_per_server,
        cfg.net.hosts_per_side * cfg.max_concurrent_per_server,
    );
    println!("simulating 10 minutes of SC'00 show-floor transfer activity...\n");

    let r = run_table1(cfg);

    println!("{:<44} {:>12} {:>12}", "metric", "measured", "paper (1h)");
    println!("{:-<70}", "");
    println!(
        "{:<44} {:>12} {:>12}",
        "Striped servers at source location", r.striped_servers_source, 8
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "Striped servers at destination location", r.striped_servers_destination, 8
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "Max simultaneous TCP streams per server", r.max_streams_per_server, 4
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "Max simultaneous TCP streams overall", r.max_streams_total, 32
    );
    println!(
        "{:<44} {:>9.2} Gb/s {:>7} Gb/s",
        "Peak transfer rate over 0.1 seconds", r.peak_0_1s_gbps, 1.55
    );
    println!(
        "{:<44} {:>9.2} Gb/s {:>7} Gb/s",
        "Peak transfer rate over 5 seconds", r.peak_5s_gbps, 1.03
    );
    println!(
        "{:<44} {:>8.1} Mb/s {:>6} Mb/s",
        "Sustained transfer rate", r.sustained_mbps, 512.9
    );
    println!(
        "{:<44} {:>9.1} GB {:>9}",
        "Total data transferred (10 min here, 1 h paper)", r.total_gbytes, "230.8 GB"
    );
    println!(
        "\n{} partition transfers completed; every transfer paid full\n\
         connection setup + slow start (SC'00 had no data-channel caching).",
        r.transfers_completed
    );
}
