//! B1: related-work baselines under a mid-transfer outage (§8).
//! Single-stream FTP and a DODS-style HTTP mover vs tuned GridFTP on a
//! lossy WAN that fails for 2 minutes partway through a 2 GB transfer.

use esg_core::baseline_comparison;

fn main() {
    println!("== B1: 2 GB over a lossy WAN with a 2-minute outage ==\n");
    let rows = baseline_comparison();
    for (name, secs) in &rows {
        println!("{name:>42}: {secs:>8.1} s");
    }
    let gridftp = rows.last().unwrap().1;
    let ftp = rows[0].1;
    println!(
        "\nshape: parallel streams beat the loss-limited single stream, and\n\
         restart markers avoid re-sending data after the outage — GridFTP\n\
         finishes {:.1}x faster than 2001-era FTP.",
        ftp / gridftp
    );
}
