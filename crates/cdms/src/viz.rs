//! Visualization: render climate fields like Figure 3.
//!
//! VCDAT presents transferred data visually (Figure 3 shows temperature in
//! colour with clouds and terrain). We render [`Field2d`]s two ways:
//! an ASCII shade map for terminal output in the examples, and a binary
//! PPM image with a blue→red colour ramp for files on disk.

use crate::analysis::Field2d;

const ASCII_RAMP: &[u8] = b" .:-=+*#%@";

/// Render a field as ASCII art, `rows` tall; aspect is derived from the
/// field. North (max latitude) is at the top.
pub fn ascii_map(field: &Field2d, rows: usize) -> String {
    let ny = field.lat.len();
    let nx = field.lon.len();
    if ny == 0 || nx == 0 || rows == 0 {
        return String::new();
    }
    let cols = (rows * 2 * nx / ny.max(1)).clamp(8, 160);
    let (lo, hi) = field.min_max();
    let span = (hi - lo).max(f32::EPSILON);
    // Latitude axis ascends south→north in the data; render north at top.
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in 0..rows {
        let j_float = (rows - 1 - r) as f64 / rows as f64 * ny as f64;
        let j = (j_float as usize).min(ny - 1);
        for c in 0..cols {
            let i = (c as f64 / cols as f64 * nx as f64) as usize;
            let v = field.get(j, i.min(nx - 1));
            let norm = ((v - lo) / span).clamp(0.0, 1.0);
            let idx = (norm * (ASCII_RAMP.len() - 1) as f32).round() as usize;
            out.push(ASCII_RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Map a normalized value to a blue→white→red colour.
fn colour(norm: f32) -> [u8; 3] {
    let n = norm.clamp(0.0, 1.0);
    if n < 0.5 {
        // Blue → white
        let t = n * 2.0;
        [(t * 255.0) as u8, (t * 255.0) as u8, 255]
    } else {
        // White → red
        let t = (n - 0.5) * 2.0;
        [255, ((1.0 - t) * 255.0) as u8, ((1.0 - t) * 255.0) as u8]
    }
}

/// Render a field as a binary PPM (P6) image, one pixel per grid cell,
/// north at the top.
pub fn ppm(field: &Field2d) -> Vec<u8> {
    let ny = field.lat.len();
    let nx = field.lon.len();
    let (lo, hi) = field.min_max();
    let span = (hi - lo).max(f32::EPSILON);
    let mut out = format!("P6\n{nx} {ny}\n255\n").into_bytes();
    for j in (0..ny).rev() {
        for i in 0..nx {
            let norm = (field.get(j, i) - lo) / span;
            out.extend_from_slice(&colour(norm));
        }
    }
    out
}

/// Write a PPM rendering to disk.
pub fn save_ppm(path: &std::path::Path, field: &Field2d) -> std::io::Result<()> {
    std::fs::write(path, ppm(field))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field2d {
        Field2d {
            lat: vec![-45.0, 45.0],
            lon: vec![90.0, 270.0],
            data: vec![0.0, 1.0, 2.0, 3.0],
        }
    }

    #[test]
    fn ascii_dimensions() {
        let art = ascii_map(&field(), 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn ascii_north_up() {
        // Data row j=1 (lat 45) holds the larger values → denser glyphs at top.
        let art = ascii_map(&field(), 2);
        let lines: Vec<&str> = art.lines().collect();
        let rank = |c: char| ASCII_RAMP.iter().position(|&b| b == c as u8).unwrap();
        let top: usize = lines[0].chars().map(rank).sum();
        let bottom: usize = lines[1].chars().map(rank).sum();
        assert!(top > bottom);
    }

    #[test]
    fn constant_field_is_uniform() {
        let f = Field2d {
            lat: vec![0.0, 1.0],
            lon: vec![0.0, 1.0],
            data: vec![5.0; 4],
        };
        let art = ascii_map(&f, 2);
        let first = art.chars().next().unwrap();
        assert!(art.chars().filter(|&c| c != '\n').all(|c| c == first));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = ppm(&field());
        assert!(img.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(img.len(), 11 + 2 * 2 * 3);
    }

    #[test]
    fn ppm_extremes_are_blue_and_red() {
        let img = ppm(&field());
        let pixels = &img[11..];
        // North-up: first pixel = (j=1,i=0) value 2.0 (warm-ish), last = (j=0,i=1) value 1.0.
        // Strongest value 3.0 is (j=1,i=1) → second pixel: pure red region.
        let p_max = &pixels[3..6];
        assert_eq!(p_max, &[255, 0, 0]);
        // Coldest value 0.0 is (j=0,i=0) → third pixel: pure blue.
        let p_min = &pixels[6..9];
        assert_eq!(p_min, &[0, 0, 255]);
    }

    #[test]
    fn empty_field_is_empty_art() {
        let f = Field2d {
            lat: vec![],
            lon: vec![],
            data: vec![],
        };
        assert!(ascii_map(&f, 10).is_empty());
    }
}
