//! # esg-gsi — simulated Grid Security Infrastructure
//!
//! GridFTP's security layer [Foster et al., 1998] provides "robust and
//! flexible authentication, integrity, and confidentiality". This crate
//! reproduces its mechanisms without external dependencies:
//!
//! * [`mod@sha256`] — SHA-256 from scratch (NIST vectors in tests).
//! * [`hmac`] — HMAC-SHA-256 (RFC 4231 vectors) + labelled key derivation.
//! * [`chacha20`] — ChaCha20 stream cipher (RFC 8439 vectors) for
//!   data-channel confidentiality.
//! * [`cert`] — certificates, a CA trust anchor, and GSI *proxy
//!   delegation* (the request manager acts on the user's behalf).
//!   Signatures are simulated with HMAC under a shared-anchor trust model;
//!   see the module docs for the substitution rationale.
//! * [`handshake`] — mutual authentication with Diffie-Hellman key
//!   agreement; exports [`handshake::HANDSHAKE_ROUND_TRIPS`] so the
//!   simulator can price connection (re-)establishment, the cost that
//!   motivated GridFTP's data-channel caching.
//! * [`channel`] — sequenced, MACed, optionally encrypted records
//!   (control-channel protection and data-channel DCAU/PROT).

pub mod cert;
pub mod chacha20;
pub mod channel;
pub mod handshake;
pub mod hmac;
pub mod sha256;

pub use cert::{Certificate, CertificateAuthority, Credential, GsiError, SecEpoch, Subject};
pub use channel::{channel_pair, SealError, SecureChannel};
pub use handshake::{
    mutual_authenticate, Handshake, Hello, Proof, Protection, SessionKeys, HANDSHAKE_ROUND_TRIPS,
};
pub use hmac::{derive_key, hmac_sha256, verify_mac};
pub use sha256::{hex, sha256, Sha256};
