//! Flow-level network simulation: topology + active TCP flows + max-min
//! fair bandwidth sharing + progress integration.
//!
//! `FlowNet` is the piece the discrete-event kernel advances. Between events
//! every flow moves bytes at a constant allocated rate; any mutation (flow
//! added/removed, failure injected, slow-start stage boundary) marks the
//! allocation dirty and it is recomputed lazily. This gives exact piecewise-
//! linear progress while simulating hours of WAN activity in milliseconds.

use std::collections::{BTreeMap, HashMap};

use crate::allocation::{max_min_fair, AllocFlow};
use crate::network::{Dir, LinkId, NodeId, NodeKind, Topology};
use crate::tcp::{TcpParams, INITIAL_WINDOW, MSS};
use crate::time::{SimDuration, SimTime};

/// Identifier of an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Transferring at the allocated rate.
    Running,
    /// No route currently exists (failure); rate is zero but the flow is
    /// kept so the owner can observe the stall and decide to restart.
    Stalled,
    /// All bytes delivered.
    Done,
}

/// Parameters for starting a flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    pub src: NodeId,
    pub dst: NodeId,
    /// Total bytes to move; `f64::INFINITY` for an unbounded flow
    /// (background traffic, probes that are stopped manually).
    pub size: f64,
    /// TCP socket buffer in bytes (the SBUF value); caps rate at window/RTT.
    pub window: f64,
    /// Segment size (1460 standard, 8960 jumbo).
    pub mss: f64,
    /// Whether the source reads from its disk subsystem (false for
    /// memory-to-memory tests).
    pub uses_src_disk: bool,
    /// Whether the destination writes to its disk subsystem.
    pub uses_dst_disk: bool,
    /// Model the slow-start ramp. A cached data channel (post-SC'00 GridFTP
    /// feature) keeps its congestion window, so it skips the ramp.
    pub slow_start: bool,
}

impl FlowSpec {
    pub fn new(src: NodeId, dst: NodeId, size: f64) -> Self {
        FlowSpec {
            src,
            dst,
            size,
            window: (1u64 << 20) as f64, // paper's 1 MB default
            mss: MSS,
            uses_src_disk: true,
            uses_dst_disk: true,
            slow_start: true,
        }
    }

    pub fn window(mut self, bytes: f64) -> Self {
        self.window = bytes;
        self
    }

    pub fn mss(mut self, mss: f64) -> Self {
        self.mss = mss;
        self
    }

    pub fn memory_to_memory(mut self) -> Self {
        self.uses_src_disk = false;
        self.uses_dst_disk = false;
        self
    }

    pub fn cached_channel(mut self) -> Self {
        self.slow_start = false;
        self
    }
}

impl FlowSpec {
    fn window_f(&self) -> f64 {
        self.window
    }
}

#[derive(Debug)]
struct FlowRt {
    spec: FlowSpec,
    route: Vec<(LinkId, Dir)>,
    rtt: SimDuration,
    loss: f64,
    bytes_done: f64,
    rate: f64,
    state: FlowState,
    started: SimTime,
    /// Congestion-window ramp stage; cap = INITIAL_WINDOW * 2^stage / rtt
    /// until it reaches the steady cap. `None` once ramp is finished.
    ramp_stage: Option<u32>,
}

impl FlowRt {
    fn steady_cap(&self) -> f64 {
        TcpParams {
            window: self.spec.window_f(),
            rtt: self.rtt,
            loss: self.loss,
            mss: self.spec.mss,
        }
        .rate_cap()
    }

    /// Current per-flow ceiling including the slow-start ramp.
    fn current_cap(&self) -> f64 {
        let steady = self.steady_cap();
        match self.ramp_stage {
            None => steady,
            Some(stage) => {
                let rtt = self.rtt.as_secs_f64();
                if rtt <= 0.0 {
                    return steady;
                }
                let w = INITIAL_WINDOW * 2f64.powi(stage as i32);
                (w / rtt).min(steady)
            }
        }
    }

    /// Time of the next ramp-stage boundary, if still ramping.
    fn next_ramp_boundary(&self, _now: SimTime) -> Option<SimTime> {
        let stage = self.ramp_stage?;
        if self.rtt.is_zero() {
            return None;
        }
        Some(self.started + self.rtt * (stage as u64 + 1))
    }

    fn remaining(&self) -> f64 {
        if self.spec.size.is_finite() {
            (self.spec.size - self.bytes_done).max(0.0)
        } else {
            f64::INFINITY
        }
    }
}

/// Error returned when a flow cannot be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// No path between the endpoints (down links/nodes or partitioned).
    NoRoute,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::NoRoute => write!(f, "no route between endpoints"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Resource identity used when assembling the allocation problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ResKey {
    LinkDir(LinkId, Dir),
    NicTx(NodeId),
    NicRx(NodeId),
    Cpu(NodeId),
    DiskRead(NodeId),
    DiskWrite(NodeId),
}

/// The live network: topology plus active flows.
#[derive(Debug)]
pub struct FlowNet {
    pub topo: Topology,
    /// Whether the name service (DNS) is reachable; connection-establishing
    /// protocols check this before opening new channels. See
    /// [`crate::failure::FaultKind::NameServiceDown`].
    pub name_service_up: bool,
    /// Bookkeeping for overlapping injected faults (see [`crate::failure`]).
    pub(crate) fault_ledger: crate::failure::FaultLedger,
    flows: BTreeMap<u64, FlowRt>,
    next_id: u64,
    last_advance: SimTime,
    dirty: bool,
    completed: Vec<FlowId>,
}

impl FlowNet {
    pub fn new(topo: Topology) -> Self {
        FlowNet {
            topo,
            name_service_up: true,
            fault_ledger: crate::failure::FaultLedger::default(),
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            dirty: false,
            completed: Vec::new(),
        }
    }

    /// Number of non-completed flows currently in the system.
    pub fn active_flow_count(&self) -> usize {
        self.flows
            .values()
            .filter(|f| f.state != FlowState::Done)
            .count()
    }

    /// Start a flow at time `now` (callers must have advanced to `now`).
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> Result<FlowId, FlowError> {
        debug_assert!(now >= self.last_advance);
        let route = self
            .topo
            .route(spec.src, spec.dst)
            .ok_or(FlowError::NoRoute)?;
        let rtt = self.topo.route_rtt(&route);
        let loss = self.topo.route_loss(&route);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let ramp_stage = if spec.slow_start && !rtt.is_zero() {
            Some(0)
        } else {
            None
        };
        self.flows.insert(
            id.0,
            FlowRt {
                spec,
                route,
                rtt,
                loss,
                bytes_done: 0.0,
                rate: 0.0,
                state: FlowState::Running,
                started: now,
                ramp_stage,
            },
        );
        self.dirty = true;
        Ok(id)
    }

    /// Remove a flow (cancellation, or cleanup after completion).
    pub fn remove_flow(&mut self, id: FlowId) {
        if self.flows.remove(&id.0).is_some() {
            self.dirty = true;
        }
    }

    pub fn flow_state(&self, id: FlowId) -> Option<FlowState> {
        self.flows.get(&id.0).map(|f| f.state)
    }

    /// Bytes delivered so far (as of the last advance).
    pub fn flow_bytes(&self, id: FlowId) -> f64 {
        self.flows.get(&id.0).map_or(0.0, |f| f.bytes_done)
    }

    /// Current allocated rate in bytes/sec.
    pub fn flow_rate(&mut self, id: FlowId) -> f64 {
        self.ensure_fresh();
        self.flows.get(&id.0).map_or(0.0, |f| f.rate)
    }

    pub fn flow_rtt(&self, id: FlowId) -> Option<SimDuration> {
        self.flows.get(&id.0).map(|f| f.rtt)
    }

    /// RTT between two nodes along the current route, if any. Used by NWS
    /// latency sensors and by protocol engines to price control exchanges.
    pub fn path_rtt(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        let route = self.topo.route(src, dst)?;
        Some(self.topo.route_rtt(&route))
    }

    /// Mark a link up/down; flows are rerouted (or stalled) lazily.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if self.topo.link(link).up != up {
            self.topo.link_mut(link).up = up;
            self.reroute_all();
        }
    }

    /// Mark a node up/down.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        if self.topo.node(node).up != up {
            self.topo.node_mut(node).up = up;
            self.reroute_all();
        }
    }

    /// Change a link's capacity (degradation scenarios).
    pub fn set_link_capacity(&mut self, link: LinkId, capacity: f64) {
        self.topo.link_mut(link).capacity = capacity;
        self.dirty = true;
    }

    /// Change a link's loss rate (congestion scenarios). Refreshes the
    /// cached path loss of every live flow so their Mathis caps track the
    /// new conditions.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.topo.set_link_loss(link, loss);
        for f in self.flows.values_mut() {
            if f.state == FlowState::Running {
                f.loss = self.topo.route_loss(&f.route);
            }
        }
        self.dirty = true;
    }

    fn reroute_all(&mut self) {
        for f in self.flows.values_mut() {
            if f.state == FlowState::Done {
                continue;
            }
            match self.topo.route(f.spec.src, f.spec.dst) {
                Some(route) => {
                    f.rtt = self.topo.route_rtt(&route);
                    f.loss = self.topo.route_loss(&route);
                    f.route = route;
                    if f.state == FlowState::Stalled {
                        // A flow resuming after an outage re-enters slow
                        // start. This also discards ramp boundaries frozen
                        // in the past while the flow was stalled, which
                        // would otherwise wedge the kernel's next-event
                        // computation at that past instant.
                        f.started = self.last_advance;
                        f.ramp_stage = if f.spec.slow_start && !f.rtt.is_zero() {
                            Some(0)
                        } else {
                            None
                        };
                    }
                    f.state = FlowState::Running;
                }
                None => {
                    f.route.clear();
                    f.rate = 0.0;
                    f.state = FlowState::Stalled;
                }
            }
        }
        self.dirty = true;
    }

    /// Integrate progress up to `t` using the current allocation. Flows that
    /// finish are marked `Done` and queued for [`FlowNet::take_completed`].
    pub fn advance_to(&mut self, t: SimTime) {
        self.ensure_fresh();
        if t <= self.last_advance {
            return;
        }
        let dt = t.since(self.last_advance).as_secs_f64();
        for (&id, f) in self.flows.iter_mut() {
            if f.state != FlowState::Running || f.rate <= 0.0 {
                continue;
            }
            f.bytes_done += f.rate * dt;
            if f.spec.size.is_finite() && f.bytes_done + 0.5 >= f.spec.size {
                f.bytes_done = f.spec.size;
                f.state = FlowState::Done;
                f.rate = 0.0;
                self.completed.push(FlowId(id));
                self.dirty = true;
            }
        }
        // Ramp stage boundaries we've passed.
        for f in self.flows.values_mut() {
            if f.state != FlowState::Running {
                continue;
            }
            while let Some(stage) = f.ramp_stage {
                let boundary = f.started + f.rtt * (stage as u64 + 1);
                if boundary > t {
                    break;
                }
                let next = stage + 1;
                let rtt = f.rtt.as_secs_f64();
                let w = INITIAL_WINDOW * 2f64.powi(next as i32);
                if rtt <= 0.0 || w / rtt >= f.steady_cap() {
                    f.ramp_stage = None; // ramp complete
                } else {
                    f.ramp_stage = Some(next);
                }
                self.dirty = true;
            }
        }
        self.last_advance = t;
    }

    /// Drain the set of flows that completed during past advances.
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.completed)
    }

    /// The next time anything discontinuous happens inside the network:
    /// a flow completion or a slow-start stage boundary. `SimTime::MAX`
    /// when nothing is pending.
    pub fn next_event_time(&mut self) -> SimTime {
        self.ensure_fresh();
        let mut next = SimTime::MAX;
        for f in self.flows.values() {
            if f.state != FlowState::Running {
                continue;
            }
            if let Some(b) = f.next_ramp_boundary(self.last_advance) {
                // Never report an event at or before the present: a stale
                // boundary must still move the clock forward so the ramp
                // catch-up in `advance_to` gets a chance to run.
                let b = b.max(self.last_advance + SimDuration::from_nanos(1));
                if b < next {
                    next = b;
                }
            }
            let rem = f.remaining();
            if f.rate > 0.0 && rem.is_finite() {
                let secs = rem / f.rate;
                let t = self.last_advance
                    + SimDuration::from_secs_f64(secs)
                    + SimDuration::from_nanos(1);
                if t < next {
                    next = t;
                }
            }
        }
        next
    }

    /// Recompute the max-min fair allocation if anything changed.
    fn ensure_fresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;

        // Assemble resources used by at least one running flow.
        let mut res_index: HashMap<ResKey, usize> = HashMap::new();
        let mut capacities: Vec<f64> = Vec::new();
        let mut alloc_flows: Vec<AllocFlow> = Vec::new();
        let mut flow_ids: Vec<u64> = Vec::new();

        let intern = |key: ResKey,
                      cap: f64,
                      res_index: &mut HashMap<ResKey, usize>,
                      capacities: &mut Vec<f64>|
         -> Option<usize> {
            if !cap.is_finite() {
                return None; // unconstrained resources don't participate
            }
            Some(*res_index.entry(key).or_insert_with(|| {
                capacities.push(cap);
                capacities.len() - 1
            }))
        };

        for (&id, f) in self.flows.iter() {
            if f.state != FlowState::Running {
                continue;
            }
            let mut resources = Vec::new();
            for &(lid, dir) in &f.route {
                let cap = self.topo.link(lid).capacity;
                if let Some(r) = intern(
                    ResKey::LinkDir(lid, dir),
                    cap,
                    &mut res_index,
                    &mut capacities,
                ) {
                    resources.push(r);
                }
            }
            let src = f.spec.src;
            let dst = f.spec.dst;
            let src_node = self.topo.node(src);
            let dst_node = self.topo.node(dst);
            if src_node.kind == NodeKind::Host {
                if let Some(r) = intern(
                    ResKey::NicTx(src),
                    src_node.nic_rate,
                    &mut res_index,
                    &mut capacities,
                ) {
                    resources.push(r);
                }
                if let Some(r) = intern(
                    ResKey::Cpu(src),
                    src_node.cpu.max_byte_rate(),
                    &mut res_index,
                    &mut capacities,
                ) {
                    resources.push(r);
                }
                if f.spec.uses_src_disk {
                    if let Some(r) = intern(
                        ResKey::DiskRead(src),
                        src_node.disk_read_rate,
                        &mut res_index,
                        &mut capacities,
                    ) {
                        resources.push(r);
                    }
                }
            }
            if dst_node.kind == NodeKind::Host {
                if let Some(r) = intern(
                    ResKey::NicRx(dst),
                    dst_node.nic_rate,
                    &mut res_index,
                    &mut capacities,
                ) {
                    resources.push(r);
                }
                if let Some(r) = intern(
                    ResKey::Cpu(dst),
                    dst_node.cpu.max_byte_rate(),
                    &mut res_index,
                    &mut capacities,
                ) {
                    resources.push(r);
                }
                if f.spec.uses_dst_disk {
                    if let Some(r) = intern(
                        ResKey::DiskWrite(dst),
                        dst_node.disk_write_rate,
                        &mut res_index,
                        &mut capacities,
                    ) {
                        resources.push(r);
                    }
                }
            }
            resources.sort_unstable();
            resources.dedup();
            alloc_flows.push(AllocFlow {
                resources,
                cap: f.current_cap(),
            });
            flow_ids.push(id);
        }

        let rates = max_min_fair(&capacities, &alloc_flows);
        for (id, rate) in flow_ids.into_iter().zip(rates) {
            self.flows.get_mut(&id).unwrap().rate = rate;
        }
    }

    /// Fraction of a host's CPU byte-processing budget currently consumed
    /// by its flows (0.0 = idle, 1.0 = saturated). This is the "available
    /// CPU percentage" signal NWS's CPU sensor reports, and what §7 means
    /// by "the CPU was running at near 100% capacity".
    pub fn host_cpu_utilization(&mut self, node: NodeId) -> f64 {
        self.ensure_fresh();
        let budget = self.topo.node(node).cpu.max_byte_rate();
        if !budget.is_finite() {
            return 0.0;
        }
        let used: f64 = self
            .flows
            .values()
            .filter(|f| f.state == FlowState::Running && (f.spec.src == node || f.spec.dst == node))
            .map(|f| f.rate)
            .sum();
        (used / budget).min(1.0)
    }

    /// Force an allocation recompute and return the current rate of every
    /// running flow (for instrumentation snapshots).
    pub fn snapshot_rates(&mut self) -> Vec<(FlowId, f64)> {
        self.ensure_fresh();
        self.flows
            .iter()
            .filter(|(_, f)| f.state == FlowState::Running)
            .map(|(&id, f)| (FlowId(id), f.rate))
            .collect()
    }

    pub fn now(&self) -> SimTime {
        self.last_advance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Node;

    fn dumbbell(capacity: f64, latency_ms: u64) -> (FlowNet, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, capacity, SimDuration::from_millis(latency_ms));
        (FlowNet::new(t), a, b)
    }

    fn big_window_spec(a: NodeId, b: NodeId, size: f64) -> FlowSpec {
        FlowSpec::new(a, b, size).window(1e12).memory_to_memory()
    }

    #[test]
    fn single_flow_completes_at_line_rate() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        // Zero latency: no slow-start ramp, rate = link capacity.
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 100e6))
            .unwrap();
        let t = net.next_event_time();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "{t}");
        net.advance_to(t);
        assert_eq!(net.flow_state(id), Some(FlowState::Done));
        assert_eq!(net.take_completed(), vec![id]);
    }

    #[test]
    fn two_flows_halve_throughput() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let f1 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(f1) - 50e6).abs() < 1.0);
        assert!((net.flow_rate(f2) - 50e6).abs() < 1.0);
    }

    #[test]
    fn window_limits_flow_below_link() {
        let (mut net, a, b) = dumbbell(1e9, 50); // 100 ms RTT
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(1e6)
            .memory_to_memory()
            .cached_channel(); // skip ramp: observe steady state directly
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        // window/RTT = 1 MB / 0.1 s = 10 MB/s.
        assert!((net.flow_rate(id) - 10e6).abs() < 1.0);
    }

    #[test]
    fn slow_start_ramp_caps_early_rate() {
        let (mut net, a, b) = dumbbell(1e9, 10); // 20 ms RTT
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(4e6)
            .memory_to_memory();
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        let early = net.flow_rate(id);
        // Initial cap = 2*MSS / 20 ms = 146 KB/s.
        assert!(early < 200e3, "early rate {early}");
        net.advance_to(SimTime::from_secs(2));
        let late = net.flow_rate(id);
        assert!(late > 50e6, "steady rate {late}");
    }

    #[test]
    fn cached_channel_skips_ramp() {
        let (mut net, a, b) = dumbbell(1e9, 10);
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(4e6)
            .memory_to_memory()
            .cached_channel();
        let id = net.start_flow(SimTime::ZERO, spec).unwrap();
        assert!(net.flow_rate(id) > 50e6);
    }

    #[test]
    fn link_failure_stalls_and_recovery_resumes() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, 200e6))
            .unwrap();
        net.advance_to(SimTime::from_secs(1)); // 100 MB done
        let done_before = net.flow_bytes(id);
        assert!((done_before - 100e6).abs() < 1.0);

        net.set_link_up(LinkId(0), false);
        assert_eq!(net.flow_state(id), Some(FlowState::Stalled));
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.flow_bytes(id), done_before); // no progress while down

        net.set_link_up(LinkId(0), true);
        assert_eq!(net.flow_state(id), Some(FlowState::Running));
        net.advance_to(SimTime::from_secs(6));
        assert_eq!(net.flow_state(id), Some(FlowState::Done));
    }

    #[test]
    fn no_route_is_an_error() {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        // no link
        let mut net = FlowNet::new(t);
        assert_eq!(
            net.start_flow(SimTime::ZERO, FlowSpec::new(a, b, 1.0)),
            Err(FlowError::NoRoute)
        );
    }

    #[test]
    fn host_nic_caps_aggregate() {
        // Fat link, slow NIC at the source: 3 flows to 3 sinks share the NIC.
        let mut t = Topology::new();
        let src = t.add_node(Node::host("src").with_nic(30e6));
        let r = t.add_node(Node::router("r"));
        t.add_link(src, r, 1e9, SimDuration::ZERO);
        let mut sinks = Vec::new();
        for i in 0..3 {
            let s = t.add_node(Node::host(format!("sink{i}")));
            t.add_link(r, s, 1e9, SimDuration::ZERO);
            sinks.push(s);
        }
        let mut net = FlowNet::new(t);
        let flows: Vec<_> = sinks
            .iter()
            .map(|&s| {
                net.start_flow(SimTime::ZERO, big_window_spec(src, s, f64::INFINITY))
                    .unwrap()
            })
            .collect();
        for f in flows {
            assert!((net.flow_rate(f) - 10e6).abs() < 1.0);
        }
    }

    #[test]
    fn disk_constrains_only_disk_flows() {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a").with_disk(5e6, f64::INFINITY));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, 1e9, SimDuration::ZERO);
        let mut net = FlowNet::new(t);
        let disk_flow = net
            .start_flow(
                SimTime::ZERO,
                FlowSpec::new(a, b, f64::INFINITY).window(1e12),
            )
            .unwrap();
        let mem_flow = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(disk_flow) - 5e6).abs() < 1.0);
        assert!(net.flow_rate(mem_flow) > 100e6);
    }

    #[test]
    fn remove_flow_releases_bandwidth() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let f1 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        let f2 = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        assert!((net.flow_rate(f1) - 50e6).abs() < 1.0);
        net.remove_flow(f2);
        assert!((net.flow_rate(f1) - 100e6).abs() < 1.0);
    }

    #[test]
    fn parallel_streams_beat_one_on_lossy_path() {
        // Loss-limited path: N streams get ~N x the Mathis bound, the
        // mechanism behind GridFTP's parallel transfers.
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let l = t.add_link(a, b, 1e9, SimDuration::from_millis(25));
        t.set_link_loss(l, 0.001);
        let mut net = FlowNet::new(t);
        let spec = FlowSpec::new(a, b, f64::INFINITY)
            .window(1e9)
            .memory_to_memory()
            .cached_channel();
        let single = net.start_flow(SimTime::ZERO, spec).unwrap();
        let r1 = net.flow_rate(single);
        for _ in 0..3 {
            net.start_flow(SimTime::ZERO, spec).unwrap();
        }
        let total: f64 = net.snapshot_rates().iter().map(|(_, r)| r).sum();
        assert!(
            total > 3.5 * r1,
            "4 streams should ~4x a loss-limited stream: {total} vs {r1}"
        );
    }

    #[test]
    fn next_event_reports_ramp_boundaries() {
        let (mut net, a, b) = dumbbell(1e9, 10);
        net.start_flow(
            SimTime::ZERO,
            FlowSpec::new(a, b, f64::INFINITY).memory_to_memory(),
        )
        .unwrap();
        // First ramp boundary at one RTT (20 ms).
        let next = net.next_event_time();
        assert_eq!(next, SimTime::from_secs_f64(0.020));
    }

    #[test]
    fn cpu_utilization_tracks_flows() {
        let mut t = Topology::new();
        let cpu = crate::network::CpuModel {
            cycles_per_sec: 800e6,
            cycles_per_byte: 8.0,
            coalescing_factor: 1.0,
            jumbo_frames: false,
        }; // budget = 100 MB/s
        let a = t.add_node(Node::host("a").with_cpu(cpu));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, 50e6, SimDuration::ZERO);
        let mut net = FlowNet::new(t);
        assert_eq!(net.host_cpu_utilization(a), 0.0);
        let id = net
            .start_flow(
                SimTime::ZERO,
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        // Link-limited flow at 50 MB/s against a 100 MB/s CPU budget.
        let u = net.host_cpu_utilization(a);
        assert!((u - 0.5).abs() < 1e-6, "{u}");
        // Router/unlimited node reports 0.
        assert_eq!(net.host_cpu_utilization(b), 0.0);
        net.remove_flow(id);
        assert_eq!(net.host_cpu_utilization(a), 0.0);
    }

    #[test]
    fn advance_is_idempotent_for_same_time() {
        let (mut net, a, b) = dumbbell(100e6, 0);
        let id = net
            .start_flow(SimTime::ZERO, big_window_spec(a, b, f64::INFINITY))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        let bytes = net.flow_bytes(id);
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.flow_bytes(id), bytes);
    }
}
