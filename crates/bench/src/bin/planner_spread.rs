//! A8: multi-site transfer planning (§4's "plan concurrent file transfers
//! to maximize the number of different sites from which files are
//! obtained").

use esg_core::planner_spread_comparison;

fn main() {
    println!("== A8: 8-file request, replicas at three equal 155 Mb/s sites ==\n");
    let (no_spread, spread) = planner_spread_comparison();
    println!("   independent best-bandwidth:  {no_spread:>7.1} s  (all pulls pile onto one site)");
    println!("   spread planner:              {spread:>7.1} s  (pulls fan out across sites)");
    println!(
        "\nshape: spreading concurrent pulls across sites multiplies the\n\
         aggregate rate — {:.1}x here.",
        no_spread / spread
    );
}
