//! Fault injection for wide-area experiments.
//!
//! Figure 8 of the paper shows a 14-hour run punctuated by real incidents —
//! "a power failure for the SC network (SCiNet), DNS problems, and backbone
//! problems on the exhibition floor". This module schedules equivalent
//! synthetic faults on the virtual clock:
//!
//! * **Power failure** — a node (or every link at a site) goes down; existing
//!   transfers stall, new connections fail.
//! * **Backbone problem** — a link's capacity is degraded for a while.
//! * **DNS problem** — the control plane is unavailable: *new* connection
//!   setups fail while established flows keep moving. Modeled as a flag on
//!   [`crate::flownet::FlowNet`] that connection-establishing protocols
//!   check.

use crate::kernel::Sim;
use crate::network::{LinkId, NodeId};
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Bookkeeping that lets injected faults overlap without clobbering each
/// other: a link held down by two faults stays down until *both* end, and
/// overlapping degrades compose multiplicatively and restore the true
/// base capacity once the last one lifts.
#[derive(Debug, Default, Clone)]
pub struct FaultLedger {
    link_down: HashMap<LinkId, u32>,
    node_down: HashMap<NodeId, u32>,
    ns_down: u32,
    /// Per link: capacity before the first active degrade, and the
    /// multiset of active degrade fractions.
    degrade: HashMap<LinkId, (f64, Vec<f64>)>,
    /// Per node: depth of active wire-corruption faults, and when the
    /// current corruption episode (depth 0 → 1) began.
    wire_corrupt: HashMap<NodeId, (u32, SimTime)>,
    /// Closed wire-corruption episodes, `(node, start, end)`, kept so
    /// data-integrity checks can ask "was this sender corrupting during
    /// that transfer?" after the fault has lifted.
    wire_history: Vec<(NodeId, SimTime, SimTime)>,
}

/// What a fault affects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Take a link fully down (fiber cut, switch power loss).
    LinkDown(LinkId),
    /// Take a node down (host/router power failure).
    NodeDown(NodeId),
    /// Degrade a link to the given fraction of its capacity (congestion or
    /// a flapping backbone).
    LinkDegrade(LinkId, f64),
    /// Name service outage: new connections cannot be established, existing
    /// flows continue.
    NameServiceDown,
    /// Silent data corruption on the wire: EBLOCK payloads *served by* this
    /// node may arrive bit-flipped while the fault is active. Flows keep
    /// moving at full rate — only checksums can tell.
    WireCorrupt(NodeId),
}

/// A fault with a start time and duration.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    pub at: SimTime,
    pub duration: SimDuration,
    pub kind: FaultKind,
}

impl Fault {
    pub fn new(at: SimTime, duration: SimDuration, kind: FaultKind) -> Self {
        Fault { at, duration, kind }
    }

    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// Schedule a fault (onset and recovery) on the simulator. Faults of the
/// same kind on the same target may overlap freely: the ledger keeps the
/// target faulted until every covering fault has ended.
pub fn inject<W: 'static>(sim: &mut Sim<W>, fault: Fault) {
    match fault.kind {
        FaultKind::LinkDown(l) => {
            sim.schedule_at(fault.at, move |s| s.fault_link_down(l));
            sim.schedule_at(fault.end(), move |s| s.fault_link_restore(l));
        }
        FaultKind::NodeDown(n) => {
            sim.schedule_at(fault.at, move |s| s.fault_node_down(n));
            sim.schedule_at(fault.end(), move |s| s.fault_node_restore(n));
        }
        FaultKind::LinkDegrade(l, frac) => {
            sim.schedule_at(fault.at, move |s| s.fault_link_degrade(l, frac));
            sim.schedule_at(fault.end(), move |s| s.fault_link_undegrade(l, frac));
        }
        FaultKind::NameServiceDown => {
            sim.schedule_at(fault.at, |s| s.fault_name_service_down());
            sim.schedule_at(fault.end(), |s| s.fault_name_service_restore());
        }
        FaultKind::WireCorrupt(n) => {
            sim.schedule_at(fault.at, move |s| s.fault_wire_corrupt_start(n));
            sim.schedule_at(fault.end(), move |s| s.fault_wire_corrupt_end(n));
        }
    }
}

impl<W> Sim<W> {
    fn fault_link_down(&mut self, l: LinkId) {
        let d = self.net.fault_ledger.link_down.entry(l).or_default();
        *d += 1;
        if *d == 1 {
            self.net.set_link_up(l, false);
        }
    }

    fn fault_link_restore(&mut self, l: LinkId) {
        if let Some(d) = self.net.fault_ledger.link_down.get_mut(&l) {
            *d -= 1;
            if *d == 0 {
                self.net.fault_ledger.link_down.remove(&l);
                self.net.set_link_up(l, true);
            }
        }
    }

    fn fault_node_down(&mut self, n: NodeId) {
        let d = self.net.fault_ledger.node_down.entry(n).or_default();
        *d += 1;
        if *d == 1 {
            self.net.set_node_up(n, false);
        }
    }

    fn fault_node_restore(&mut self, n: NodeId) {
        if let Some(d) = self.net.fault_ledger.node_down.get_mut(&n) {
            *d -= 1;
            if *d == 0 {
                self.net.fault_ledger.node_down.remove(&n);
                self.net.set_node_up(n, true);
            }
        }
    }

    fn fault_link_degrade(&mut self, l: LinkId, frac: f64) {
        let cap = self.net.topo.link(l).capacity;
        let entry = self
            .net
            .fault_ledger
            .degrade
            .entry(l)
            .or_insert_with(|| (cap, Vec::new()));
        entry.1.push(frac);
        let target = entry.0 * entry.1.iter().product::<f64>();
        self.net.set_link_capacity(l, target);
    }

    fn fault_link_undegrade(&mut self, l: LinkId, frac: f64) {
        let Some(entry) = self.net.fault_ledger.degrade.get_mut(&l) else {
            return;
        };
        if let Some(pos) = entry.1.iter().position(|&f| f == frac) {
            entry.1.remove(pos);
        }
        let target = entry.0 * entry.1.iter().product::<f64>();
        let done = entry.1.is_empty();
        if done {
            self.net.fault_ledger.degrade.remove(&l);
        }
        self.net.set_link_capacity(l, target);
    }

    fn fault_name_service_down(&mut self) {
        self.net.fault_ledger.ns_down += 1;
        if self.net.fault_ledger.ns_down == 1 {
            self.net_set_name_service(false);
        }
    }

    fn fault_name_service_restore(&mut self) {
        if self.net.fault_ledger.ns_down > 0 {
            self.net.fault_ledger.ns_down -= 1;
            if self.net.fault_ledger.ns_down == 0 {
                self.net_set_name_service(true);
            }
        }
    }

    fn fault_wire_corrupt_start(&mut self, n: NodeId) {
        let now = self.now();
        let entry = self
            .net
            .fault_ledger
            .wire_corrupt
            .entry(n)
            .or_insert((0, now));
        if entry.0 == 0 {
            entry.1 = now;
        }
        entry.0 += 1;
    }

    fn fault_wire_corrupt_end(&mut self, n: NodeId) {
        let now = self.now();
        if let Some(entry) = self.net.fault_ledger.wire_corrupt.get_mut(&n) {
            entry.0 -= 1;
            if entry.0 == 0 {
                let started = entry.1;
                self.net.fault_ledger.wire_corrupt.remove(&n);
                self.net.fault_ledger.wire_history.push((n, started, now));
            }
        }
    }

    /// Whether blocks served by `n` are being corrupted right now.
    pub fn wire_corrupt_active(&self, n: NodeId) -> bool {
        self.net
            .fault_ledger
            .wire_corrupt
            .get(&n)
            .is_some_and(|&(depth, _)| depth > 0)
    }

    /// Whether a wire-corruption episode at `n` overlapped the closed
    /// interval `[from, to]` — the question an integrity verifier asks
    /// about a transfer that served data during that window.
    pub fn wire_corrupt_during(&self, n: NodeId, from: SimTime, to: SimTime) -> bool {
        if let Some(&(depth, started)) = self.net.fault_ledger.wire_corrupt.get(&n) {
            if depth > 0 && started <= to {
                return true;
            }
        }
        self.net
            .fault_ledger
            .wire_history
            .iter()
            .any(|&(node, s, e)| node == n && s <= to && e >= from)
    }
}

/// Schedule a whole plan of faults.
pub fn inject_all<W: 'static>(sim: &mut Sim<W>, faults: &[Fault]) {
    for &f in faults {
        inject(sim, f);
    }
}

// Name-service availability rides on the kernel so that the fault injector
// doesn't need to know about the world type.
impl<W> Sim<W> {
    pub fn net_set_name_service(&mut self, up: bool) {
        self.net.name_service_up = up;
    }

    /// Whether new connections can currently be established (DNS reachable).
    pub fn name_service_up(&self) -> bool {
        self.net.name_service_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flownet::{FlowSpec, FlowState};
    use crate::network::{Node, Topology};

    fn two_hosts() -> (Topology, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        let l = t.add_link(a, b, 100e6, SimDuration::ZERO);
        (t, a, b, l)
    }

    #[test]
    fn link_outage_stalls_then_recovers() {
        let (t, a, b, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(2),
                FaultKind::LinkDown(l),
            ),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Stalled));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn degrade_reduces_then_restores_capacity() {
        let (t, _, _, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::LinkDegrade(l, 0.25),
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!((sim.net.topo.link(l).capacity - 25e6).abs() < 1.0);
        sim.run_until(SimTime::from_secs(3));
        assert!((sim.net.topo.link(l).capacity - 100e6).abs() < 1.0);
    }

    #[test]
    fn node_outage_round_trip() {
        let (t, a, b, _) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::NodeDown(b),
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Stalled));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn flow_stalled_across_ramp_boundary_resumes_after_node_outage() {
        // Regression: a slow-starting flow that stalled across one of its
        // ramp boundaries (source node down mid-ramp) used to wedge the
        // kernel on recovery — the frozen boundary lay in the past,
        // `next_event_time` kept returning it, and virtual time never
        // advanced again. Resumed flows now re-enter slow start.
        let mut t = Topology::new();
        let a = t.add_node(Node::host("a"));
        let b = t.add_node(Node::host("b"));
        t.add_link(a, b, 100e6, SimDuration::from_millis(50));
        let mut sim: Sim<bool> = Sim::new(t, false);
        sim.start_flow(
            FlowSpec::new(a, b, 50e6).window(1e12).memory_to_memory(),
            |s| s.world = true,
        )
        .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs_f64(0.15),
                SimDuration::from_secs(1),
                FaultKind::NodeDown(a),
            ),
        );
        sim.run_until(SimTime::from_secs(60));
        assert!(sim.world, "flow must complete after the outage heals");
    }

    #[test]
    fn name_service_outage_sets_flag() {
        let (t, ..) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        assert!(sim.name_service_up());
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::NameServiceDown,
            ),
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!(!sim.name_service_up());
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.name_service_up());
    }

    #[test]
    fn overlapping_link_faults_hold_link_down_until_last_ends() {
        let (t, a, b, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        // First fault [1, 3) ends while the second [2, 6) is still active:
        // the earlier recovery must not resurrect the link.
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(2),
                    FaultKind::LinkDown(l),
                ),
                Fault::new(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(4),
                    FaultKind::LinkDown(l),
                ),
            ],
        );
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(
            sim.net.flow_state(id),
            Some(FlowState::Stalled),
            "link must stay down after the first fault's recovery"
        );
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn overlapping_node_faults_hold_node_down_until_last_ends() {
        let (t, a, b, _) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        let id = sim
            .start_flow_detached(
                FlowSpec::new(a, b, f64::INFINITY)
                    .window(1e12)
                    .memory_to_memory(),
            )
            .unwrap();
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(2),
                    FaultKind::NodeDown(b),
                ),
                Fault::new(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(4),
                    FaultKind::NodeDown(b),
                ),
            ],
        );
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Stalled));
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.net.flow_state(id), Some(FlowState::Running));
    }

    #[test]
    fn overlapping_degrades_compose_and_restore_base_capacity() {
        let (t, _, _, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        // A halves capacity on [1, 4); B halves it again on [2, 3).
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(3),
                    FaultKind::LinkDegrade(l, 0.5),
                ),
                Fault::new(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(1),
                    FaultKind::LinkDegrade(l, 0.5),
                ),
            ],
        );
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!((sim.net.topo.link(l).capacity - 50e6).abs() < 1.0);
        sim.run_until(SimTime::from_secs_f64(2.5));
        assert!(
            (sim.net.topo.link(l).capacity - 25e6).abs() < 1.0,
            "overlapping degrades must compose"
        );
        sim.run_until(SimTime::from_secs_f64(3.5));
        assert!(
            (sim.net.topo.link(l).capacity - 50e6).abs() < 1.0,
            "inner recovery must leave the outer degrade in force"
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(
            (sim.net.topo.link(l).capacity - 100e6).abs() < 1.0,
            "base capacity must come back exactly"
        );
    }

    #[test]
    fn overlapping_name_service_faults_stay_down_until_last_ends() {
        let (t, ..) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(2),
                    FaultKind::NameServiceDown,
                ),
                Fault::new(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(3),
                    FaultKind::NameServiceDown,
                ),
            ],
        );
        sim.run_until(SimTime::from_secs(4));
        assert!(!sim.name_service_up(), "second outage still in force");
        sim.run_until(SimTime::from_secs(6));
        assert!(sim.name_service_up());
    }

    #[test]
    fn name_service_outage_drains_established_flows() {
        let (t, a, b, _) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        // A finite flow established before the outage must keep moving and
        // finish during it; only *new* connections are refused (callers
        // check `name_service_up` before opening channels).
        let id = sim
            .start_flow_detached(FlowSpec::new(a, b, 10e6).window(1e12).memory_to_memory())
            .unwrap();
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(1),
                SimDuration::from_secs(30),
                FaultKind::NameServiceDown,
            ),
        );
        sim.run_until(SimTime::from_secs(10));
        assert!(!sim.name_service_up());
        // Completed flows are retired from the allocator, so a drained
        // flow no longer has a state.
        assert_eq!(
            sim.net.flow_state(id),
            None,
            "established flow must drain to completion during the outage"
        );
        assert_eq!(sim.net.active_flow_count(), 0);
    }

    #[test]
    fn inject_all_schedules_everything() {
        let (t, _, _, l) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(1),
                    FaultKind::LinkDown(l),
                ),
                Fault::new(
                    SimTime::from_secs(5),
                    SimDuration::from_secs(1),
                    FaultKind::NameServiceDown,
                ),
            ],
        );
        assert_eq!(sim.pending_events(), 4);
    }

    #[test]
    fn wire_corruption_tracks_active_window_and_history() {
        let (t, a, ..) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject(
            &mut sim,
            Fault::new(
                SimTime::from_secs(2),
                SimDuration::from_secs(3),
                FaultKind::WireCorrupt(a),
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.wire_corrupt_active(a));
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.wire_corrupt_active(a));
        sim.run_until(SimTime::from_secs(10));
        assert!(!sim.wire_corrupt_active(a));
        // History answers overlap queries after the episode closed.
        assert!(sim.wire_corrupt_during(a, SimTime::from_secs(4), SimTime::from_secs(6)));
        assert!(sim.wire_corrupt_during(a, SimTime::from_secs(1), SimTime::from_secs(2)));
        assert!(!sim.wire_corrupt_during(a, SimTime::from_secs(6), SimTime::from_secs(8)));
        assert!(!sim.wire_corrupt_during(a, SimTime::ZERO, SimTime::from_secs(1)));
    }

    #[test]
    fn overlapping_wire_corruption_merges_into_one_episode() {
        let (t, _, b, _) = two_hosts();
        let mut sim: Sim<()> = Sim::new(t, ());
        inject_all(
            &mut sim,
            &[
                Fault::new(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(2),
                    FaultKind::WireCorrupt(b),
                ),
                Fault::new(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(3),
                    FaultKind::WireCorrupt(b),
                ),
            ],
        );
        sim.run_until(SimTime::from_secs(4));
        assert!(
            sim.wire_corrupt_active(b),
            "first recovery must not end the merged episode"
        );
        sim.run_until(SimTime::from_secs(6));
        assert!(!sim.wire_corrupt_active(b));
        // The merged episode spans [1, 5]; a probe inside the first
        // fault's tail still hits it.
        assert!(sim.wire_corrupt_during(b, SimTime::from_secs_f64(4.5), SimTime::from_secs(5)));
    }
}
