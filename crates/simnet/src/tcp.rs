//! Flow-level TCP throughput model.
//!
//! The paper's §7 works through exactly these effects:
//!
//! * **Buffer/window limit** — "Buffer size in KB = Bandwidth (Mbs) * Latency
//!   (ms) * 1024/1000/8": a connection can never exceed `window / RTT`.
//!   They chose 1 MB buffers for 10–20 ms RTTs at 200–500 Mb/s.
//! * **Loss limit** — on lossy paths a single TCP stream is bounded by the
//!   Mathis steady-state formula `MSS·C / (RTT·√p)`; this is why parallel
//!   streams (which multiply the bound) helped, citing Qiu et al. \[15\].
//! * **Slow start** — the GridFTP implementation at SC'2000 tore down and
//!   rebuilt TCP connections between files, paying connection setup plus a
//!   slow-start ramp each time; the observed "frequent drop in bandwidth to
//!   relatively low levels" in Figure 8 motivated data-channel caching.

use crate::time::SimDuration;

/// Maximum TCP segment size in bytes (standard Ethernet MTU minus headers).
pub const MSS: f64 = 1460.0;
/// MSS with jumbo frames.
pub const MSS_JUMBO: f64 = 8960.0;
/// Mathis constant for TCP Reno with delayed ACKs.
pub const MATHIS_C: f64 = 1.22;
/// Initial congestion window at connection start (RFC 2581-era: up to 2 MSS;
/// we use 2 segments).
pub const INITIAL_WINDOW: f64 = 2.0 * MSS;

/// Static parameters of one TCP connection for the flow model.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    /// Socket buffer (window) size in bytes; caps in-flight data.
    pub window: f64,
    /// Round-trip time.
    pub rtt: SimDuration,
    /// Path packet-loss probability.
    pub loss: f64,
    /// Segment size in bytes.
    pub mss: f64,
}

impl TcpParams {
    pub fn new(window: f64, rtt: SimDuration, loss: f64) -> Self {
        TcpParams {
            window,
            rtt,
            loss,
            mss: MSS,
        }
    }

    /// Window-limited throughput bound: `window / RTT` (bytes/sec).
    pub fn window_limit(&self) -> f64 {
        let rtt = self.rtt.as_secs_f64();
        if rtt <= 0.0 {
            f64::INFINITY
        } else {
            self.window / rtt
        }
    }

    /// Mathis steady-state loss-limited throughput bound (bytes/sec):
    /// `MSS * C / (RTT * sqrt(p))`. Infinite when the path is loss-free.
    pub fn loss_limit(&self) -> f64 {
        let rtt = self.rtt.as_secs_f64();
        if self.loss <= 0.0 || rtt <= 0.0 {
            f64::INFINITY
        } else {
            self.mss * MATHIS_C / (rtt * self.loss.sqrt())
        }
    }

    /// Combined per-connection ceiling.
    pub fn rate_cap(&self) -> f64 {
        self.window_limit().min(self.loss_limit())
    }

    /// Time for slow start to ramp the congestion window from
    /// [`INITIAL_WINDOW`] to the effective window needed to sustain
    /// `target_rate` (doubling once per RTT).
    pub fn slow_start_time(&self, target_rate: f64) -> SimDuration {
        let rtt = self.rtt.as_secs_f64();
        if rtt <= 0.0 || !target_rate.is_finite() || target_rate <= 0.0 {
            return SimDuration::ZERO;
        }
        let target_window = (target_rate * rtt).min(self.window).max(INITIAL_WINDOW);
        let doublings = (target_window / INITIAL_WINDOW).log2().max(0.0);
        SimDuration::from_secs_f64(doublings.ceil() * rtt)
    }

    /// Bytes transferred *during* the slow-start ramp of
    /// [`TcpParams::slow_start_time`]: the sum of a geometrically-doubling window is
    /// just under twice the final window.
    pub fn slow_start_bytes(&self, target_rate: f64) -> f64 {
        let rtt = self.rtt.as_secs_f64();
        if rtt <= 0.0 || !target_rate.is_finite() || target_rate <= 0.0 {
            return 0.0;
        }
        let target_window = (target_rate * rtt).min(self.window).max(INITIAL_WINDOW);
        // w0 + 2w0 + 4w0 + ... + W  ≈ 2W - w0
        (2.0 * target_window - INITIAL_WINDOW).max(0.0)
    }

    /// Mean throughput achieved while transferring `bytes`, accounting for
    /// the slow-start ramp, assuming `steady_rate` afterwards. Used by the
    /// transfer engine to model short transfers and connection rebuild cost.
    pub fn effective_transfer_time(&self, bytes: f64, steady_rate: f64) -> SimDuration {
        if bytes <= 0.0 {
            return SimDuration::ZERO;
        }
        if steady_rate <= 0.0 {
            return SimDuration::MAX;
        }
        let ss_bytes = self.slow_start_bytes(steady_rate);
        let ss_time = self.slow_start_time(steady_rate);
        if bytes <= ss_bytes {
            // Entire transfer completes within slow start: scale the ramp
            // time by the fraction of ramp bytes needed (window doubles, so
            // bytes(t) grows exponentially; a linear scaling over the log is
            // a close, conservative approximation).
            let frac = (bytes / ss_bytes).clamp(0.0, 1.0);
            return SimDuration::from_secs_f64(ss_time.as_secs_f64() * frac.sqrt());
        }
        let remaining = bytes - ss_bytes;
        ss_time + SimDuration::from_secs_f64(remaining / steady_rate)
    }
}

/// The paper's §7 buffer-sizing rule of thumb, translated to bytes:
/// `bandwidth (bytes/s) * latency (s)` — the bandwidth-delay product.
pub fn bandwidth_delay_product(bandwidth_bytes_per_sec: f64, rtt: SimDuration) -> f64 {
    bandwidth_bytes_per_sec * rtt.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_limit_matches_paper_formula() {
        // Paper: 1 MB buffer over 15 ms RTT ≈ 533 Mb/s ceiling — consistent
        // with their 200–500 Mb/s expectation.
        let p = TcpParams::new(1_048_576.0, SimDuration::from_millis(15), 0.0);
        let mbps = p.window_limit() * 8.0 / 1e6;
        assert!((mbps - 559.2).abs() < 1.0, "got {mbps}");
    }

    #[test]
    fn loss_limit_decreases_with_loss() {
        let lossy = TcpParams::new(f64::INFINITY, SimDuration::from_millis(20), 0.01);
        let lossier = TcpParams::new(f64::INFINITY, SimDuration::from_millis(20), 0.04);
        // Mathis: rate ∝ 1/sqrt(p): 4x loss → half rate.
        assert!((lossy.loss_limit() / lossier.loss_limit() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_loss_means_no_loss_limit() {
        let p = TcpParams::new(65536.0, SimDuration::from_millis(10), 0.0);
        assert_eq!(p.loss_limit(), f64::INFINITY);
        assert_eq!(p.rate_cap(), p.window_limit());
    }

    #[test]
    fn rate_cap_is_min_of_bounds() {
        let p = TcpParams::new(1e6, SimDuration::from_millis(100), 0.05);
        assert_eq!(p.rate_cap(), p.window_limit().min(p.loss_limit()));
        assert!(p.rate_cap() <= p.window_limit());
        assert!(p.rate_cap() <= p.loss_limit());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let p = TcpParams::new(1_048_576.0, SimDuration::from_millis(16), 0.0);
        // Target the full window: doublings = log2(1MB / 2920B) ≈ 8.49 → 9 RTTs.
        let t = p.slow_start_time(p.window_limit());
        assert_eq!(t, SimDuration::from_millis(16 * 9));
    }

    #[test]
    fn slow_start_bytes_about_twice_window() {
        let p = TcpParams::new(1_048_576.0, SimDuration::from_millis(16), 0.0);
        let b = p.slow_start_bytes(p.window_limit());
        assert!(b > 1.9e6 && b < 2.1e6, "got {b}");
    }

    #[test]
    fn tiny_transfer_faster_than_full_ramp() {
        let p = TcpParams::new(1_048_576.0, SimDuration::from_millis(16), 0.0);
        let rate = p.window_limit();
        let tiny = p.effective_transfer_time(10_000.0, rate);
        let full_ramp = p.slow_start_time(rate);
        assert!(tiny < full_ramp);
    }

    #[test]
    fn large_transfer_dominated_by_steady_rate() {
        let p = TcpParams::new(1_048_576.0, SimDuration::from_millis(16), 0.0);
        let rate = 10e6; // 10 MB/s steady
        let t = p.effective_transfer_time(1e9, rate).as_secs_f64();
        let ideal = 1e9 / rate;
        assert!(t >= ideal);
        assert!(
            t < ideal * 1.01,
            "slow start should be <1% of a 1 GB transfer"
        );
    }

    #[test]
    fn zero_rate_never_completes() {
        let p = TcpParams::new(1e6, SimDuration::from_millis(10), 0.0);
        assert_eq!(p.effective_transfer_time(1.0, 0.0), SimDuration::MAX);
    }

    #[test]
    fn bdp_matches_paper_example() {
        // Paper example: ~500 Mb/s * 16 ms ≈ 1 MB.
        let bdp = bandwidth_delay_product(500e6 / 8.0, SimDuration::from_millis(16));
        assert!((bdp - 1e6).abs() < 5e4, "got {bdp}");
    }
}
