//! `request_pipeline` executor (A12): one trial = one arm of the
//! pipelined-transfer-scheduler comparison on the shared mixed hot/cold
//! workload. The spec's `scheduler`/`legacy` variants replace the old
//! bin's two back-to-back `run()` calls; the cross-arm asserts became
//! declared gates (delivery equivalence, verified==complete, host cap,
//! makespan speedup floor).

use super::{mixed, TrialCtx};
use crate::gate::Baseline;
use crate::journal::{AuxFile, MetricValue, TrialKey, TrialRecord};
use crate::json::Json;
use crate::spec::ScenarioSpec;
use std::fmt::Write as _;

pub const DISK_DS: &str = "pcm_pipe.disk";
pub const TAPE_DS: &str = "pcm_pipe.tape";

pub fn run(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let n_requests = p.usize("requests", 6);
    let min_rate = p.f64("min_rate", mixed::DEFAULT_MIN_RATE);
    let mode = p.str("mode", "scheduler").to_string();
    let scheduler_on = match mode.as_str() {
        "scheduler" => true,
        "legacy" => false,
        other => return Err(format!("mode must be scheduler|legacy, got '{other}'")),
    };

    let run = mixed::run_mixed(
        ctx.seed,
        &mixed::MixedConfig {
            disk_ds: DISK_DS,
            tape_ds: TAPE_DS,
            scheduler_on: Some(scheduler_on),
            min_rate,
            n_requests,
        },
        &ctx.spec.faults,
    )?;
    let tb = &run.tb;

    let outcomes = &tb.sim.world.outcomes;
    let first_start = outcomes
        .iter()
        .map(|o| o.started)
        .min()
        .ok_or("no outcomes")?;
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .ok_or("no outcomes")?;
    let makespan = last_finish.since(first_start).as_secs_f64();
    let bytes: u64 = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .map(|f| f.bytes_done)
        .sum();
    let mean_sojourn = outcomes
        .iter()
        .map(|o| o.finished.since(o.started).as_secs_f64())
        .sum::<f64>()
        / n_requests as f64;

    // (request id, file name, size, bytes_done, done) in sorted order —
    // its digest is what the cross-arm equivalence gate compares.
    let mut deliveries: Vec<(u64, String, u64, u64, bool)> = outcomes
        .iter()
        .flat_map(|o| {
            o.files
                .iter()
                .map(move |f| (o.id, f.name.clone(), f.size, f.bytes_done, f.done))
        })
        .collect();
    deliveries.sort();
    let all_delivered = deliveries
        .iter()
        .all(|(_, _, size, done_b, done)| *done && done_b == size);
    let mut manifest = String::new();
    for (id, name, size, done_b, done) in &deliveries {
        writeln!(manifest, "{id} {name} {size} {done_b} {done}").unwrap();
    }

    let rm = &tb.sim.world.rm;
    let count = |name: &str| rm.log.named(name).count();
    let completes = count("rm.file.complete");
    let verified = count("integrity.file.verified");
    let failovers = count("rm.reliability.failover");
    let defers = count("rm.sched.defer");
    let prestaged = rm.sched_stats().prestaged;
    let tuned = rm.sched_stats().tuned;
    let peak_host_inflight = rm.inflight().peak_attempts();
    let agg_mbps = bytes as f64 / makespan.max(1e-9) / 1e6;
    let trace_sha = crate::sha_hex(&rm.log.to_ulm());

    // The old bin's per-variant JSON object, byte-for-byte.
    let mut fragment = String::new();
    write!(
        fragment,
        concat!(
            "{{\"mode\": \"{}\", \"makespan_s\": {:.3}, \"aggregate_mb_s\": {:.3}, ",
            "\"mean_sojourn_s\": {:.3}, \"files_complete\": {}, \"files_verified\": {}, ",
            "\"failovers\": {}, \"defers\": {}, \"prestaged\": {}, \"tuned\": {}, ",
            "\"peak_host_inflight\": {}}}"
        ),
        mode,
        makespan,
        agg_mbps,
        mean_sojourn,
        completes,
        verified,
        failovers,
        defers,
        prestaged,
        tuned,
        peak_host_inflight,
    )
    .unwrap();

    let num = |v: f64| MetricValue::Num(v);
    Ok(TrialRecord {
        key: TrialKey {
            variant: ctx.variant.clone(),
            seed: ctx.seed,
            rep: ctx.rep,
        },
        metrics: vec![
            ("mode".into(), MetricValue::Str(mode)),
            ("requests".into(), num(n_requests as f64)),
            ("requests_done".into(), num(outcomes.len() as f64)),
            ("files_delivered".into(), num(deliveries.len() as f64)),
            ("all_delivered".into(), num(all_delivered as u64 as f64)),
            ("makespan_s".into(), num(makespan)),
            ("aggregate_mb_s".into(), num(agg_mbps)),
            ("mean_sojourn_s".into(), num(mean_sojourn)),
            ("bytes_delivered".into(), num(bytes as f64)),
            ("files_complete".into(), num(completes as f64)),
            ("files_verified".into(), num(verified as f64)),
            ("failovers".into(), num(failovers as f64)),
            ("defers".into(), num(defers as f64)),
            ("prestaged".into(), num(prestaged as f64)),
            ("tuned".into(), num(tuned as f64)),
            ("peak_host_inflight".into(), num(peak_host_inflight as f64)),
            (
                "deliveries_sha256".into(),
                MetricValue::Str(crate::sha_hex(&manifest)),
            ),
            ("trace_sha256".into(), MetricValue::Str(trace_sha)),
        ],
        timing: vec![("wall_ms".into(), run.wall.as_secs_f64() * 1e3)],
        fragment: Some(fragment),
        aux: Vec::<AuxFile>::new(),
    })
}

fn find<'a>(rows: &'a [TrialRecord], variant: &str) -> Option<&'a TrialRecord> {
    rows.iter().find(|r| r.key.variant == variant)
}

/// `BENCH_request_pipeline.json`, byte-format-identical to the old bin:
/// scheduler variant first, then legacy, then the makespan speedup and
/// the scheduler arm's trace digest.
pub fn assemble(spec: &ScenarioSpec, rows: &[TrialRecord]) -> Option<String> {
    let sched = find(rows, "scheduler")?;
    let legacy = find(rows, "legacy")?;
    let speedup = legacy.value("makespan_s")? / sched.value("makespan_s")?.max(1e-9);
    let trace_sha = match sched.metric("trace_sha256")? {
        MetricValue::Str(s) => s.clone(),
        _ => return None,
    };
    Some(format!(
        concat!(
            "{{\n  \"bench\": \"request_pipeline\",\n  \"seed\": {},\n",
            "  \"requests\": {},\n  \"files_per_request\": 18,\n",
            "  \"min_rate_mb_s\": {:.1},\n  \"variants\": [\n    {},\n    {}\n  ],\n",
            "  \"speedup_makespan\": {:.2},\n  \"equivalent\": true,\n",
            "  \"trace_sha256\": \"{}\"\n}}\n"
        ),
        spec.seeds.first().copied().unwrap_or(23),
        spec.params.u64("requests", 6),
        spec.params.f64("min_rate", mixed::DEFAULT_MIN_RATE) / 1e6,
        sched.fragment.as_deref()?,
        legacy.fragment.as_deref()?,
        speedup,
        trace_sha,
    ))
}

/// Baseline from the committed artifact: per-variant deterministic
/// makespan/throughput (keyed by the variant's `mode`).
pub fn baseline(artifact: &Json) -> Result<Baseline, String> {
    let variants = artifact
        .get("variants")
        .and_then(Json::as_arr)
        .ok_or("baseline has no variants array")?;
    let mut out = Baseline::new();
    for v in variants {
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("baseline variant has no mode")?;
        let mut m = std::collections::BTreeMap::new();
        for key in ["makespan_s", "aggregate_mb_s", "mean_sojourn_s"] {
            if let Some(val) = v.get(key).and_then(Json::as_f64) {
                m.insert(key.to_string(), val);
            }
        }
        out.insert(mode.to_string(), m);
    }
    Ok(out)
}
