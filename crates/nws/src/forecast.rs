//! NWS forecasting methods.
//!
//! The Network Weather Service [Wolski, 1997] "periodically monitors and
//! dynamically forecasts the performance that various network and
//! computational resources can deliver over a given time interval". Its
//! characteristic design is a *portfolio* of simple predictors — last
//! value, running mean, sliding-window means, medians, exponential
//! smoothing — plus a meta-predictor that tracks each one's error on the
//! history so far and answers with the current best. [`AdaptiveForecaster`]
//! implements that mixture-of-experts scheme.

/// A forecasting method over a scalar measurement history.
pub trait Forecaster {
    /// Human-readable method name.
    fn name(&self) -> &str;
    /// Update internal state with a new measurement.
    fn observe(&mut self, value: f64);
    /// Predict the next measurement; `None` until enough history exists.
    fn predict(&self) -> Option<f64>;
}

/// Predicts the most recent measurement.
#[derive(Debug, Default, Clone)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn name(&self) -> &str {
        "last-value"
    }
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Mean of the entire history.
#[derive(Debug, Default, Clone)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Forecaster for RunningMean {
    fn name(&self) -> &str {
        "running-mean"
    }
    fn observe(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Mean over the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: std::collections::VecDeque<f64>,
    k: usize,
    name: String,
}

impl SlidingMean {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        SlidingMean {
            window: std::collections::VecDeque::with_capacity(k),
            k,
            name: format!("sliding-mean-{k}"),
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &str {
        &self.name
    }
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }
}

/// Median over the last `k` measurements — robust to the throughput
/// outliers WAN probes produce.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: std::collections::VecDeque<f64>,
    k: usize,
    name: String,
}

impl SlidingMedian {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        SlidingMedian {
            window: std::collections::VecDeque::with_capacity(k),
            k,
            name: format!("sliding-median-{k}"),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &str {
        &self.name
    }
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }
}

/// Exponential smoothing with gain `alpha`.
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
    name: String,
}

impl ExpSmoothing {
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        ExpSmoothing {
            alpha,
            state: None,
            name: format!("exp-smoothing-{alpha:.2}"),
        }
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> &str {
        &self.name
    }
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
}

/// Wolski's adaptive meta-forecaster: runs every method in the portfolio,
/// tracks each method's mean squared error against realized measurements,
/// and predicts with the historically best method.
pub struct AdaptiveForecaster {
    methods: Vec<Box<dyn Forecaster + Send>>,
    /// Accumulated squared error and prediction count per method.
    errors: Vec<(f64, u64)>,
    /// Predictions each method made for the *next* observation.
    pending: Vec<Option<f64>>,
    observations: u64,
}

impl Default for AdaptiveForecaster {
    fn default() -> Self {
        Self::standard()
    }
}

impl AdaptiveForecaster {
    /// The standard NWS-like portfolio.
    pub fn standard() -> Self {
        Self::new(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(20)),
            Box::new(SlidingMedian::new(5)),
            Box::new(SlidingMedian::new(21)),
            Box::new(ExpSmoothing::new(0.1)),
            Box::new(ExpSmoothing::new(0.5)),
        ])
    }

    pub fn new(methods: Vec<Box<dyn Forecaster + Send>>) -> Self {
        assert!(!methods.is_empty());
        let n = methods.len();
        AdaptiveForecaster {
            methods,
            errors: vec![(0.0, 0); n],
            pending: vec![None; n],
            observations: 0,
        }
    }

    /// Index and MSE of the current best method.
    fn best(&self) -> usize {
        let mut best = 0;
        let mut best_mse = f64::INFINITY;
        for (i, &(se, n)) in self.errors.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let mse = se / n as f64;
            if mse < best_mse {
                best_mse = mse;
                best = i;
            }
        }
        best
    }

    /// Name of the method currently winning the error tournament.
    pub fn best_method(&self) -> &str {
        self.methods[self.best()].name()
    }

    /// Per-method (name, mse) diagnostics.
    pub fn method_errors(&self) -> Vec<(String, f64)> {
        self.methods
            .iter()
            .zip(&self.errors)
            .map(|(m, &(se, n))| {
                (
                    m.name().to_string(),
                    if n == 0 { f64::NAN } else { se / n as f64 },
                )
            })
            .collect()
    }

    pub fn observation_count(&self) -> u64 {
        self.observations
    }

    /// Prediction together with the winning method's RMS error — NWS
    /// reports forecast accuracy so consumers can weigh how much to trust
    /// a number. `None` until at least one method has been scored.
    pub fn predict_with_error(&self) -> Option<(f64, f64)> {
        let best = self.best();
        let (se, n) = self.errors[best];
        if n == 0 {
            return None;
        }
        let pred = self.methods[best].predict()?;
        Some((pred, (se / n as f64).sqrt()))
    }
}

impl Forecaster for AdaptiveForecaster {
    fn name(&self) -> &str {
        "nws-adaptive"
    }

    fn observe(&mut self, value: f64) {
        // Score outstanding predictions against the realized value.
        for (i, p) in self.pending.iter_mut().enumerate() {
            if let Some(pred) = p.take() {
                let e = pred - value;
                self.errors[i].0 += e * e;
                self.errors[i].1 += 1;
            }
        }
        for (i, m) in self.methods.iter_mut().enumerate() {
            m.observe(value);
            self.pending[i] = m.predict();
        }
        self.observations += 1;
    }

    fn predict(&self) -> Option<f64> {
        if self.observations == 0 {
            return None;
        }
        self.methods[self.best()].predict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut dyn Forecaster, values: &[f64]) {
        for &v in values {
            f.observe(v);
        }
    }

    #[test]
    fn last_value() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        feed(&mut f, &[1.0, 5.0, 3.0]);
        assert_eq!(f.predict(), Some(3.0));
    }

    #[test]
    fn running_mean() {
        let mut f = RunningMean::default();
        feed(&mut f, &[2.0, 4.0, 6.0]);
        assert_eq!(f.predict(), Some(4.0));
    }

    #[test]
    fn sliding_mean_windows() {
        let mut f = SlidingMean::new(2);
        feed(&mut f, &[10.0, 2.0, 4.0]);
        assert_eq!(f.predict(), Some(3.0)); // only last two
    }

    #[test]
    fn sliding_median_robust_to_outlier() {
        let mut f = SlidingMedian::new(5);
        feed(&mut f, &[10.0, 10.0, 10.0, 10.0, 1000.0]);
        assert_eq!(f.predict(), Some(10.0));
    }

    #[test]
    fn median_even_window() {
        let mut f = SlidingMedian::new(4);
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn exp_smoothing_tracks() {
        let mut f = ExpSmoothing::new(0.5);
        feed(&mut f, &[0.0, 10.0]);
        assert_eq!(f.predict(), Some(5.0));
        f.observe(10.0);
        assert_eq!(f.predict(), Some(7.5));
    }

    #[test]
    fn adaptive_prefers_last_value_on_trend() {
        // Strictly increasing series: last-value has the lowest MSE of the
        // portfolio; running mean lags far behind.
        let mut f = AdaptiveForecaster::standard();
        for i in 0..100 {
            f.observe(i as f64 * 10.0);
        }
        assert_eq!(f.best_method(), "last-value");
        let p = f.predict().unwrap();
        assert!((p - 990.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_prefers_averaging_on_noise() {
        // Alternating noise around a constant: means/medians beat
        // last-value (which is always exactly wrong by the full swing).
        let mut f = AdaptiveForecaster::standard();
        for i in 0..200 {
            f.observe(if i % 2 == 0 { 90.0 } else { 110.0 });
        }
        assert_ne!(f.best_method(), "last-value");
        let p = f.predict().unwrap();
        assert!((p - 100.0).abs() < 6.0, "prediction {p}");
    }

    #[test]
    fn adaptive_empty_history() {
        let f = AdaptiveForecaster::standard();
        assert_eq!(f.predict(), None);
        assert_eq!(f.observation_count(), 0);
    }

    #[test]
    fn predict_with_error_reports_rms() {
        let mut f = AdaptiveForecaster::standard();
        assert_eq!(f.predict_with_error(), None);
        for _ in 0..20 {
            f.observe(100.0);
        }
        let (pred, rms) = f.predict_with_error().unwrap();
        assert!((pred - 100.0).abs() < 1e-9);
        assert!(rms < 1e-9);
        // Noisy series: rms grows with the noise scale.
        let mut g = AdaptiveForecaster::standard();
        for i in 0..200 {
            g.observe(if i % 2 == 0 { 80.0 } else { 120.0 });
        }
        let (_, rms_noisy) = g.predict_with_error().unwrap();
        assert!(rms_noisy > 5.0, "{rms_noisy}");
    }

    #[test]
    fn adaptive_method_errors_exposed() {
        let mut f = AdaptiveForecaster::standard();
        for _ in 0..10 {
            f.observe(5.0);
        }
        let errs = f.method_errors();
        assert_eq!(errs.len(), 8);
        // Constant series: every scored method should have ~zero error.
        for (name, mse) in errs {
            assert!(mse.is_nan() || mse < 1e-12, "{name}: {mse}");
        }
    }
}
