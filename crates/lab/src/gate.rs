//! Declared-threshold gate evaluator.
//!
//! CI no longer encodes pass/fail logic in per-bin asserts: a spec
//! declares gates (`GateSpec`) and this module evaluates them over the
//! finished analysis rows. Three outcomes per gate:
//!
//! * `Pass` — the condition held everywhere it applied;
//! * `Fail` — a trial violated it (equivalence trip, threshold breach);
//! * `Error` — the gate could not be evaluated (missing metric, missing
//!   baseline). An error is never a pass: a gate that silently cannot
//!   see its data must fail the run, otherwise a renamed metric would
//!   turn the tripwire off.

use crate::journal::TrialRecord;
use crate::spec::{GateSpec, MetricRef};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    Pass,
    Fail,
    Error,
}

impl GateStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            GateStatus::Pass => "pass",
            GateStatus::Fail => "FAIL",
            GateStatus::Error => "ERROR",
        }
    }
}

#[derive(Debug, Clone)]
pub struct GateResult {
    pub label: String,
    pub status: GateStatus,
    pub detail: String,
}

#[derive(Debug, Clone, Default)]
pub struct GateReport {
    pub results: Vec<GateResult>,
}

impl GateReport {
    /// True only if every gate passed — errors block, by design.
    pub fn all_pass(&self) -> bool {
        self.results.iter().all(|r| r.status == GateStatus::Pass)
    }
}

/// Baseline metrics for `wall_regression` gates: variant → metric → value.
pub type Baseline = BTreeMap<String, BTreeMap<String, f64>>;

fn applies(variants: &Option<Vec<String>>, variant: &str) -> bool {
    variants
        .as_ref()
        .map(|v| v.iter().any(|x| x == variant))
        .unwrap_or(true)
}

/// Rows sharing (seed, rep) — the unit `equivalence` and cross-variant
/// `min_ratio` gates compare within.
fn groups(rows: &[TrialRecord]) -> Vec<Vec<&TrialRecord>> {
    let mut by: BTreeMap<(u64, u32), Vec<&TrialRecord>> = BTreeMap::new();
    for r in rows {
        by.entry((r.key.seed, r.key.rep)).or_default().push(r);
    }
    by.into_values().collect()
}

pub fn evaluate(
    gates: &[GateSpec],
    rows: &[TrialRecord],
    baseline: Option<&Baseline>,
) -> GateReport {
    let mut report = GateReport::default();
    for gate in gates {
        let (status, detail) = eval_one(gate, rows, baseline);
        report.results.push(GateResult {
            label: gate.label(),
            status,
            detail,
        });
    }
    report
}

fn eval_one(
    gate: &GateSpec,
    rows: &[TrialRecord],
    baseline: Option<&Baseline>,
) -> (GateStatus, String) {
    match gate {
        GateSpec::Equivalence { metric } => {
            for group in groups(rows) {
                let mut canon: Option<(String, &TrialRecord)> = None;
                for r in &group {
                    let Some(v) = r.metric(metric) else {
                        return (
                            GateStatus::Error,
                            format!("{} missing metric '{metric}'", key_of(r)),
                        );
                    };
                    let rendered = v.canon();
                    match &canon {
                        None => canon = Some((rendered, r)),
                        Some((first, first_row)) if *first != rendered => {
                            return (
                                GateStatus::Fail,
                                format!(
                                    "equivalence trip: {} has {metric}={rendered} but {} has {first}",
                                    key_of(r),
                                    key_of(first_row)
                                ),
                            );
                        }
                        Some(_) => {}
                    }
                }
            }
            (
                GateStatus::Pass,
                format!("{metric} identical across variants"),
            )
        }
        GateSpec::MetricEq { a, b, variants } => {
            for r in rows.iter().filter(|r| applies(variants, &r.key.variant)) {
                let (Some(va), Some(vb)) = (r.value(a), r.value(b)) else {
                    return (
                        GateStatus::Error,
                        format!("{} missing '{a}' or '{b}'", key_of(r)),
                    );
                };
                if va != vb {
                    return (
                        GateStatus::Fail,
                        format!("{}: {a}={va} != {b}={vb}", key_of(r)),
                    );
                }
            }
            (GateStatus::Pass, format!("{a} == {b} in every trial"))
        }
        GateSpec::NonZero { metric, variants } => {
            for r in rows.iter().filter(|r| applies(variants, &r.key.variant)) {
                let Some(v) = r.value(metric) else {
                    return (
                        GateStatus::Error,
                        format!("{} missing metric '{metric}'", key_of(r)),
                    );
                };
                if v == 0.0 {
                    return (GateStatus::Fail, format!("{}: {metric} is zero", key_of(r)));
                }
            }
            (
                GateStatus::Pass,
                format!("{metric} non-zero in every trial"),
            )
        }
        GateSpec::MaxValue {
            metric,
            max,
            variants,
        } => {
            for r in rows.iter().filter(|r| applies(variants, &r.key.variant)) {
                let Some(v) = r.value(metric) else {
                    return (
                        GateStatus::Error,
                        format!("{} missing metric '{metric}'", key_of(r)),
                    );
                };
                if v > *max {
                    return (
                        GateStatus::Fail,
                        format!("{}: {metric}={v} exceeds {max}", key_of(r)),
                    );
                }
            }
            (
                GateStatus::Pass,
                format!("{metric} <= {max} in every trial"),
            )
        }
        GateSpec::MinRatio {
            numer,
            denom,
            min,
            variants,
        } => eval_min_ratio(numer, denom, *min, variants, rows),
        GateSpec::WallRegression { metric, max_pct } => {
            let Some(base) = baseline else {
                return (
                    GateStatus::Error,
                    "no baseline available (declare `baseline` in the spec or pass --baseline)"
                        .into(),
                );
            };
            let mut detail = String::new();
            for r in rows {
                let Some(cur) = r.value(metric) else {
                    return (
                        GateStatus::Error,
                        format!("{} missing timing metric '{metric}'", key_of(r)),
                    );
                };
                let Some(b) = base.get(&r.key.variant).and_then(|m| m.get(metric)) else {
                    return (
                        GateStatus::Error,
                        format!("baseline has no '{metric}' for variant '{}'", r.key.variant),
                    );
                };
                let limit = b * (1.0 + max_pct / 100.0);
                if cur > limit {
                    return (
                        GateStatus::Fail,
                        format!(
                            "{}: {metric}={cur:.1} vs baseline {b:.1} (> +{max_pct}%)",
                            key_of(r)
                        ),
                    );
                }
                if !detail.is_empty() {
                    detail.push_str("; ");
                }
                detail.push_str(&format!("{}: {cur:.1} vs {b:.1}", key_of(r)));
            }
            (GateStatus::Pass, detail)
        }
    }
}

fn eval_min_ratio(
    numer: &MetricRef,
    denom: &MetricRef,
    min: f64,
    variants: &Option<Vec<String>>,
    rows: &[TrialRecord],
) -> (GateStatus, String) {
    match (&numer.variant, &denom.variant) {
        // Within-trial ratio of two metrics.
        (None, None) => {
            for r in rows.iter().filter(|r| applies(variants, &r.key.variant)) {
                let (Some(n), Some(d)) = (r.value(&numer.metric), r.value(&denom.metric)) else {
                    return (
                        GateStatus::Error,
                        format!(
                            "{} missing '{}' or '{}'",
                            key_of(r),
                            numer.metric,
                            denom.metric
                        ),
                    );
                };
                let ratio = n / d.max(1e-12);
                if ratio < min {
                    return (
                        GateStatus::Fail,
                        format!("{}: ratio {ratio:.3} below {min}", key_of(r)),
                    );
                }
            }
            (GateStatus::Pass, format!("ratio >= {min} in every trial"))
        }
        // Cross-variant ratio within each (seed, rep) group.
        (Some(nv), Some(dv)) => {
            for group in groups(rows) {
                let find = |variant: &str, metric: &str| {
                    group
                        .iter()
                        .find(|r| r.key.variant == variant)
                        .and_then(|r| r.value(metric))
                };
                let (Some(n), Some(d)) = (find(nv, &numer.metric), find(dv, &denom.metric)) else {
                    return (
                        GateStatus::Error,
                        format!(
                            "group missing variant '{nv}'/'{dv}' or metric '{}'/'{}'",
                            numer.metric, denom.metric
                        ),
                    );
                };
                let ratio = n / d.max(1e-12);
                if ratio < min {
                    return (
                        GateStatus::Fail,
                        format!("{nv}/{dv} ratio {ratio:.3} below {min}"),
                    );
                }
            }
            (GateStatus::Pass, format!("{nv}/{dv} ratio >= {min}"))
        }
        _ => (
            GateStatus::Error,
            "min_ratio refs must both name a variant or neither".into(),
        ),
    }
}

fn key_of(r: &TrialRecord) -> String {
    format!("{}/seed={}/rep={}", r.key.variant, r.key.seed, r.key.rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{MetricValue, TrialKey};

    fn row(variant: &str, seed: u64, metrics: &[(&str, MetricValue)], wall: f64) -> TrialRecord {
        TrialRecord {
            key: TrialKey {
                variant: variant.into(),
                seed,
                rep: 0,
            },
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            timing: vec![("wall_ms".into(), wall)],
            fragment: None,
            aux: vec![],
        }
    }

    fn sha(s: &str) -> MetricValue {
        MetricValue::Str(s.into())
    }

    #[test]
    fn equivalence_trip_fails() {
        let gate = GateSpec::Equivalence {
            metric: "trace_sha256".into(),
        };
        let ok = [
            row("a", 17, &[("trace_sha256", sha("x"))], 1.0),
            row("b", 17, &[("trace_sha256", sha("x"))], 2.0),
        ];
        assert_eq!(
            evaluate(std::slice::from_ref(&gate), &ok, None).results[0].status,
            GateStatus::Pass
        );
        let trip = [
            row("a", 17, &[("trace_sha256", sha("x"))], 1.0),
            row("b", 17, &[("trace_sha256", sha("y"))], 2.0),
        ];
        let r = &evaluate(&[gate], &trip, None).results[0];
        assert_eq!(r.status, GateStatus::Fail);
        assert!(r.detail.contains("equivalence trip"), "{}", r.detail);
    }

    #[test]
    fn equivalence_compares_within_seed_groups_only() {
        // Different seeds legitimately have different traces.
        let gate = GateSpec::Equivalence {
            metric: "trace_sha256".into(),
        };
        let rows = [
            row("a", 17, &[("trace_sha256", sha("x"))], 1.0),
            row("b", 17, &[("trace_sha256", sha("x"))], 1.0),
            row("a", 23, &[("trace_sha256", sha("z"))], 1.0),
            row("b", 23, &[("trace_sha256", sha("z"))], 1.0),
        ];
        assert_eq!(
            evaluate(&[gate], &rows, None).results[0].status,
            GateStatus::Pass
        );
    }

    #[test]
    fn wall_regression_past_threshold_fails_within_passes() {
        let gate = GateSpec::WallRegression {
            metric: "wall_ms".into(),
            max_pct: 20.0,
        };
        let mut base: Baseline = Baseline::new();
        base.entry("a".into())
            .or_default()
            .insert("wall_ms".into(), 100.0);

        // 115 ms vs 100 ms baseline: inside +20%.
        let within = [row("a", 17, &[], 115.0)];
        assert_eq!(
            evaluate(std::slice::from_ref(&gate), &within, Some(&base)).results[0].status,
            GateStatus::Pass
        );

        // 121 ms vs 100 ms baseline: past +20%.
        let past = [row("a", 17, &[], 121.0)];
        let r = &evaluate(&[gate], &past, Some(&base)).results[0];
        assert_eq!(r.status, GateStatus::Fail);
        assert!(r.detail.contains("baseline 100.0"), "{}", r.detail);
    }

    #[test]
    fn missing_baseline_is_an_explicit_error_not_a_pass() {
        let gate = GateSpec::WallRegression {
            metric: "wall_ms".into(),
            max_pct: 20.0,
        };
        let rows = [row("a", 17, &[], 10.0)];
        let r = &evaluate(std::slice::from_ref(&gate), &rows, None).results[0];
        assert_eq!(r.status, GateStatus::Error);
        assert!(r.detail.contains("no baseline"), "{}", r.detail);
        // An error blocks the run.
        assert!(!evaluate(std::slice::from_ref(&gate), &rows, None).all_pass());

        // Baseline present but lacking the variant: also an error.
        let other: Baseline = Baseline::new();
        let r = &evaluate(&[gate], &rows, Some(&other)).results[0];
        assert_eq!(r.status, GateStatus::Error);
    }

    #[test]
    fn missing_metric_is_an_error() {
        let rows = [row("a", 17, &[], 1.0)];
        for gate in [
            GateSpec::NonZero {
                metric: "ghost".into(),
                variants: None,
            },
            GateSpec::MetricEq {
                a: "ghost".into(),
                b: "wall_ms".into(),
                variants: None,
            },
            GateSpec::MaxValue {
                metric: "ghost".into(),
                max: 1.0,
                variants: None,
            },
            GateSpec::Equivalence {
                metric: "ghost".into(),
            },
        ] {
            assert_eq!(
                evaluate(&[gate], &rows, None).results[0].status,
                GateStatus::Error
            );
        }
    }

    #[test]
    fn per_trial_gates() {
        let rows = [row(
            "scheduler",
            23,
            &[
                ("files_complete", MetricValue::Num(108.0)),
                ("files_verified", MetricValue::Num(108.0)),
                ("prestaged", MetricValue::Num(6.0)),
                ("peak_host_inflight", MetricValue::Num(8.0)),
            ],
            1.0,
        )];
        let gates = [
            GateSpec::MetricEq {
                a: "files_verified".into(),
                b: "files_complete".into(),
                variants: None,
            },
            GateSpec::NonZero {
                metric: "prestaged".into(),
                variants: Some(vec!["scheduler".into()]),
            },
            GateSpec::MaxValue {
                metric: "peak_host_inflight".into(),
                max: 8.0,
                variants: None,
            },
        ];
        let rep = evaluate(&gates, &rows, None);
        assert!(rep.all_pass(), "{:?}", rep.results);

        // And each flavor of violation fails.
        let bad = [row(
            "scheduler",
            23,
            &[
                ("files_complete", MetricValue::Num(108.0)),
                ("files_verified", MetricValue::Num(107.0)),
                ("prestaged", MetricValue::Num(0.0)),
                ("peak_host_inflight", MetricValue::Num(9.0)),
            ],
            1.0,
        )];
        let rep = evaluate(&gates, &bad, None);
        assert!(rep.results.iter().all(|r| r.status == GateStatus::Fail));
    }

    #[test]
    fn min_ratio_cross_variant_and_within_trial() {
        let rows = [
            row(
                "scheduler",
                23,
                &[("makespan_s", MetricValue::Num(480.0))],
                1.0,
            ),
            row(
                "legacy",
                23,
                &[("makespan_s", MetricValue::Num(726.0))],
                1.0,
            ),
        ];
        let cross = GateSpec::MinRatio {
            numer: MetricRef {
                metric: "makespan_s".into(),
                variant: Some("legacy".into()),
            },
            denom: MetricRef {
                metric: "makespan_s".into(),
                variant: Some("scheduler".into()),
            },
            min: 1.3,
            variants: None,
        };
        assert_eq!(
            evaluate(std::slice::from_ref(&cross), &rows, None).results[0].status,
            GateStatus::Pass
        );
        let slow = [
            row(
                "scheduler",
                23,
                &[("makespan_s", MetricValue::Num(700.0))],
                1.0,
            ),
            row(
                "legacy",
                23,
                &[("makespan_s", MetricValue::Num(726.0))],
                1.0,
            ),
        ];
        assert_eq!(
            evaluate(&[cross], &slow, None).results[0].status,
            GateStatus::Fail
        );

        // Within-trial form, filtered to one variant.
        let within = GateSpec::MinRatio {
            numer: MetricRef {
                metric: "wall_ms_sequential".into(),
                variant: None,
            },
            denom: MetricRef {
                metric: "wall_ms_parallel".into(),
                variant: None,
            },
            min: 1.0,
            variants: Some(vec!["n10k".into()]),
        };
        let mut r = row("n10k", 17, &[], 0.0);
        r.timing = vec![
            ("wall_ms_parallel".into(), 100.0),
            ("wall_ms_sequential".into(), 150.0),
        ];
        let mut r_small = row("n1k", 17, &[], 0.0);
        r_small.timing = vec![
            // The filter must exempt this variant from the floor.
            ("wall_ms_parallel".into(), 100.0),
            ("wall_ms_sequential".into(), 50.0),
        ];
        assert_eq!(
            evaluate(&[within], &[r, r_small], None).results[0].status,
            GateStatus::Pass
        );
    }

    #[test]
    fn mismatched_metric_refs_error() {
        let gate = GateSpec::MinRatio {
            numer: MetricRef {
                metric: "x".into(),
                variant: Some("a".into()),
            },
            denom: MetricRef {
                metric: "x".into(),
                variant: None,
            },
            min: 1.0,
            variants: None,
        };
        let rows = [row("a", 1, &[("x", MetricValue::Num(1.0))], 0.0)];
        assert_eq!(
            evaluate(&[gate], &rows, None).results[0].status,
            GateStatus::Error
        );
    }
}
