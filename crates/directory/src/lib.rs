//! # esg-directory — LDAP-like directory substrate
//!
//! Both catalogs in the ESG prototype are LDAP directories: the CDMS
//! metadata catalog ("Based on Lightweight Directory Access Protocol") and
//! the Globus replica catalog (queried "using an LDAP protocol"). This crate
//! provides the directory semantics they need as an in-process store:
//!
//! * [`dn`] — distinguished names (`lc=CO2 1998, rc=ESG, o=Grid`).
//! * [`entry`] — entries with case-insensitive, multi-valued attributes.
//! * [`filter`] — RFC 2254-style search filters with boolean combinators.
//! * [`dit`] — the tree: add/modify/delete + scoped, filtered search.
//! * [`ldif`] — LDIF import/export for bulk catalog administration.
//!
//! Substitution note (see DESIGN.md): the prototype talked to OpenLDAP over
//! the wire; what it exercised is the hierarchical data model and search
//! semantics, which this crate reproduces. RPC latency for catalog access is
//! charged by the request manager when running under the simulator.

pub mod dit;
pub mod dn;
pub mod entry;
pub mod filter;
pub mod ldif;

pub use dit::{DirError, Directory, Scope};
pub use dn::{Dn, DnParseError, Rdn};
pub use entry::Entry;
pub use filter::{Filter, FilterParseError};
pub use ldif::{dump as ldif_dump, load as ldif_load, parse as ldif_parse, LdifError};
