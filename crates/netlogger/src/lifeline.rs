//! Lifeline reconstruction: rebuild per-file span trees from a trace and
//! attribute wall-clock time to lifecycle phases.
//!
//! This is the offline half of NetLogger that produced the paper's Figure 8:
//! given a ULM trace (parsed back with [`NetLog::from_ulm`] or taken live),
//! [`LifelineSet::from_log`] joins `span.start`/`span.end` events into
//! [`Span`]s, groups each file's phase spans under its root
//! [`Phase::File`] span, and answers "where did request 3's file 7 spend its
//! 41 seconds?" — queue wait, prestage/tape mount, replica selection and
//! deferral, transfer, verify, ERET repair, backoff.
//!
//! Because the request manager's phase state machine tiles every live file
//! with exactly one open phase span, a delivered file's phase durations sum
//! to its makespan; [`Lifeline::is_complete`] checks that invariant span by
//! span and [`Lifeline::tiling_gap`] reports the float residue.

use crate::event::{LogEvent, NetLog, Value};
use crate::trace::Phase;
use esg_simnet::SimTime;
use std::collections::BTreeMap;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: u64,
    pub parent: u64,
    pub phase: Phase,
    pub request: Option<u64>,
    pub file: Option<String>,
    pub attempt: Option<u32>,
    pub start: SimTime,
    /// `None` if the trace ended before the span closed.
    pub end: Option<SimTime>,
    /// Bytes attributed at close (banked transfer delta / repaired bytes).
    pub bytes: u64,
    /// Terminal status attached at close (root spans: `done` / `failed`).
    pub status: Option<String>,
}

impl Span {
    pub fn duration_s(&self) -> Option<f64> {
        self.end.map(|e| e.since(self.start).as_secs_f64())
    }
}

/// The span tree of one logical file within one request.
#[derive(Debug, Clone)]
pub struct Lifeline {
    pub request: u64,
    pub file: String,
    /// The root [`Phase::File`] span (submit → settle).
    pub root: Span,
    /// Child phase spans, sorted by (start, id).
    pub phases: Vec<Span>,
}

impl Lifeline {
    /// Submit-to-settle wall clock, if the file settled.
    pub fn makespan_s(&self) -> Option<f64> {
        self.root.duration_s()
    }

    /// Sum of closed child phase durations.
    pub fn phase_sum_s(&self) -> f64 {
        self.phases.iter().filter_map(Span::duration_s).sum()
    }

    /// Total per-phase durations, keyed by phase name.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, f64> {
        let mut totals = BTreeMap::new();
        for s in &self.phases {
            if let Some(d) = s.duration_s() {
                *totals.entry(s.phase.as_str()).or_insert(0.0) += d;
            }
        }
        totals
    }

    /// True when the span tree is complete and the phases tile the root
    /// exactly: root closed, every phase closed, first phase starts with the
    /// root, each phase starts where the previous ended, last phase ends
    /// with the root. Boundaries are compared at nanosecond identity — the
    /// emitter closes and opens adjacent phases at the same instant, and the
    /// ULM round-trip preserves timestamps exactly.
    pub fn is_complete(&self) -> bool {
        let Some(root_end) = self.root.end else {
            return false;
        };
        if self.phases.is_empty() || self.phases.iter().any(|s| s.end.is_none()) {
            return false;
        }
        let mut cursor = self.root.start;
        for s in &self.phases {
            if s.start != cursor {
                return false;
            }
            cursor = s.end.unwrap();
        }
        cursor == root_end
    }

    /// |makespan − Σ phase durations| in seconds (float summation residue
    /// only, when [`is_complete`](Lifeline::is_complete) holds).
    pub fn tiling_gap_s(&self) -> Option<f64> {
        self.makespan_s().map(|m| (m - self.phase_sum_s()).abs())
    }

    /// Bytes delivered by transfer attempts (sum over Transfer span closes).
    pub fn transfer_bytes(&self) -> u64 {
        self.phase_bytes(Phase::Transfer)
    }

    /// Bytes re-fetched by ERET repair rounds.
    pub fn repair_bytes(&self) -> u64 {
        self.phase_bytes(Phase::Repair)
    }

    fn phase_bytes(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.bytes)
            .sum()
    }

    /// Terminal status from the root close (`done` / `failed`).
    pub fn status(&self) -> Option<&str> {
        self.root.status.as_deref()
    }
}

/// One detected stall: a phase span that made no progress for longer than
/// the threshold.
#[derive(Debug, Clone)]
pub struct Stall {
    pub request: Option<u64>,
    pub file: Option<String>,
    pub phase: Phase,
    pub span: u64,
    pub start: SimTime,
    /// How long the span sat in the phase (to trace end if never closed).
    pub duration_s: f64,
    /// Whether the span was still open when the trace ended.
    pub open: bool,
}

/// Per-request critical path: the file whose settle time determined the
/// request's finish, with its phase breakdown.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    pub request: u64,
    pub file: String,
    pub makespan_s: f64,
    pub settle: SimTime,
    pub breakdown: BTreeMap<&'static str, f64>,
}

/// All lifelines reconstructed from one trace.
#[derive(Debug, Clone, Default)]
pub struct LifelineSet {
    /// Per-file lifelines, sorted by (request, file).
    pub lifelines: Vec<Lifeline>,
    /// Request-scoped prestage spans (no file; one per cold HRM host batch).
    pub prestage: Vec<Span>,
    /// Campaign root spans (no file; one per replication campaign), so
    /// lifeline analysis can attribute round requests to the campaign
    /// that drove them instead of reporting the spans as orphans.
    pub campaigns: Vec<Span>,
    /// Span ids that could not be attached (end without start, or a child
    /// whose parent/file never materialised).
    pub orphans: Vec<u64>,
    /// Time of the last event in the trace ("now" for open spans).
    pub trace_end: SimTime,
}

/// The shared parse/group core behind both the offline
/// [`LifelineSet::from_log`] pass and the streaming
/// [`LiveLifelines`](crate::live::LiveLifelines) analyzer: events go in one
/// at a time through [`observe`](SpanCollector::observe) (the exact loop
/// body the offline pass runs over the whole trace) and
/// [`assemble`](SpanCollector::assemble) performs the exact grouping pass.
/// Feeding a full trace event-by-event is therefore *structurally*
/// identical to the batch pass — the differential tests pin that nothing
/// diverges downstream.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpanCollector {
    spans: BTreeMap<u64, Span>,
    /// End-without-start span ids, in arrival order (deduped at assemble).
    orphan_ends: Vec<u64>,
    trace_end: SimTime,
}

impl SpanCollector {
    /// Incorporate one event: advance `trace_end`, open a span on
    /// `span.start`, close it on `span.end`.
    pub(crate) fn observe(&mut self, e: &LogEvent) {
        if e.time > self.trace_end {
            self.trace_end = e.time;
        }
        let id = match e.get_num("span") {
            Some(x) if e.name == "span.start" || e.name == "span.end" => x as u64,
            _ => return,
        };
        if e.name == "span.start" {
            let phase = e
                .get("phase")
                .and_then(|v| match v {
                    Value::Str(s) => Phase::from_str(s),
                    _ => None,
                })
                .unwrap_or(Phase::File);
            self.spans.insert(
                id,
                Span {
                    id,
                    parent: e.get_num("parent").unwrap_or(0.0) as u64,
                    phase,
                    request: e.get_num("request").map(|x| x as u64),
                    file: e.get("file").map(|v| v.to_string()),
                    attempt: e.get_num("attempt").map(|x| x as u32),
                    start: e.time,
                    end: None,
                    bytes: 0,
                    status: None,
                },
            );
        } else {
            match self.spans.get_mut(&id) {
                Some(s) => {
                    s.end = Some(e.time);
                    s.bytes = e.get_num("bytes").unwrap_or(0.0) as u64;
                    s.status = e.get("status").map(|v| v.to_string());
                }
                None => self.orphan_ends.push(id),
            }
        }
    }

    pub(crate) fn trace_end(&self) -> SimTime {
        self.trace_end
    }

    pub(crate) fn span(&self, id: u64) -> Option<&Span> {
        self.spans.get(&id)
    }

    /// Group the collected spans into a [`LifelineSet`]. Non-destructive so
    /// the live analyzer can snapshot mid-run and keep streaming.
    pub(crate) fn assemble(&self) -> LifelineSet {
        let mut orphans = self.orphan_ends.clone();
        // Group children under their root File spans.
        let mut children: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
        let mut roots: Vec<Span> = Vec::new();
        let mut prestage = Vec::new();
        let mut campaigns = Vec::new();
        for s in self.spans.values().cloned() {
            match s.phase {
                Phase::File => roots.push(s),
                Phase::Prestage => prestage.push(s),
                Phase::Campaign => campaigns.push(s),
                _ if s.parent != 0 => children.entry(s.parent).or_default().push(s),
                _ => orphans.push(s.id),
            }
        }
        let mut lifelines = Vec::new();
        for root in roots {
            let (Some(request), Some(file)) = (root.request, root.file.clone()) else {
                orphans.push(root.id);
                continue;
            };
            let mut phases = children.remove(&root.id).unwrap_or_default();
            phases.sort_by_key(|s| (s.start, s.id));
            lifelines.push(Lifeline {
                request,
                file,
                root,
                phases,
            });
        }
        // Children whose root never appeared.
        for (_, kids) in children {
            orphans.extend(kids.into_iter().map(|s| s.id));
        }
        lifelines.sort_by(|a, b| (a.request, &a.file).cmp(&(b.request, &b.file)));
        orphans.sort_unstable();
        orphans.dedup();
        LifelineSet {
            lifelines,
            prestage,
            campaigns,
            orphans,
            trace_end: self.trace_end,
        }
    }
}

impl LifelineSet {
    /// Join `span.start`/`span.end` events into span trees.
    pub fn from_log(log: &NetLog) -> LifelineSet {
        let mut collector = SpanCollector::default();
        for e in log.iter() {
            collector.observe(e);
        }
        collector.assemble()
    }

    pub fn lifeline(&self, request: u64, file: &str) -> Option<&Lifeline> {
        self.lifelines
            .iter()
            .find(|l| l.request == request && l.file == file)
    }

    /// Per-request critical path: the file whose root span closed last (the
    /// settle that gated the request), with its phase breakdown. Requests
    /// with no settled files are omitted.
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        let mut best: BTreeMap<u64, &Lifeline> = BTreeMap::new();
        for l in &self.lifelines {
            if l.root.end.is_none() {
                continue;
            }
            let entry = best.entry(l.request).or_insert(l);
            if l.root.end > entry.root.end {
                *entry = l;
            }
        }
        best.into_values()
            .map(|l| CriticalPath {
                request: l.request,
                file: l.file.clone(),
                makespan_s: l.makespan_s().unwrap_or(0.0),
                settle: l.root.end.unwrap(),
                breakdown: l.phase_totals(),
            })
            .collect()
    }

    /// Phase spans (and prestage spans) that exceeded `threshold_s` without
    /// closing progress — the "no span progress for N sim-seconds" detector.
    /// Open spans are measured to the end of the trace.
    pub fn detect_stalls(&self, threshold_s: f64) -> Vec<Stall> {
        let mut stalls = Vec::new();
        let mut consider = |s: &Span| {
            let (dur, open) = match s.end {
                Some(e) => (e.since(s.start).as_secs_f64(), false),
                None => (self.trace_end.since(s.start).as_secs_f64(), true),
            };
            if dur > threshold_s {
                stalls.push(Stall {
                    request: s.request,
                    file: s.file.clone(),
                    phase: s.phase,
                    span: s.id,
                    start: s.start,
                    duration_s: dur,
                    open,
                });
            }
        };
        for l in &self.lifelines {
            for s in &l.phases {
                consider(s);
            }
        }
        for s in &self.prestage {
            consider(s);
        }
        stalls.sort_by_key(|s| (s.start, s.span));
        stalls
    }

    /// Render detected stalls as `obs.stall` events, one at the instant each
    /// span crossed the threshold.
    pub fn stall_events(&self, threshold_s: f64) -> NetLog {
        let mut log = NetLog::new();
        let mut stalls = self.detect_stalls(threshold_s);
        stalls.sort_by_key(|s| {
            (
                SimTime(s.start.as_nanos() + SimTime::from_secs_f64(threshold_s).as_nanos()),
                s.span,
            )
        });
        for s in stalls {
            let fire = SimTime(s.start.as_nanos() + SimTime::from_secs_f64(threshold_s).as_nanos());
            let mut e = LogEvent::new(fire, "obs.stall")
                .field("span", s.span)
                .field("phase", s.phase.as_str())
                .field("stalled_s", s.duration_s)
                .field("open", u64::from(s.open));
            if let Some(r) = s.request {
                e = e.field("request", r);
            }
            if let Some(f) = &s.file {
                e = e.field("file", f.clone());
            }
            log.push(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Phase, SpanId, TraceCtx, TracedLog};

    /// Build a two-phase lifeline: queue 0→2, transfer 2→10 (bytes 1000).
    fn sample_log() -> TracedLog {
        let mut log = TracedLog::new();
        let ctx = TraceCtx::request(1).with_file("f1");
        let root = log.span_start(&ctx, SimTime::ZERO, Phase::File, None);
        let q = log.span_start(&ctx, SimTime::ZERO, Phase::Queue, Some(root));
        log.span_end(&ctx, SimTime::from_secs(2), q, Phase::Queue, vec![]);
        let t = log.span_start(&ctx, SimTime::from_secs(2), Phase::Transfer, Some(root));
        log.span_end(
            &ctx,
            SimTime::from_secs(10),
            t,
            Phase::Transfer,
            vec![("bytes", 1000u64.into())],
        );
        log.span_end(
            &ctx,
            SimTime::from_secs(10),
            root,
            Phase::File,
            vec![("status", "done".into())],
        );
        log
    }

    #[test]
    fn reconstructs_complete_lifeline() {
        let log = sample_log();
        let set = LifelineSet::from_log(&log);
        assert_eq!(set.lifelines.len(), 1);
        assert!(set.orphans.is_empty());
        let l = set.lifeline(1, "f1").unwrap();
        assert!(l.is_complete());
        assert_eq!(l.makespan_s(), Some(10.0));
        assert!(l.tiling_gap_s().unwrap() < 1e-9);
        assert_eq!(l.transfer_bytes(), 1000);
        assert_eq!(l.status(), Some("done"));
        let totals = l.phase_totals();
        assert_eq!(totals["queue"], 2.0);
        assert_eq!(totals["transfer"], 8.0);
    }

    #[test]
    fn survives_ulm_round_trip() {
        let log = sample_log();
        let ulm = log.to_ulm();
        let parsed = NetLog::from_ulm(&ulm).unwrap();
        assert_eq!(parsed.to_ulm(), ulm);
        let set = LifelineSet::from_log(&parsed);
        let l = set.lifeline(1, "f1").unwrap();
        assert!(l.is_complete());
        assert_eq!(l.transfer_bytes(), 1000);
    }

    #[test]
    fn incomplete_when_gap_or_open() {
        let mut log = TracedLog::new();
        let ctx = TraceCtx::request(1).with_file("f1");
        let root = log.span_start(&ctx, SimTime::ZERO, Phase::File, None);
        let q = log.span_start(&ctx, SimTime::ZERO, Phase::Queue, Some(root));
        log.span_end(&ctx, SimTime::from_secs(2), q, Phase::Queue, vec![]);
        // Gap: transfer starts at 3, not 2.
        let t = log.span_start(&ctx, SimTime::from_secs(3), Phase::Transfer, Some(root));
        log.span_end(&ctx, SimTime::from_secs(10), t, Phase::Transfer, vec![]);
        log.span_end(&ctx, SimTime::from_secs(10), root, Phase::File, vec![]);
        let set = LifelineSet::from_log(&log);
        assert!(!set.lifeline(1, "f1").unwrap().is_complete());

        // Open root: never closed.
        let mut log = TracedLog::new();
        log.span_start(&ctx, SimTime::ZERO, Phase::File, None);
        let set = LifelineSet::from_log(&log);
        assert!(!set.lifeline(1, "f1").unwrap().is_complete());
    }

    #[test]
    fn orphan_end_is_reported() {
        let mut log = TracedLog::new();
        let ctx = TraceCtx::system();
        log.span_end(&ctx, SimTime::ZERO, SpanId(99), Phase::Queue, vec![]);
        let set = LifelineSet::from_log(&log);
        assert_eq!(set.orphans, vec![99]);
    }

    #[test]
    fn critical_path_picks_latest_settle() {
        let mut log = TracedLog::new();
        // Emit in time order (as a real run does): both files open at t=0,
        // then close at their own settle times.
        let mut open = Vec::new();
        for file in ["fast", "slow"] {
            let ctx = TraceCtx::request(4).with_file(file);
            let root = log.span_start(&ctx, SimTime::ZERO, Phase::File, None);
            let t = log.span_start(&ctx, SimTime::ZERO, Phase::Transfer, Some(root));
            open.push((ctx, root, t));
        }
        for (i, end) in [5u64, 20u64].into_iter().enumerate() {
            let (ctx, root, t) = &open[i];
            log.span_end(ctx, SimTime::from_secs(end), *t, Phase::Transfer, vec![]);
            log.span_end(ctx, SimTime::from_secs(end), *root, Phase::File, vec![]);
        }
        let set = LifelineSet::from_log(&log);
        let cps = set.critical_paths();
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].file, "slow");
        assert_eq!(cps[0].makespan_s, 20.0);
    }

    #[test]
    fn stall_detector_flags_slow_and_open_spans() {
        let mut log = TracedLog::new();
        let ctx = TraceCtx::request(1).with_file("f1");
        let root = log.span_start(&ctx, SimTime::ZERO, Phase::File, None);
        let s = log.span_start(&ctx, SimTime::ZERO, Phase::Stage, Some(root));
        log.span_end(&ctx, SimTime::from_secs(100), s, Phase::Stage, vec![]);
        // Open transfer span; trace ends at 300 via a later event.
        log.span_start(&ctx, SimTime::from_secs(100), Phase::Transfer, Some(root));
        log.emit(&ctx, LogEvent::new(SimTime::from_secs(300), "rm.tick"));
        let set = LifelineSet::from_log(&log);
        let stalls = set.detect_stalls(60.0);
        assert_eq!(stalls.len(), 2);
        assert_eq!(stalls[0].phase, Phase::Stage);
        assert!(!stalls[0].open);
        assert_eq!(stalls[1].phase, Phase::Transfer);
        assert!(stalls[1].open);
        assert_eq!(stalls[1].duration_s, 200.0);
        let events = set.stall_events(60.0);
        assert_eq!(events.named("obs.stall").count(), 2);
        assert_eq!(
            events.named("obs.stall").next().unwrap().time,
            SimTime::from_secs(60)
        );
        // Nothing stalls with a generous threshold.
        assert!(set.detect_stalls(1000.0).is_empty());
    }
}
