//! Directory entries: a DN plus multi-valued attributes.

use crate::dn::Dn;
use std::collections::BTreeMap;

/// A directory entry. Attribute names are case-insensitive (normalized to
/// lowercase); values are ordered, multi-valued strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub dn: Dn,
    attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.add(attr, value);
        self
    }

    /// Add a value to an attribute (duplicates are kept out).
    pub fn add(&mut self, attr: impl Into<String>, value: impl Into<String>) {
        let attr = attr.into().to_ascii_lowercase();
        let value = value.into();
        let values = self.attrs.entry(attr).or_default();
        if !values.contains(&value) {
            values.push(value);
        }
    }

    /// Replace all values of an attribute.
    pub fn set(&mut self, attr: impl Into<String>, values: Vec<String>) {
        self.attrs.insert(attr.into().to_ascii_lowercase(), values);
    }

    /// Remove a single value; removes the attribute when no values remain.
    pub fn remove_value(&mut self, attr: &str, value: &str) -> bool {
        let attr = attr.to_ascii_lowercase();
        if let Some(values) = self.attrs.get_mut(&attr) {
            let before = values.len();
            values.retain(|v| v != value);
            let removed = values.len() != before;
            if values.is_empty() {
                self.attrs.remove(&attr);
            }
            return removed;
        }
        false
    }

    /// Remove an attribute entirely.
    pub fn remove_attr(&mut self, attr: &str) -> bool {
        self.attrs.remove(&attr.to_ascii_lowercase()).is_some()
    }

    /// All values of an attribute (empty slice if absent).
    pub fn values(&self, attr: &str) -> &[String] {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .map_or(&[], |v| v.as_slice())
    }

    /// The first value of an attribute.
    pub fn first(&self, attr: &str) -> Option<&str> {
        self.values(attr).first().map(|s| s.as_str())
    }

    /// First value parsed as u64.
    pub fn first_u64(&self, attr: &str) -> Option<u64> {
        self.first(attr)?.parse().ok()
    }

    /// Attribute names present on this entry.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(|s| s.as_str())
    }

    /// LDIF-style rendering, for debugging and the examples' output.
    pub fn to_ldif(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "dn: {}", self.dn).unwrap();
        for (attr, values) in &self.attrs {
            for v in values {
                writeln!(s, "{attr}: {v}").unwrap();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut e = Entry::new(Dn::parse("cn=x").unwrap());
        e.add("objectClass", "GlobusReplicaLogicalCollection");
        e.add("fileName", "a.nc");
        e.add("fileName", "b.nc");
        assert_eq!(e.values("filename").len(), 2);
        assert_eq!(
            e.first("objectclass"),
            Some("GlobusReplicaLogicalCollection")
        );
        assert_eq!(e.first("missing"), None);
    }

    #[test]
    fn duplicates_collapsed() {
        let mut e = Entry::new(Dn::root());
        e.add("a", "v");
        e.add("a", "v");
        assert_eq!(e.values("a").len(), 1);
    }

    #[test]
    fn remove_value_and_attr() {
        let mut e = Entry::new(Dn::root());
        e.add("f", "1");
        e.add("f", "2");
        assert!(e.remove_value("f", "1"));
        assert!(!e.remove_value("f", "1"));
        assert_eq!(e.values("f"), &["2".to_string()]);
        assert!(e.remove_value("f", "2"));
        assert!(e.values("f").is_empty());
        e.add("g", "x");
        assert!(e.remove_attr("g"));
        assert!(!e.remove_attr("g"));
    }

    #[test]
    fn set_replaces() {
        let mut e = Entry::new(Dn::root());
        e.add("a", "old");
        e.set("a", vec!["new1".into(), "new2".into()]);
        assert_eq!(e.values("a").len(), 2);
        assert_eq!(e.first("a"), Some("new1"));
    }

    #[test]
    fn first_u64_parses() {
        let mut e = Entry::new(Dn::root());
        e.add("size", "1048576");
        e.add("name", "not a number");
        assert_eq!(e.first_u64("size"), Some(1048576));
        assert_eq!(e.first_u64("name"), None);
    }

    #[test]
    fn ldif_rendering() {
        let e = Entry::new(Dn::parse("lc=CO2, o=Grid").unwrap())
            .with("objectclass", "collection")
            .with("filename", "jan.nc");
        let ldif = e.to_ldif();
        assert!(ldif.starts_with("dn: lc=CO2, o=Grid\n"));
        assert!(ldif.contains("filename: jan.nc\n"));
    }
}
