//! # esg-bench — experiment reports and benchmarks
//!
//! One binary per table/figure/ablation (see DESIGN.md's experiment
//! index), plus Criterion benches over the hot components. Binaries print
//! measured numbers next to the paper's, and note the expected *shape*.

use std::fmt::Display;

/// Print a two-column comparison table.
pub fn table(title: &str, rows: &[(&str, String, String)]) {
    println!("\n== {title} ==");
    println!("{:<46} {:>16} {:>16}", "metric", "measured", "paper");
    println!("{:-<80}", "");
    for (name, measured, paper) in rows {
        println!("{name:<46} {measured:>16} {paper:>16}");
    }
}

/// Print a simple (x, y) sweep.
pub fn sweep<X: Display, Y: Display>(title: &str, x_label: &str, y_label: &str, rows: &[(X, Y)]) {
    println!("\n== {title} ==");
    println!("{x_label:>16} {y_label:>16}");
    for (x, y) in rows {
        println!("{x:>16} {y:>16}");
    }
}

/// A crude terminal sparkline for a series (Figure 8 at a glance).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

pub mod scaling {
    //! Flow-level concurrent-user scaling harness (A10).
    //!
    //! Builds a WAN of independent regions — each a storage server feeding
    //! several clients through a shared regional uplink — and pushes N
    //! concurrent flows through it, in either the incremental-allocator
    //! mode (default) or the `--full-recompute` ablation. Both modes must
    //! produce bitwise-identical per-flow completion times and NetLogger
    //! traces; only the wall clock and the allocation-work counters differ.
    //!
    //! Regions are disjoint on purpose: real deployments are many mostly-
    //! independent site↔client paths, and that independence is exactly the
    //! structure a component-scoped allocator exploits. The ablation solves
    //! every region on every event; the incremental path solves only the
    //! region an event touches.

    use esg_netlogger::{LogEvent, NetLog};
    use esg_simnet::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cell::RefCell;
    use std::rc::Rc;

    pub const CLIENTS_PER_REGION: usize = 4;

    /// Result of one variant run.
    pub struct VariantResult {
        pub mode: &'static str,
        pub wall: std::time::Duration,
        pub stats: AllocStats,
        /// (flow sequence number, completion time) in completion order.
        pub completions: Vec<(usize, SimTime)>,
        /// ULM dump of the flow.start/flow.complete trace.
        pub trace_ulm: String,
        pub peak_concurrent: usize,
    }

    struct World {
        log: NetLog,
        completions: Vec<(usize, SimTime)>,
        peak: usize,
    }

    /// Run `n` flows over `regions` regions with the given seed.
    pub fn run_variant(n: usize, regions: usize, seed: u64, full_recompute: bool) -> VariantResult {
        let mut topo = Topology::new();
        let mut servers = Vec::with_capacity(regions);
        let mut clients = Vec::with_capacity(regions);
        for r in 0..regions {
            let sv = topo.add_node(Node::host(format!("server{r}")));
            let rt = topo.add_node(Node::router(format!("router{r}")));
            // Shared regional uplink: 1 Gb/s, 10 ms.
            topo.add_link(sv, rt, 125e6, SimDuration::from_millis(10));
            let mut cls = Vec::with_capacity(CLIENTS_PER_REGION);
            for c in 0..CLIENTS_PER_REGION {
                let cl = topo.add_node(Node::host(format!("client{r}.{c}")));
                // Access: 622 Mb/s, 5 ms.
                topo.add_link(rt, cl, 77.75e6, SimDuration::from_millis(5));
                cls.push(cl);
            }
            servers.push(sv);
            clients.push(cls);
        }

        let mut sim: Sim<Rc<RefCell<World>>> = Sim::new(
            topo,
            Rc::new(RefCell::new(World {
                log: NetLog::new(),
                completions: Vec::new(),
                peak: 0,
            })),
        );
        sim.net.set_full_recompute(full_recompute);

        // Deterministic workload, identical across variants: arrivals
        // staggered over 20 s, sizes chosen so every flow outlives the
        // arrival window — the whole population is concurrently active.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let region = i % regions;
            let src = servers[region];
            let dst = clients[region][rng.gen_range(0usize..CLIENTS_PER_REGION)];
            let at = SimTime::ZERO + SimDuration::from_millis(rng.gen_range(0u64..20_000));
            let size = 150e6 + rng.gen_range(0u64..400_000_000) as f64;
            sim.schedule_at(at, move |s| {
                {
                    let mut w = s.world.borrow_mut();
                    let now = s.net.now();
                    w.log.push(
                        LogEvent::new(now, "flow.start")
                            .field("flow", i)
                            .field("bytes", size),
                    );
                }
                let world = s.world.clone();
                s.start_flow(
                    FlowSpec::new(src, dst, size).window(2e6).memory_to_memory(),
                    move |s2| {
                        let now = s2.now();
                        let mut w = world.borrow_mut();
                        w.completions.push((i, now));
                        w.log.push(
                            LogEvent::new(now, "flow.complete")
                                .field("flow", i)
                                .field("bytes", size),
                        );
                    },
                )
                .expect("regions are always routable");
                let active = s.net.active_flow_count();
                let mut w = s.world.borrow_mut();
                if active > w.peak {
                    w.peak = active;
                }
            });
        }

        let wall = std::time::Instant::now();
        sim.run_until(SimTime::from_secs(100_000));
        let wall = wall.elapsed();

        let world = sim.world.borrow();
        assert_eq!(
            world.completions.len(),
            n,
            "not every flow completed before the horizon"
        );
        VariantResult {
            mode: if full_recompute {
                "full-recompute"
            } else {
                "incremental"
            },
            wall,
            stats: sim.net.alloc_stats(),
            completions: world.completions.clone(),
            trace_ulm: world.log.to_ulm(),
            peak_concurrent: world.peak,
        }
    }

    /// Assert the two variants are observably identical: same completion
    /// order and instants, byte-identical traces. Panics on divergence —
    /// this is the allocation-equivalence tripwire CI relies on.
    pub fn assert_equivalent(a: &VariantResult, b: &VariantResult) {
        assert_eq!(
            a.completions.len(),
            b.completions.len(),
            "completion counts differ: {} vs {}",
            a.mode,
            b.mode
        );
        for (i, (x, y)) in a.completions.iter().zip(&b.completions).enumerate() {
            assert_eq!(
                x, y,
                "completion {i} diverged between {} and {}",
                a.mode, b.mode
            );
        }
        assert_eq!(
            a.trace_ulm, b.trace_ulm,
            "NetLogger traces diverged between {} and {}",
            a.mode, b.mode
        );
    }

    pub fn trace_sha256_hex(v: &VariantResult) -> String {
        esg_gsi::sha256(v.trace_ulm.as_bytes())
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 50.0, 100.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn scaling_variants_are_equivalent_at_small_n() {
        let inc = scaling::run_variant(48, 6, 7, false);
        let full = scaling::run_variant(48, 6, 7, true);
        scaling::assert_equivalent(&inc, &full);
        // The ablation must do strictly more allocation work.
        assert!(full.stats.flow_solves > inc.stats.flow_solves);
        assert_eq!(
            scaling::trace_sha256_hex(&inc),
            scaling::trace_sha256_hex(&full)
        );
    }
}
