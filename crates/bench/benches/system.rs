//! Criterion system benches: how fast the simulator reproduces the paper's
//! experiments. One bench per table/figure-scale run (shortened horizons;
//! the report binaries run the full durations).

use criterion::{criterion_group, criterion_main, Criterion};
use esg_core::{run_fig8, run_table1, Fig8Config, Table1Config};
use esg_simnet::prelude::*;

fn bench_kernel(c: &mut Criterion) {
    // Raw event-loop throughput: 10k timer events.
    c.bench_function("kernel_10k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(Topology::new(), 0);
            for i in 0..10_000u64 {
                sim.schedule(SimDuration::from_micros(i), |s| s.world += 1);
            }
            sim.run();
            assert_eq!(sim.world, 10_000);
        })
    });
}

fn bench_flows(c: &mut Criterion) {
    // 64 concurrent flows sharing a dumbbell to completion.
    c.bench_function("flownet_64_flows_dumbbell", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let d = dumbbell(
                &mut topo,
                DumbbellParams {
                    hosts_per_side: 8,
                    ..DumbbellParams::default()
                },
            );
            let mut sim: Sim<u32> = Sim::new(topo, 0);
            for i in 0..64 {
                let src = d.sources[i % 8];
                let dst = d.sinks[(i * 3 + 1) % 8];
                sim.start_flow(
                    FlowSpec::new(src, dst, 50_000_000.0).memory_to_memory(),
                    |s| s.world += 1,
                )
                .unwrap();
            }
            sim.run();
            assert_eq!(sim.world, 64);
        })
    });
}

/// Table 1 at 1/30 scale (2 simulated minutes): the per-iteration cost of
/// the full striped-transfer machinery.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("table1_2min_sim", |b| {
        b.iter(|| {
            run_table1(Table1Config {
                duration: SimDuration::from_mins(2),
                ..Table1Config::default()
            })
        })
    });
    g.bench_function("fig8_30min_sim", |b| {
        b.iter(|| {
            run_fig8(Fig8Config {
                duration: SimDuration::from_mins(30),
                faults: vec![],
                ..Fig8Config::default()
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernel, bench_flows, bench_table1
}
criterion_main!(benches);
