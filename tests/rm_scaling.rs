//! Differential property tests for the indexed request-manager hot path
//! (`SchedulerConfig::indexed`): across random round sizes, file sizes,
//! admission policies, checkpoint cadences, and fault schedules, a
//! campaign driven through the indexed pipeline must be bitwise
//! indistinguishable from the legacy O(N)-rescan pipeline — same ULM
//! trace, same delivery manifest, same checkpoint journal bytes, same
//! per-file accounting — while reporting exactly zero
//! `rm.sched.queue_rescans` / `rm.ledger.scan_len`. The legacy arm must
//! report a non-zero scan count, proving the ablation flag actually
//! selects different code.
//!
//! Case count is `PROPTEST_CASES`-bounded (default 96, CI runs 128);
//! each case runs two small sims (one per arm).

use esg::core::esg_testbed;
use esg::reqman::{
    start_campaign, AdmissionPolicy, CampaignOutcome, CampaignSpec, LEDGER_SCAN_LEN, QUEUE_RESCANS,
};
use esg::simnet::prelude::{inject_all, Fault, FaultKind};
use esg::simnet::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

const DS: &str = "pcm_rmprop.b06";

static CASE: AtomicUsize = AtomicUsize::new(0);

fn ckpt_path(tag: &str, case: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "esg-rm-scaling-prop-{}-{case}-{tag}.ckpt",
        std::process::id()
    ))
}

struct RunResult {
    outcome: CampaignOutcome,
    trace_sha: String,
    journal: String,
    queue_rescans: u64,
    ledger_scan_len: u64,
}

/// One campaign sim through the chosen pipeline arm: `n` files at sites
/// 1 and 3, replicated to site 4, faults only ever hitting site 1 so a
/// clean source always survives. Everything except `indexed` is shared
/// between the arms, so any divergence is the indexed rewrite's fault.
#[allow(clippy::too_many_arguments)]
fn run_arm(
    seed: u64,
    n: usize,
    bytes_per_file: u64,
    policy: AdmissionPolicy,
    batch: usize,
    ckpt_every: u64,
    faults: &[(u64, u64)],
    ckpt: &Path,
    indexed: bool,
) -> Option<RunResult> {
    let mut tb = esg_testbed(seed);
    tb.publish_dataset(DS, n, 1, bytes_per_file, &[1, 3]);
    let collection = tb.sim.world.metadata.collection_of(DS).unwrap();
    {
        let rm = &mut tb.sim.world.rm;
        rm.scheduler.indexed = indexed;
        rm.scheduler.policy = policy;
    }
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let schedule: Vec<Fault> = faults
        .iter()
        .map(|&(at, dur)| {
            Fault::new(
                SimTime::from_secs(at),
                SimDuration::from_secs(dur),
                FaultKind::NodeDown(tb.sites[1].node),
            )
        })
        .collect();
    inject_all(&mut tb.sim, &schedule);

    let target = tb.sites[4].host.clone();
    let mut spec = CampaignSpec::new("rm-prop", collection, target);
    spec.batch_files = batch;
    spec.checkpoint = Some(ckpt.to_path_buf());
    spec.checkpoint_every = SimDuration::from_secs(ckpt_every);
    let done: Rc<RefCell<Option<CampaignOutcome>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&done);
    tb.sim.schedule_at(SimTime::from_secs(105), move |sim| {
        start_campaign(sim, spec, move |_, o| *sink.borrow_mut() = Some(o));
    });

    tb.sim.run_until(SimTime::from_secs(900));

    let journal = std::fs::read_to_string(ckpt).unwrap_or_default();
    let rm = &tb.sim.world.rm;
    let outcome = done.borrow_mut().take()?;
    Some(RunResult {
        trace_sha: {
            let ulm = rm.log.to_ulm();
            format!("{:x?}", esg::gsi::sha256(ulm.as_bytes()))
        },
        journal,
        queue_rescans: rm.metrics.counter(QUEUE_RESCANS),
        ledger_scan_len: rm.metrics.counter(LEDGER_SCAN_LEN),
        outcome,
    })
}

proptest! {
    /// The ablation contract, differentially: legacy and indexed arms
    /// agree bitwise on every observable, and only the legacy arm scans.
    #[test]
    fn indexed_pipeline_is_bitwise_identical_to_legacy(
        seed in 0u64..500,
        n in 4usize..40,
        bytes_per_file in 500_000u64..4_000_000,
        shape in 0usize..9,
        ckpt_every in 2u64..9,
        faults in prop::collection::vec((102u64..260, 5u64..25), 0..4),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        // `shape` fans out into policy x batching (3 x 3).
        let policy = [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::ShortestFirst,
            AdmissionPolicy::SiteSpread,
        ][shape % 3];
        // batch: whole round at once, small rounds, or mid-size rounds.
        let batch = [n, 3, 8][shape / 3];

        let ckpt_leg = ckpt_path("leg", case);
        let ckpt_idx = ckpt_path("idx", case);
        for p in [&ckpt_leg, &ckpt_idx] {
            let _ = std::fs::remove_file(p);
        }

        let legacy = run_arm(
            seed, n, bytes_per_file, policy, batch, ckpt_every, &faults, &ckpt_leg, false,
        );
        let indexed = run_arm(
            seed, n, bytes_per_file, policy, batch, ckpt_every, &faults, &ckpt_idx, true,
        );
        let legacy = legacy.expect("legacy campaign completes by horizon");
        let indexed = indexed.expect("indexed campaign completes by horizon");

        prop_assert_eq!(
            &indexed.trace_sha, &legacy.trace_sha,
            "indexed trace diverged from legacy"
        );
        prop_assert_eq!(
            &indexed.outcome.manifest_sha256, &legacy.outcome.manifest_sha256,
            "indexed manifest diverged from legacy"
        );
        prop_assert_eq!(
            &indexed.journal, &legacy.journal,
            "indexed checkpoint journal diverged from legacy"
        );
        prop_assert_eq!(indexed.outcome.files_delivered, legacy.outcome.files_delivered);
        prop_assert_eq!(indexed.outcome.files_failed, legacy.outcome.files_failed);
        prop_assert_eq!(indexed.outcome.bytes_transferred, legacy.outcome.bytes_transferred);
        prop_assert_eq!(indexed.outcome.rounds, legacy.outcome.rounds);

        prop_assert_eq!(indexed.queue_rescans, 0, "indexed arm rescanned");
        prop_assert_eq!(indexed.ledger_scan_len, 0, "indexed arm scanned elements");
        prop_assert!(
            legacy.queue_rescans > 0,
            "legacy arm reported no rescans — the ablation flag is dead"
        );

        for p in [&ckpt_leg, &ckpt_idx] {
            let _ = std::fs::remove_file(p);
        }
    }
}
