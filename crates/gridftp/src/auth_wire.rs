//! Wire serialization for the GSI handshake over the control channel.
//!
//! GridFTP carries GSSAPI tokens in `ADAT` commands, base64-encoded. We
//! hex-encode our [`esg_gsi::Hello`]/[`esg_gsi::Proof`] tokens instead
//! (simpler, same role). The encoding is length-prefixed fields, so
//! certificate chains of any depth survive the trip.

use esg_gsi::cert::{Certificate, Subject};
use esg_gsi::{Hello, Proof};

/// Encode bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    esg_gsi::hex(data)
}

/// Decode lowercase/uppercase hex.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = u32::from_be_bytes(self.take(4)?.try_into().ok()?) as usize;
        if len > 1 << 20 {
            return None;
        }
        self.take(len)
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
}

fn encode_cert(out: &mut Vec<u8>, c: &Certificate) {
    put_str(out, &c.subject.0);
    put_str(out, &c.issuer.0);
    put_str(out, &c.key_fingerprint);
    out.extend_from_slice(&c.not_before.to_be_bytes());
    out.extend_from_slice(&c.not_after.to_be_bytes());
    match c.proxy_depth {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            out.extend_from_slice(&d.to_be_bytes());
        }
    }
    out.extend_from_slice(&c.signature);
}

fn decode_cert(c: &mut Cursor<'_>) -> Option<Certificate> {
    let subject = Subject::new(c.string()?);
    let issuer = Subject::new(c.string()?);
    let key_fingerprint = c.string()?;
    let not_before = c.u64()?;
    let not_after = c.u64()?;
    let proxy_depth = match c.u8()? {
        0 => None,
        1 => Some(c.u32()?),
        _ => return None,
    };
    let signature: [u8; 32] = c.take(32)?.try_into().ok()?;
    Some(Certificate {
        subject,
        issuer,
        key_fingerprint,
        not_before,
        not_after,
        proxy_depth,
        signature,
    })
}

/// Serialize a hello token.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(h.chain.len() as u32).to_be_bytes());
    for c in &h.chain {
        encode_cert(&mut out, c);
    }
    out.extend_from_slice(&h.dh_public.to_be_bytes());
    out.extend_from_slice(&h.nonce);
    out
}

/// Deserialize a hello token.
pub fn decode_hello(data: &[u8]) -> Option<Hello> {
    let mut c = Cursor { data, pos: 0 };
    let n = c.u32()? as usize;
    if n > 16 {
        return None;
    }
    let mut chain = Vec::with_capacity(n);
    for _ in 0..n {
        chain.push(decode_cert(&mut c)?);
    }
    let dh_public = c.u64()?;
    let nonce: [u8; 32] = c.take(32)?.try_into().ok()?;
    if c.pos != data.len() {
        return None;
    }
    Some(Hello {
        chain,
        dh_public,
        nonce,
    })
}

/// Serialize a proof token.
pub fn encode_proof(p: &Proof) -> Vec<u8> {
    p.mac.to_vec()
}

/// Deserialize a proof token.
pub fn decode_proof(data: &[u8]) -> Option<Proof> {
    Some(Proof {
        mac: data.try_into().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_gsi::{CertificateAuthority, Handshake};

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 1, 127, 128, 255];
        let h = hex_encode(&data);
        assert_eq!(hex_decode(&h).unwrap(), data);
        assert_eq!(hex_decode("0A0b").unwrap(), vec![0x0a, 0x0b]);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn hello_round_trip_end_entity() {
        let ca = CertificateAuthority::new("/CN=CA", b"s");
        let cred = ca.issue("/CN=alice", 0, 3600);
        let mut hs = Handshake::new(&cred, b"seed");
        let hello = hs.hello(b"nonce");
        let bytes = encode_hello(&hello);
        let back = decode_hello(&bytes).unwrap();
        assert_eq!(back.chain, hello.chain);
        assert_eq!(back.dh_public, hello.dh_public);
        assert_eq!(back.nonce, hello.nonce);
    }

    #[test]
    fn hello_round_trip_proxy_chain() {
        let ca = CertificateAuthority::new("/CN=CA", b"s");
        let cred = ca.issue("/CN=alice", 0, 3600);
        let proxy = cred.delegate(0, 600, b"d").unwrap();
        let mut hs = Handshake::new(&proxy, b"seed");
        let hello = hs.hello(b"nonce");
        assert_eq!(hello.chain.len(), 2);
        let back = decode_hello(&encode_hello(&hello)).unwrap();
        assert_eq!(back.chain, hello.chain);
    }

    #[test]
    fn corrupt_hello_rejected() {
        let ca = CertificateAuthority::new("/CN=CA", b"s");
        let cred = ca.issue("/CN=alice", 0, 3600);
        let mut hs = Handshake::new(&cred, b"seed");
        let bytes = encode_hello(&hs.hello(b"n"));
        assert!(decode_hello(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_hello(&extra).is_none());
    }

    #[test]
    fn proof_round_trip() {
        let p = Proof { mac: [7u8; 32] };
        assert_eq!(decode_proof(&encode_proof(&p)).unwrap().mac, p.mac);
        assert!(decode_proof(&[1, 2, 3]).is_none());
    }
}
