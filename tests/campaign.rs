//! Property tests for campaign checkpoint/resume: under a random fault
//! schedule and a random interruption point, a resumed campaign must be
//! indistinguishable from one that never stopped — same manifest, every
//! file accounted delivered-or-skipped, and zero re-transfer of
//! checkpoint-vouched bytes. The uninterrupted run itself must be
//! bit-deterministic (trace sha256) so the reference is trustworthy.
//!
//! Case count is `PROPTEST_CASES`-bounded (default 96); each case runs
//! four small sims (two full, one interrupted, one resumed).

use esg::core::esg_testbed;
use esg::reqman::{start_campaign, CampaignOutcome, CampaignSpec};
use esg::simnet::prelude::{inject_all, Fault, FaultKind};
use esg::simnet::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

const DS: &str = "pcm_prop.b06";
const FILES: usize = 6;
const FILE_BYTES: u64 = 8_000_000;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn ckpt_path(tag: &str, case: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "esg-campaign-prop-{}-{case}-{tag}.ckpt",
        std::process::id()
    ))
}

struct RunResult {
    outcome: CampaignOutcome,
    trace_sha: String,
}

/// One campaign sim: dataset at sites 1 and 3, replicated to site 4,
/// faults only ever hit site 1 so a clean source always survives.
/// `until` stops the sim early (the interrupted run); completed runs
/// return their outcome.
fn run_campaign(
    seed: u64,
    faults: &[(u64, u64)],
    ckpt: &Path,
    until: Option<SimTime>,
) -> (Option<RunResult>, u64) {
    let mut tb = esg_testbed(seed);
    tb.publish_dataset(DS, 24, 4, 2_000_000, &[1, 3]);
    let collection = tb.sim.world.metadata.collection_of(DS).unwrap();
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let schedule: Vec<Fault> = faults
        .iter()
        .map(|&(at, dur)| {
            Fault::new(
                SimTime::from_secs(at),
                SimDuration::from_secs(dur),
                FaultKind::NodeDown(tb.sites[1].node),
            )
        })
        .collect();
    inject_all(&mut tb.sim, &schedule);

    let target = tb.sites[4].host.clone();
    let mut spec = CampaignSpec::new("prop-camp", collection, target);
    spec.batch_files = 2;
    spec.checkpoint = Some(ckpt.to_path_buf());
    spec.checkpoint_every = SimDuration::from_secs(5);
    let done: Rc<RefCell<Option<CampaignOutcome>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&done);
    tb.sim.schedule_at(SimTime::from_secs(105), move |sim| {
        start_campaign(sim, spec, move |_, o| *sink.borrow_mut() = Some(o));
    });

    tb.sim.run_until(until.unwrap_or(SimTime::from_secs(700)));

    let bytes = tb
        .sim
        .world
        .rm
        .metrics
        .counter("rm.campaign.bytes_transferred");
    let result = done.borrow_mut().take().map(|outcome| RunResult {
        trace_sha: {
            let ulm = tb.sim.world.rm.log.to_ulm();
            format!("{:x?}", esg::gsi::sha256(ulm.as_bytes()))
        },
        outcome,
    });
    (result, bytes)
}

proptest! {
    /// Resume equivalence: for any fault schedule on the flaky source and
    /// any interruption point, interrupted + resumed == uninterrupted.
    #[test]
    fn checkpoint_resume_is_equivalence_preserving(
        seed in 0u64..500,
        interrupt_ds in 1051u64..1650,
        faults in prop::collection::vec((102u64..170, 5u64..25), 0..4),
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let full_a = ckpt_path("full-a", case);
        let full_b = ckpt_path("full-b", case);
        let resume = ckpt_path("resume", case);
        for p in [&full_a, &full_b, &resume] {
            let _ = std::fs::remove_file(p);
        }

        // Two uninterrupted runs: the reference must be deterministic.
        let (ra, bytes_a) = run_campaign(seed, &faults, &full_a, None);
        let (rb, _) = run_campaign(seed, &faults, &full_b, None);
        let ra = ra.expect("uninterrupted campaign completes");
        let rb = rb.expect("uninterrupted campaign completes");
        prop_assert_eq!(&ra.trace_sha, &rb.trace_sha, "full-run trace not deterministic");
        prop_assert_eq!(&ra.outcome.manifest_sha256, &rb.outcome.manifest_sha256);
        prop_assert_eq!(ra.outcome.files_delivered, FILES);
        prop_assert_eq!(ra.outcome.files_failed, 0);
        prop_assert_eq!(bytes_a, FILES as u64 * FILE_BYTES);

        // Interrupt mid-flight (or even post-completion — both must
        // resume cleanly), then finish in a fresh sim.
        let interrupt = SimTime::from_secs_f64(interrupt_ds as f64 / 10.0);
        let (_, bytes_interrupted) = run_campaign(seed, &faults, &resume, Some(interrupt));
        let (rc, bytes_resumed) = run_campaign(seed, &faults, &resume, None);
        let rc = rc.expect("resumed campaign completes");

        prop_assert!(rc.outcome.resumed, "resume run must load the checkpoint");
        prop_assert_eq!(
            &rc.outcome.manifest_sha256, &ra.outcome.manifest_sha256,
            "resumed manifest diverged from the uninterrupted reference"
        );
        prop_assert_eq!(rc.outcome.files_failed, 0);
        prop_assert_eq!(
            rc.outcome.files_skipped + rc.outcome.files_delivered, FILES,
            "every file must be accounted delivered-or-skipped"
        );
        // Zero re-transfer of vouched bytes: what the interrupted run
        // banked plus what the resume moved is exactly the total.
        prop_assert_eq!(
            bytes_interrupted + bytes_resumed, FILES as u64 * FILE_BYTES,
            "checkpoint-vouched bytes were re-transferred"
        );
        prop_assert_eq!(rc.outcome.bytes_skipped, bytes_interrupted);

        for p in [&full_a, &full_b, &resume] {
            let _ = std::fs::remove_file(p);
        }
    }
}
