//! Soak executors (faults + corruption): randomized adversity against
//! the request manager's reliability and integrity layers.
//!
//! Trace-parity warning: these reproduce the pre-migration soak bins
//! *draw-for-draw*. The fault schedule is always fully drawn and only
//! then filtered by `mode` (so the RNG stream is mode-independent), and
//! the 300-second progress ticker is kept even though it only prints —
//! it schedules kernel events, and removing it would renumber every
//! subsequent event's (time, seq) ordering and shift the golden traces.

use super::TrialCtx;
use crate::journal::{AuxFile, MetricValue, TrialKey, TrialRecord};
use esg_reqman::submit_request;
use esg_simnet::prelude::{inject_all, Fault, FaultKind};
use esg_simnet::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

const FAULTS_DS: &str = "pcm_soak.b06";
const INTG_DS: &str = "pcm_intg.b06";
const INTG_FILE_SIZE: u64 = 8_000_000;

fn num(v: f64) -> MetricValue {
    MetricValue::Num(v)
}

fn key(ctx: &TrialCtx) -> TrialKey {
    TrialKey {
        variant: ctx.variant.clone(),
        seed: ctx.seed,
        rep: ctx.rep,
    }
}

/// Progress ticker so long runs show where sim time has got to.
fn tick(sim: &mut esg_core::EsgSim, total: usize) {
    let done = sim.world.outcomes.len();
    eprintln!(
        "  t={:>6.0}s  outcomes {done}/{total}  active flows {}  log events {}",
        sim.now().as_secs_f64(),
        sim.net.active_flow_count(),
        sim.world.rm.log.len(),
    );
    if done < total {
        sim.schedule(SimDuration::from_secs(300), move |s| tick(s, total));
    }
}

pub fn run_faults(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let n_requests = p.usize("requests", 200);
    let mode = p.str("mode", "all").to_string();
    let seed = ctx.seed;

    let mut tb = esg_core::esg_testbed(seed);
    tb.publish_dataset(FAULTS_DS, 24, 4, 2_000_000, &[1, 2, 3, 4, 5]);
    let collection = tb
        .sim
        .world
        .metadata
        .collection_of(FAULTS_DS)
        .map_err(|e| format!("collection_of: {e}"))?;
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_5EED_0BAD_F00D);

    let mut faults = Vec::new();
    for _ in 0..24 {
        let at = SimTime::from_secs(rng.gen_range(120u64..1200));
        let duration = SimDuration::from_secs(rng.gen_range(5u64..90));
        let kind = if rng.gen_bool(0.3) {
            FaultKind::NameServiceDown
        } else {
            FaultKind::NodeDown(tb.sites[rng.gen_range(1usize..6)].node)
        };
        let keep = match mode.as_str() {
            "none" => false,
            "node" => matches!(kind, FaultKind::NodeDown(_)),
            "ns" => matches!(kind, FaultKind::NameServiceDown),
            "all" => true,
            other => return Err(format!("mode must be all|node|ns|none, got '{other}'")),
        };
        if keep {
            faults.push(Fault::new(at, duration, kind));
        }
    }
    faults.extend(super::spec_faults(&ctx.spec.faults, &tb.sites)?);
    let n_faults = faults.len();
    inject_all(&mut tb.sim, &faults);

    let names: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files(FAULTS_DS)
        .map_err(|e| format!("all_files: {e}"))?
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();

    let client = tb.client;
    for _ in 0..n_requests {
        let at = SimTime::from_secs(rng.gen_range(100u64..1300));
        let k = rng.gen_range(1usize..=3);
        let files: Vec<_> = (0..k)
            .map(|_| names[rng.gen_range(0usize..names.len())].clone())
            .collect();
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }

    let total = n_requests;
    tb.sim
        .schedule_at(SimTime::from_secs(300), move |s| tick(s, total));

    let wall = std::time::Instant::now();
    tb.sim.run_until(SimTime::from_secs(3600));
    let wall = wall.elapsed();

    let outcomes = &tb.sim.world.outcomes;
    let log = &tb.sim.world.rm.log;
    let count = |name: &str| log.named(name).count();
    let files: usize = outcomes.iter().map(|o| o.files.len()).sum();
    let complete = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .filter(|f| f.done && f.bytes_done == f.size)
        .count();
    let bytes: u64 = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .map(|f| f.bytes_done)
        .sum();

    Ok(TrialRecord {
        key: key(ctx),
        metrics: vec![
            ("mode".into(), MetricValue::Str(mode)),
            ("requests".into(), num(n_requests as f64)),
            ("requests_done".into(), num(outcomes.len() as f64)),
            ("faults_injected".into(), num(n_faults as f64)),
            ("files".into(), num(files as f64)),
            ("files_complete".into(), num(complete as f64)),
            ("bytes_delivered".into(), num(bytes as f64)),
            (
                "transfer_attempts".into(),
                num(count("rm.replica.selected") as f64),
            ),
            (
                "retry_backoffs".into(),
                num(count("rm.retry.backoff") as f64),
            ),
            (
                "failovers".into(),
                num(count("rm.reliability.failover") as f64),
            ),
            (
                "restart_markers".into(),
                num(count("rm.failover.restart_marker") as f64),
            ),
            ("breaker_opens".into(), num(count("rm.breaker.open") as f64)),
            (
                "breaker_half_opens".into(),
                num(count("rm.breaker.half_open") as f64),
            ),
            (
                "breaker_closes".into(),
                num(count("rm.breaker.close") as f64),
            ),
            ("files_failed".into(), num(count("rm.file.failed") as f64)),
            (
                "trace_sha256".into(),
                MetricValue::Str(crate::sha_hex(&log.to_ulm())),
            ),
        ],
        timing: vec![("wall_ms".into(), wall.as_secs_f64() * 1e3)],
        fragment: None,
        aux: Vec::<AuxFile>::new(),
    })
}

pub fn run_corruption(ctx: &TrialCtx) -> Result<TrialRecord, String> {
    let p = &ctx.params;
    let n_requests = p.usize("requests", 120);
    let trace_path = p.str("trace_path", "SOAK_corruption.ulm").to_string();
    let seed = ctx.seed;

    let mut tb = esg_core::esg_testbed(seed);
    tb.sim
        .world
        .rm
        .hrms
        .get_mut("hpss.lbl.gov")
        .ok_or("hpss.lbl.gov HRM missing from testbed")?
        .enable_tape_errors(3, seed);
    tb.sim.world.rm.integrity.quarantine_threshold = 1;
    tb.publish_dataset(INTG_DS, 24, 4, 2_000_000, &[0, 1, 2, 3, 4, 5]);
    let collection = tb
        .sim
        .world
        .metadata
        .collection_of(INTG_DS)
        .map_err(|e| format!("collection_of: {e}"))?;
    tb.start_nws(SimDuration::from_secs(25));
    tb.sim.run_until(SimTime::from_secs(100));

    let names: Vec<(String, String)> = tb
        .sim
        .world
        .metadata
        .all_files(INTG_DS)
        .map_err(|e| format!("all_files: {e}"))?
        .iter()
        .map(|f| (collection.clone(), f.name.clone()))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_B10C_C0DE_C0DE);

    // At-rest block flips on the disk sites, capped at three of the five
    // disk replicas per file so a clean repair source always survives.
    let mut corrupted: HashMap<String, HashSet<usize>> = HashMap::new();
    let mut flips = 0usize;
    for _ in 0..30 {
        let si = rng.gen_range(1usize..6);
        let (_, name) = names[rng.gen_range(0usize..names.len())].clone();
        let hit_sites = corrupted.entry(name.clone()).or_default();
        if !hit_sites.contains(&si) && hit_sites.len() >= 3 {
            continue;
        }
        hit_sites.insert(si);
        let host = tb.sites[si].host.clone();
        let block = rng.gen_range(0u64..INTG_FILE_SIZE.div_ceil(1 << 20));
        let nonce = rng.gen::<u64>() | 1;
        let at = SimTime::from_secs(rng.gen_range(50u64..1200));
        flips += 1;
        tb.sim.schedule_at(at, move |sim| {
            sim.world.rm.corrupt_at_rest(&host, &name, block, nonce, at);
        });
    }

    // In-flight corruption windows at the storage sites.
    let mut faults = Vec::new();
    for _ in 0..8 {
        let at = SimTime::from_secs(rng.gen_range(120u64..1200));
        let duration = SimDuration::from_secs(rng.gen_range(10u64..60));
        let site = rng.gen_range(1usize..6);
        faults.push(Fault::new(
            at,
            duration,
            FaultKind::WireCorrupt(tb.sites[site].node),
        ));
    }
    let wire_windows = faults.len();
    faults.extend(super::spec_faults(&ctx.spec.faults, &tb.sites)?);
    inject_all(&mut tb.sim, &faults);

    let client = tb.client;
    for _ in 0..n_requests {
        let at = SimTime::from_secs(rng.gen_range(100u64..1300));
        let k = rng.gen_range(1usize..=2);
        let files: Vec<_> = (0..k)
            .map(|_| names[rng.gen_range(0usize..names.len())].clone())
            .collect();
        tb.sim.schedule_at(at, move |sim| {
            submit_request(sim, client, files, |s, o| s.world.outcomes.push(o));
        });
    }

    let wall = std::time::Instant::now();
    tb.sim.run_until(SimTime::from_secs(3600));
    let wall = wall.elapsed();

    let outcomes = &tb.sim.world.outcomes;
    let log = &tb.sim.world.rm.log;
    let count = |name: &str| log.named(name).count();
    let files: usize = outcomes.iter().map(|o| o.files.len()).sum();
    let complete = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .filter(|f| f.done && f.bytes_done == f.size)
        .count();
    let bytes: u64 = outcomes
        .iter()
        .flat_map(|o| o.files.iter())
        .map(|f| f.bytes_done)
        .sum();
    let repair_bytes: f64 = log
        .named("integrity.repair.eret")
        .filter_map(|e| e.get_num("bytes"))
        .sum();

    let trace = log.to_ulm();
    let trace_sha = crate::sha_hex(&trace);
    std::fs::write(&trace_path, &trace).map_err(|e| format!("write {trace_path}: {e}"))?;

    Ok(TrialRecord {
        key: key(ctx),
        metrics: vec![
            ("requests".into(), num(n_requests as f64)),
            ("requests_done".into(), num(outcomes.len() as f64)),
            ("at_rest_flips".into(), num(flips as f64)),
            ("wire_windows".into(), num(wire_windows as f64)),
            ("files".into(), num(files as f64)),
            ("files_complete".into(), num(complete as f64)),
            ("bytes_delivered".into(), num(bytes as f64)),
            (
                "files_verified".into(),
                num(count("integrity.file.verified") as f64),
            ),
            ("rm_completes".into(), num(count("rm.file.complete") as f64)),
            (
                "block_mismatches".into(),
                num(count("integrity.block.mismatch") as f64),
            ),
            (
                "eret_repairs".into(),
                num(count("integrity.repair.eret") as f64),
            ),
            ("repair_bytes".into(), num(repair_bytes)),
            (
                "escalations".into(),
                num(count("integrity.repair.escalate") as f64),
            ),
            (
                "quarantines".into(),
                num(count("integrity.replica.quarantine") as f64),
            ),
            (
                "rehabilitations".into(),
                num(count("integrity.replica.rehabilitated") as f64),
            ),
            ("files_failed".into(), num(count("rm.file.failed") as f64)),
            ("trace_events".into(), num(log.len() as f64)),
            ("trace_sha256".into(), MetricValue::Str(trace_sha.clone())),
        ],
        timing: vec![("wall_ms".into(), wall.as_secs_f64() * 1e3)],
        fragment: None,
        aux: vec![AuxFile {
            path: trace_path,
            sha256: trace_sha,
        }],
    })
}
