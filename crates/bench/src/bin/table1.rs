//! Regenerates **Table 1**: the SC'2000 striped wide-area transfer.
//!
//! `cargo run --release -p esg-bench --bin table1 [minutes]`
//! (default: the paper's full hour).
//!
//! Thin shim since the scenario-lab migration: the experiment
//! configuration and the shape gates (peak(0.1 s) >= peak(5 s) >=
//! sustained, aggregate under the OC-48 ceiling, full 8 x 4 stream
//! fan-out) live in `crates/lab/scenarios/table1.json` and the `table1`
//! executor; this bin loads that spec and applies the legacy CLI
//! override. Exits non-zero if any gate fails.

use esg_lab::json::Json;
use esg_lab::runner::{run_and_report, RunOptions};
use esg_lab::spec::ScenarioSpec;

fn main() {
    let mut spec = ScenarioSpec::load("table1").expect("builtin scenario parses");
    if let Some(minutes) = std::env::args().nth(1).and_then(|s| s.parse::<i128>().ok()) {
        spec.params.0.push(("minutes".into(), Json::Int(minutes)));
    }

    let opts = RunOptions {
        fresh: true,
        ..RunOptions::default()
    };
    match run_and_report(&spec, &opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("table1: {e}");
            std::process::exit(1);
        }
    }
}
