//! Reusable topology builders for experiments and tests.

use crate::network::{CpuModel, LinkId, Node, NodeId, Topology};
use crate::time::SimDuration;

/// A simple dumbbell: `n` source hosts and `n` sink hosts joined by a single
/// bottleneck link between two routers.
///
/// ```text
/// src0 ─┐                      ┌─ dst0
/// src1 ─┼─ R1 ══ bottleneck ══ R2 ─┼─ dst1
/// ...  ─┘                      └─ ...
/// ```
pub struct Dumbbell {
    pub sources: Vec<NodeId>,
    pub sinks: Vec<NodeId>,
    pub left_router: NodeId,
    pub right_router: NodeId,
    pub bottleneck: LinkId,
}

/// Parameters for [`dumbbell`].
#[derive(Debug, Clone, Copy)]
pub struct DumbbellParams {
    pub hosts_per_side: usize,
    /// Bottleneck capacity, bytes/sec per direction.
    pub bottleneck_capacity: f64,
    /// One-way latency across the bottleneck.
    pub wan_latency: SimDuration,
    /// Access link capacity (host ↔ router), bytes/sec.
    pub access_capacity: f64,
    /// One-way access latency.
    pub access_latency: SimDuration,
    /// NIC rate at each host, bytes/sec.
    pub nic_rate: f64,
    /// Host CPU model.
    pub cpu: CpuModel,
    /// Disk read/write rates at hosts.
    pub disk_read: f64,
    pub disk_write: f64,
}

impl Default for DumbbellParams {
    fn default() -> Self {
        DumbbellParams {
            hosts_per_side: 1,
            bottleneck_capacity: 2.5e9 / 8.0, // OC-48-ish
            wan_latency: SimDuration::from_millis(8),
            access_capacity: 1e9 / 8.0 * 2.0, // dual-bonded GigE uplink
            access_latency: SimDuration::from_micros(100),
            nic_rate: 1e9 / 8.0, // GigE
            cpu: CpuModel::unlimited(),
            disk_read: f64::INFINITY,
            disk_write: f64::INFINITY,
        }
    }
}

/// Build a dumbbell topology.
pub fn dumbbell(topo: &mut Topology, p: DumbbellParams) -> Dumbbell {
    let r1 = topo.add_node(Node::router("r-left"));
    let r2 = topo.add_node(Node::router("r-right"));
    let bottleneck = topo.add_link(r1, r2, p.bottleneck_capacity, p.wan_latency);
    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for i in 0..p.hosts_per_side {
        let s = topo.add_node(
            Node::host(format!("src{i}"))
                .with_nic(p.nic_rate)
                .with_cpu(p.cpu)
                .with_disk(p.disk_read, p.disk_write),
        );
        topo.add_link(s, r1, p.access_capacity, p.access_latency);
        sources.push(s);
        let d = topo.add_node(
            Node::host(format!("dst{i}"))
                .with_nic(p.nic_rate)
                .with_cpu(p.cpu)
                .with_disk(p.disk_read, p.disk_write),
        );
        topo.add_link(r2, d, p.access_capacity, p.access_latency);
        sinks.push(d);
    }
    Dumbbell {
        sources,
        sinks,
        left_router: r1,
        right_router: r2,
        bottleneck,
    }
}

/// A star of `n` sites around a core router, each site with one storage host.
/// Returns (core, site hosts). Used for multi-site replica experiments.
pub fn star_sites(
    topo: &mut Topology,
    site_names: &[&str],
    site_capacity: f64,
    site_latency: &[SimDuration],
) -> (NodeId, Vec<NodeId>) {
    assert_eq!(site_names.len(), site_latency.len());
    let core = topo.add_node(Node::router("core"));
    let mut hosts = Vec::new();
    for (name, &lat) in site_names.iter().zip(site_latency) {
        let h = topo.add_node(Node::host(*name));
        topo.add_link(h, core, site_capacity, lat);
        hosts.push(h);
    }
    (core, hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flownet::{FlowNet, FlowSpec};
    use crate::time::SimTime;

    #[test]
    fn dumbbell_shape() {
        let mut topo = Topology::new();
        let d = dumbbell(
            &mut topo,
            DumbbellParams {
                hosts_per_side: 3,
                ..DumbbellParams::default()
            },
        );
        assert_eq!(d.sources.len(), 3);
        assert_eq!(d.sinks.len(), 3);
        // 2 routers + 6 hosts.
        assert_eq!(topo.node_count(), 8);
        // bottleneck + 6 access links.
        assert_eq!(topo.link_count(), 7);
        // Every src can reach every dst through the bottleneck.
        for &s in &d.sources {
            for &t in &d.sinks {
                let route = topo.route(s, t).unwrap();
                assert_eq!(route.len(), 3);
                assert!(route.iter().any(|&(l, _)| l == d.bottleneck));
            }
        }
    }

    #[test]
    fn star_latencies_differ() {
        let mut topo = Topology::new();
        let (_, hosts) = star_sites(
            &mut topo,
            &["lbnl", "anl", "isi"],
            1e9,
            &[
                SimDuration::from_millis(5),
                SimDuration::from_millis(20),
                SimDuration::from_millis(40),
            ],
        );
        let mut net = FlowNet::new(topo);
        let rtt01 = net.path_rtt(hosts[0], hosts[1]).unwrap();
        let rtt02 = net.path_rtt(hosts[0], hosts[2]).unwrap();
        assert_eq!(rtt01, SimDuration::from_millis(50));
        assert_eq!(rtt02, SimDuration::from_millis(90));
        // Can actually move data.
        let f = net
            .start_flow(
                SimTime::ZERO,
                FlowSpec::new(hosts[0], hosts[1], f64::INFINITY).window(1e12),
            )
            .unwrap();
        assert!(net.flow_rate(f) > 0.0);
    }
}
