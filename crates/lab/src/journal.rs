//! Resume-safe JSONL trial journal.
//!
//! Every completed trial is appended to `<journal_dir>/<scenario>.jsonl`
//! as one self-contained line: the spec hash it ran under, the trial
//! coordinates (variant, seed, rep), the deterministic metrics, the
//! timing section, the artifact fragment, and the path+sha256 of any
//! auxiliary files the trial wrote. A rerun replays the journal first
//! and skips every trial whose spec hash matches and whose auxiliary
//! files are still on disk with matching digests — the deterministic
//! same-seed trace contract means a journaled trial's metrics ARE the
//! trial, so the resumed analysis table is byte-identical to an
//! uninterrupted run (regression-tested in `tests/journal_resume.rs`).
//!
//! A truncated final line (the run died mid-append) is silently dropped:
//! that trial simply reruns.

use crate::json::{fmt_num, Json};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Coordinates of one trial in the variant × seed × rep matrix.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrialKey {
    pub variant: String,
    pub seed: u64,
    pub rep: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Num(f64),
    Str(String),
}

impl MetricValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Num(v) => Some(*v),
            MetricValue::Str(_) => None,
        }
    }

    /// Canonical rendering used for table bytes and equivalence compare.
    pub fn canon(&self) -> String {
        match self {
            MetricValue::Num(v) => fmt_num(*v),
            MetricValue::Str(s) => s.clone(),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            MetricValue::Num(v) => num_to_json(*v),
            MetricValue::Str(s) => Json::str(s),
        }
    }
}

/// Canonical numeric JSON: integral in-range values stay integers so
/// counts journal as counts; everything else is a float.
pub fn num_to_json(v: f64) -> Json {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        Json::Int(v as i64 as i128)
    } else {
        Json::Float(v)
    }
}

/// An auxiliary file a trial wrote (ULM trace, …), recorded by path and
/// content digest so resume can prove it still holds the trial's bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct AuxFile {
    pub path: String,
    pub sha256: String,
}

/// Everything one finished trial produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    pub key: TrialKey,
    /// Deterministic metrics (pure functions of spec + seed), sorted by
    /// name before journaling so the bytes are canonical.
    pub metrics: Vec<(String, MetricValue)>,
    /// Wall-clock / RSS measurements. Kept out of the deterministic
    /// table section: they differ run to run by nature.
    pub timing: Vec<(String, f64)>,
    /// Kind-specific fragment the artifact assembler consumes.
    pub fragment: Option<String>,
    pub aux: Vec<AuxFile>,
}

impl TrialRecord {
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric lookup across both sections (timing shadows nothing:
    /// deterministic metrics win).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metric(name)
            .and_then(MetricValue::as_f64)
            .or_else(|| self.timing.iter().find(|(k, _)| k == name).map(|(_, v)| *v))
    }

    pub fn sort_metrics(&mut self) {
        self.metrics.sort_by(|a, b| a.0.cmp(&b.0));
        self.timing.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    pub spec_sha256: String,
    pub record: TrialRecord,
}

impl JournalEntry {
    fn to_json(&self) -> Json {
        let r = &self.record;
        Json::obj(vec![
            ("v", Json::Int(1)),
            ("spec_sha256", Json::str(&self.spec_sha256)),
            ("variant", Json::str(&r.key.variant)),
            ("seed", Json::Int(r.key.seed as i128)),
            ("rep", Json::Int(r.key.rep as i128)),
            (
                "metrics",
                Json::Obj(
                    r.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "timing",
                Json::Obj(
                    r.timing
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ),
            (
                "fragment",
                r.fragment.as_ref().map_or(Json::Null, Json::str),
            ),
            (
                "aux",
                Json::Arr(
                    r.aux
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("path", Json::str(&a.path)),
                                ("sha256", Json::str(&a.sha256)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<JournalEntry, String> {
        let metrics = v
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("journal entry needs metrics")?
            .iter()
            .map(|(k, v)| {
                let mv = match v {
                    Json::Str(s) => MetricValue::Str(s.clone()),
                    other => {
                        MetricValue::Num(other.as_f64().ok_or("metric must be number or string")?)
                    }
                };
                Ok((k.clone(), mv))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let timing = v
            .get("timing")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or("timing values must be numeric".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        let aux = match v.get("aux") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(a)) => a
                .iter()
                .map(|e| {
                    Ok(AuxFile {
                        path: e
                            .get("path")
                            .and_then(Json::as_str)
                            .ok_or("aux needs path")?
                            .to_string(),
                        sha256: e
                            .get("sha256")
                            .and_then(Json::as_str)
                            .ok_or("aux needs sha256")?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("aux must be an array".into()),
        };
        Ok(JournalEntry {
            spec_sha256: v
                .get("spec_sha256")
                .and_then(Json::as_str)
                .ok_or("journal entry needs spec_sha256")?
                .to_string(),
            record: TrialRecord {
                key: TrialKey {
                    variant: v
                        .get("variant")
                        .and_then(Json::as_str)
                        .ok_or("journal entry needs variant")?
                        .to_string(),
                    seed: v
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or("journal entry needs seed")?,
                    rep: v.get("rep").and_then(Json::as_u64).unwrap_or(0) as u32,
                },
                metrics,
                timing,
                fragment: v.get("fragment").and_then(Json::as_str).map(str::to_string),
                aux,
            },
        })
    }
}

pub fn journal_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{scenario}.jsonl"))
}

/// Append one entry; the line is flushed before returning so a crash
/// after `append` never loses the trial. A torn final line left by a
/// previous crash is truncated away first — otherwise the new entry
/// would weld onto it and turn a recoverable tail into mid-journal
/// corruption on the next read.
pub fn append(path: &Path, entry: &JournalEntry) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
    }
    if let Ok(bytes) = std::fs::read(path) {
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| format!("open {path:?}: {e}"))?;
            f.set_len(keep as u64)
                .map_err(|e| format!("truncate torn tail of {path:?}: {e}"))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {path:?}: {e}"))?;
    let mut line = entry.to_json().emit();
    line.push('\n');
    f.write_all(line.as_bytes())
        .map_err(|e| format!("append {path:?}: {e}"))?;
    f.flush().map_err(|e| format!("flush {path:?}: {e}"))?;
    Ok(())
}

/// Read a journal back. A final line that does not parse (truncated
/// mid-append) is dropped; a malformed line anywhere earlier is an
/// error — that journal did not come from this code.
pub fn read(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {path:?}: {e}")),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match Json::parse(line).and_then(|v| JournalEntry::from_json(&v)) {
            Ok(e) => out.push(e),
            Err(err) if i + 1 == lines.len() => {
                // Torn tail from an interrupted append — rerun that trial.
                eprintln!("lab: dropping torn journal tail in {path:?}: {err}");
            }
            Err(err) => return Err(format!("{path:?} line {}: {err}", i + 1)),
        }
    }
    Ok(out)
}

/// Is this journaled trial safe to reuse for `spec_sha`? The spec hash
/// must match and every auxiliary file must still exist with the
/// journaled digest.
pub fn reusable(entry: &JournalEntry, spec_sha: &str) -> bool {
    entry.spec_sha256 == spec_sha
        && entry.record.aux.iter().all(|a| {
            std::fs::read_to_string(&a.path)
                .map(|text| crate::sha_hex(&text) == a.sha256)
                .unwrap_or(false)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(variant: &str, seed: u64) -> JournalEntry {
        JournalEntry {
            spec_sha256: "abc".into(),
            record: TrialRecord {
                key: TrialKey {
                    variant: variant.into(),
                    seed,
                    rep: 0,
                },
                metrics: vec![
                    ("count".into(), MetricValue::Num(4.0)),
                    ("sha".into(), MetricValue::Str("deadbeef".into())),
                ],
                timing: vec![("wall_ms".into(), 12.25)],
                fragment: Some("{\"n\": 1}".into()),
                aux: vec![],
            },
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lab_j_{}", std::process::id()));
        let path = journal_path(&dir, "demo");
        let _ = std::fs::remove_file(&path);
        append(&path, &entry("a", 17)).unwrap();
        append(&path, &entry("b", 23)).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], entry("a", 17));
        assert_eq!(back[1], entry("b", 23));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("lab_torn_{}", std::process::id()));
        let path = journal_path(&dir, "demo");
        let _ = std::fs::remove_file(&path);
        append(&path, &entry("a", 17)).unwrap();
        // Simulate a crash mid-append: half a JSON line, no newline.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"v\":1,\"spec_sha256\":\"abc\",\"varia")
            .unwrap();
        drop(f);
        let back = read(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].record.key.seed, 17);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_after_torn_tail_truncates_it() {
        let dir = std::env::temp_dir().join(format!("lab_heal_{}", std::process::id()));
        let path = journal_path(&dir, "demo");
        let _ = std::fs::remove_file(&path);
        append(&path, &entry("a", 17)).unwrap();
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"v\":1,\"spec_sha256\":\"abc\",\"varia")
            .unwrap();
        drop(f);
        // The resumed run appends over the torn tail: it must not weld
        // onto the half line.
        append(&path, &entry("b", 23)).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].record.key.variant, "b");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_journal_corruption_is_an_error() {
        let dir = std::env::temp_dir().join(format!("lab_mid_{}", std::process::id()));
        let path = journal_path(&dir, "demo");
        let _ = std::fs::remove_file(&path);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "not json\n").unwrap();
        append(&path, &entry("a", 17)).unwrap();
        assert!(read(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reuse_requires_matching_spec_and_aux() {
        let mut e = entry("a", 17);
        assert!(reusable(&e, "abc"));
        assert!(!reusable(&e, "other"));
        e.record.aux.push(AuxFile {
            path: "/definitely/not/a/file.ulm".into(),
            sha256: "0".into(),
        });
        assert!(!reusable(&e, "abc"));
    }
}
