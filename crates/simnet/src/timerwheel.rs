//! Hierarchical timer wheel: the kernel's event queue at 100k-flow scale.
//!
//! A `BinaryHeap` is O(log n) per operation with a large constant (pointer-
//! chasing sift-up/down over boxed closures) and no exploitable structure.
//! Discrete-event workloads are overwhelmingly *near-future* inserts drained
//! in time order, which is exactly what a hashed hierarchical wheel is built
//! for: O(1) amortized insert, pops that touch only the occupied slots.
//!
//! ## Layout
//!
//! Eleven levels of 64 slots each cover the full 64-bit nanosecond clock
//! (6 bits per level, 66 bits addressed). An entry's level is the position
//! of the highest bit in which its time differs from the wheel's `horizon`
//! (the earliest time that can still be scheduled): near-future entries land
//! in level 0 where each slot is a single nanosecond tick, far-future
//! entries park in coarse upper levels and *cascade* down lazily as the
//! horizon reaches them. Per-level occupancy bitmasks make "next nonempty
//! slot" a `trailing_zeros` instruction.
//!
//! ## Total order
//!
//! The queue's contract is a strict total order on `(time, seq)`: entries
//! pop in ascending time, and same-instant entries pop in ascending `seq`
//! (the caller's insertion counter). Slot vectors are *not* kept sorted —
//! a cascade can deposit an older-`seq` entry behind a newer one — so each
//! drained slot is sorted by `(time, seq)` before its entries are released.
//! This keeps the tie-break explicit in exactly one place rather than
//! distributed across the insert paths, and `kernel.rs`'s same-instant
//! determinism tests pin the observable behaviour.

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 11; // 11 * 6 = 66 bits ≥ the full u64 range
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

/// A priority queue over `(time, seq)` keys, optimized for the
/// near-monotone insert pattern of a discrete-event loop.
///
/// Inserts at or after the wheel's `horizon` (the common case — the kernel
/// clamps `schedule_at` to the present, and the horizon trails the present)
/// bucket in O(1). Inserts below the horizon — possible when a peek
/// cascaded ahead of an earlier external event — fall back to a sorted
/// overdue lane. The pop order is the strict `(time, seq)` total order in
/// every case.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `slots[level][slot]` holds entries whose time matches `horizon` on
    /// all bits above the level's range and differs within it.
    slots: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level bitmask of nonempty slots.
    occupancy: [u64; LEVELS],
    /// Earliest admissible time; all stored entries have `time >= horizon`.
    horizon: u64,
    /// Same-instant batch drained from the earliest slot, held in
    /// *descending* `(time, seq)` order so consuming from the back pops the
    /// earliest entry in O(1).
    ready: Vec<Entry<T>>,
    /// Entries admitted below the horizon. A peek cascades lazily and may
    /// advance the horizon toward the earliest *queued* entry; if an
    /// external event source (the flow network) then fires earlier, its
    /// callbacks schedule below the horizon. Such entries cannot be
    /// bucketed (their level arithmetic is relative to the horizon), so
    /// they wait here, sorted descending by `(time, seq)`. Every overdue
    /// entry is earlier than every wheel entry: it was below the horizon
    /// when admitted and the horizon only grows.
    overdue: Vec<Entry<T>>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            horizon: 0,
            ready: Vec::new(),
            overdue: Vec::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level/slot for `time` relative to the current horizon.
    fn locate(&self, time: u64) -> (usize, usize) {
        let xor = time ^ self.horizon;
        let level = if xor == 0 {
            0
        } else {
            ((63 - xor.leading_zeros()) / BITS) as usize
        };
        let slot = ((time >> (BITS * level as u32)) & SLOT_MASK) as usize;
        (level, slot)
    }

    /// Insert an entry. Entries at or after the horizon bucket into the
    /// wheel; earlier ones take the overdue lane.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.len += 1;
        if time < self.horizon {
            let at = self
                .overdue
                .partition_point(|e| (e.time, e.seq) > (time, seq));
            self.overdue.insert(at, Entry { time, seq, item });
            return;
        }
        let (level, slot) = self.locate(time);
        self.slots[level][slot].push(Entry { time, seq, item });
        self.occupancy[level] |= 1 << slot;
    }

    /// Earliest `(time, seq)` key, or `None` when empty. Takes `&mut self`:
    /// finding the minimum may cascade coarse slots downward (an internal
    /// reorganization that never changes the observable pop order).
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if let Some(e) = self.overdue.last() {
            return Some((e.time, e.seq));
        }
        self.settle();
        self.ready.last().map(|e| (e.time, e.seq))
    }

    /// Pop the earliest entry by `(time, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if let Some(e) = self.overdue.pop() {
            self.len -= 1;
            return Some((e.time, e.seq, e.item));
        }
        self.settle();
        let e = self.ready.pop()?;
        self.len -= 1;
        Some((e.time, e.seq, e.item))
    }

    /// Ensure the ready batch holds the globally earliest entries: cascade
    /// upper levels until the earliest occupied slot is a level-0 tick, then
    /// drain it. No-op while the current batch is still the earliest.
    fn settle(&mut self) {
        loop {
            // The ready batch (all one timestamp, == horizon) always sorts
            // before anything still in the wheel: wheel entries have
            // time >= horizon, and same-instant wheel entries carry larger
            // seqs (they were inserted after the batch was drained).
            if !self.ready.is_empty() {
                return;
            }
            if self.len == 0 {
                return;
            }
            let level = (0..LEVELS)
                .find(|&l| self.occupancy[l] != 0)
                .expect("len > 0 but no occupied slot");
            let slot = self.occupancy[level].trailing_zeros() as usize;
            let mut batch = std::mem::take(&mut self.slots[level][slot]);
            self.occupancy[level] &= !(1 << slot);
            if level == 0 {
                // A level-0 slot is a single nanosecond tick: one timestamp,
                // ordered by seq alone. Descending so `pop` takes the back.
                batch.sort_unstable_by_key(|b| std::cmp::Reverse((b.time, b.seq)));
                self.horizon = batch[batch.len() - 1].time;
                self.ready = batch;
            } else {
                // Coarse slot: advance the horizon to the slot's span and
                // re-insert; every entry lands at a strictly lower level.
                let width = BITS * level as u32;
                let prefix = if width + BITS >= 64 {
                    0 // top level: no bits above the slot index
                } else {
                    self.horizon >> (width + BITS) << BITS
                };
                let slot_start = (prefix | slot as u64) << width;
                self.horizon = self.horizon.max(slot_start);
                self.len -= batch.len();
                for e in batch {
                    self.push(e.time, e.seq, e.item);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        for (i, &t) in [5u64, 1, 9, 3, 7].iter().enumerate() {
            w.push(t, i as u64, i as u32);
        }
        let times: Vec<u64> = drain(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(times, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn same_instant_pops_in_seq_order() {
        let mut w = TimerWheel::new();
        for seq in 0..100u64 {
            w.push(42, seq, seq as u32);
        }
        let seqs: Vec<u64> = drain(&mut w).iter().map(|e| e.1).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_times_cascade_correctly() {
        let mut w = TimerWheel::new();
        // One entry per level's span, plus one near the top of the clock.
        let times = [
            1u64,
            100,
            10_000,
            1_000_000,
            1_000_000_000,
            1_000_000_000_000,
            1_000_000_000_000_000,
            u64::MAX - 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, i as u32);
        }
        let got: Vec<u64> = drain(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(got, times.to_vec());
    }

    #[test]
    fn insert_during_drain_at_same_instant_pops_after_earlier_seqs() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 0);
        w.push(10, 1, 1);
        let first = w.pop().unwrap();
        assert_eq!((first.0, first.1), (10, 0));
        // A callback fired at t=10 schedules more same-instant work.
        w.push(10, 2, 2);
        assert_eq!(w.pop().map(|e| e.1), Some(1));
        assert_eq!(w.pop().map(|e| e.1), Some(2));
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_matches_pop_and_does_not_consume() {
        let mut w = TimerWheel::new();
        w.push(7, 3, 0);
        w.push(5, 4, 1);
        assert_eq!(w.peek(), Some((5, 4)));
        assert_eq!(w.peek(), Some((5, 4)));
        assert_eq!(w.pop().map(|e| (e.0, e.1)), Some((5, 4)));
        assert_eq!(w.peek(), Some((7, 3)));
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        assert!(w.pop().is_none());
    }

    #[test]
    fn push_below_horizon_after_peek_cascade_still_pops_in_order() {
        // Regression: a peek at a far-future entry cascades the wheel and
        // advances its horizon; a subsequent push at an earlier time (an
        // external event source fired first) must still pop first.
        let mut w = TimerWheel::new();
        w.push(1_000_000_000, 0, 0);
        assert_eq!(w.peek(), Some((1_000_000_000, 0)));
        w.push(500, 1, 1);
        w.push(400, 2, 2);
        w.push(500, 3, 3);
        assert_eq!(w.pop().map(|e| (e.0, e.2)), Some((400, 2)));
        assert_eq!(w.pop().map(|e| (e.0, e.2)), Some((500, 1)));
        assert_eq!(w.pop().map(|e| (e.0, e.2)), Some((500, 3)));
        assert_eq!(w.pop().map(|e| (e.0, e.2)), Some((1_000_000_000, 0)));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn randomized_interleaving_matches_btreemap_reference() {
        let mut rng = StdRng::seed_from_u64(0xE56_2001);
        for _round in 0..50 {
            let mut w = TimerWheel::new();
            let mut reference: BTreeMap<(u64, u64), u32> = BTreeMap::new();
            let mut seq = 0u64;
            let mut clock = 0u64; // last popped time: usual insert floor
            for _op in 0..400 {
                let roll = rng.gen_range(0..10u32);
                if roll < 6 || reference.is_empty() {
                    // Mix of same-instant, near-future, far-future and
                    // (occasionally) below-horizon times.
                    let dt = match rng.gen_range(0..10u32) {
                        0 => 0,
                        1..=6 => rng.gen_range(0..1_000u64),
                        7 | 8 => rng.gen_range(0..10_000_000u64),
                        _ => rng.gen_range(0..u64::MAX / 2),
                    };
                    let t = if rng.gen_bool(0.1) {
                        rng.gen_range(0..clock.max(1))
                    } else {
                        clock.saturating_add(dt)
                    };
                    w.push(t, seq, seq as u32);
                    reference.insert((t, seq), seq as u32);
                    seq += 1;
                } else if roll < 9 {
                    let got = w.pop();
                    let want = reference.pop_first().map(|((t, s), v)| (t, s, v));
                    assert_eq!(got, want);
                    if let Some((t, _, _)) = got {
                        clock = t;
                    }
                } else {
                    // Peeks cascade internally; order must be unaffected.
                    let want = reference.first_key_value().map(|(&k, _)| k);
                    assert_eq!(w.peek(), want);
                }
                assert_eq!(w.len(), reference.len());
            }
            let rest = drain(&mut w);
            let want: Vec<(u64, u64, u32)> =
                reference.into_iter().map(|((t, s), v)| (t, s, v)).collect();
            assert_eq!(rest, want);
        }
    }
}
