//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. Floating-point seconds are
//! only used at the edges (rate computations, report output).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The end of time; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * NANOS_PER_SEC as f64) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking so that monitor code can be sloppy about ordering.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }

    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * NANOS_PER_SEC)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        SimDuration((s * NANOS_PER_SEC as f64) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-3 {
            write!(f, "{:.1}us", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.2}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{:.3}s", s)
        } else {
            write!(f, "{:.1}min", s / 60.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.as_secs_f64(), 10.5);
        assert_eq!(t2.since(t), SimDuration::from_millis(500));
        // `since` saturates instead of underflowing.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(t.checked_add(SimDuration::from_secs(1)), None);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX,);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(25)), "25.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(9)), "9.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(5)), "5.0min");
    }

    #[test]
    fn from_secs_f64_round_trips_closely() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-9);
    }
}
