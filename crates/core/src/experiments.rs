//! Experiment runners: one function per table/figure/ablation.
//!
//! Each runner builds its testbed, drives the workload on the virtual
//! clock, and returns the measured statistics. The bench crate's report
//! binaries print them next to the paper's numbers; integration tests
//! assert the *shapes* (who wins, where crossovers fall).

use crate::scenario::{fig8_testbed, sc2000_scinet, Sc2000Config};
use crate::world::{EsgSim, EsgWorld};
use esg_gridftp::simxfer::{
    cancel_transfer, start_transfer, transfer_bytes, transfer_stalled, TransferHandle, TransferSpec,
};
use esg_netlogger::{to_gbps, to_mbps};
use esg_simnet::{LinkId, Node, NodeId, Sim, SimDuration, SimTime, Topology};

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Table 1 — the SC'00 striped transfer experiment
// ---------------------------------------------------------------------------

/// Configuration for the Table 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    pub net: Sc2000Config,
    /// The file being served: "a 2-gigabyte file partitioned across the
    /// eight workstations".
    pub file_bytes: u64,
    /// TCP buffer: "We chose 1 MB as a reasonable buffer size".
    pub window: f64,
    /// "up to four simultaneous TCP streams ... from each server".
    pub max_concurrent_per_server: usize,
    /// "a new transfer ... initiated after 25% of the previous transfer
    /// was complete".
    pub start_next_frac: f64,
    /// Measurement length (paper: one hour).
    pub duration: SimDuration,
    /// Meter sampling interval (must be ≤ 0.1 s for the 0.1 s peak).
    pub sample: SimDuration,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            net: Sc2000Config::default(),
            file_bytes: 2_000_000_000,
            window: (1u64 << 20) as f64,
            max_concurrent_per_server: 4,
            start_next_frac: 0.25,
            duration: SimDuration::from_hours(1),
            sample: SimDuration::from_millis(50),
        }
    }
}

/// The Table 1 row set.
#[derive(Debug, Clone, Copy)]
pub struct Table1Results {
    pub striped_servers_source: usize,
    pub striped_servers_destination: usize,
    pub max_streams_per_server: usize,
    pub max_streams_total: usize,
    pub peak_0_1s_gbps: f64,
    pub peak_5s_gbps: f64,
    pub sustained_mbps: f64,
    pub total_gbytes: f64,
    pub transfers_completed: u64,
}

struct Table1State {
    completed_bytes: f64,
    active: HashMap<u64, TransferHandle>,
    next_key: u64,
    live_per_server: Vec<usize>,
    end: SimTime,
}

/// Run the Table 1 experiment.
pub fn run_table1(cfg: Table1Config) -> Table1Results {
    let tb = sc2000_scinet(cfg.net);
    let mut sim = tb.sim;
    let servers = tb.servers.clone();
    let receivers = tb.receivers.clone();
    let n = servers.len();
    let partition = cfg.file_bytes / n as u64;

    let state = Rc::new(RefCell::new(Table1State {
        completed_bytes: 0.0,
        active: HashMap::new(),
        next_key: 0,
        live_per_server: vec![0; n],
        end: SimTime::ZERO + cfg.duration,
    }));

    // Exhibition-floor congestion pattern: the shared SC'00 show floor was
    // bursty. Mostly `base_loss`; every 240 s an 8 s lighter window; every
    // 600 s a 2 s near-quiet window. Calibrated so SciNet-style peak/
    // sustained statistics land in the paper's regime (see EXPERIMENTS.md).
    let wan = tb.wan;
    let horizon = cfg.duration.as_nanos() / 1_000_000_000;
    let mut t = 60u64;
    while t + 8 < horizon {
        schedule_loss_window(
            &mut sim,
            wan,
            SimTime::from_secs(t),
            SimDuration::from_secs(8),
            0.0009,
            cfg.net.base_loss,
        );
        t += 240;
    }
    let mut t = 300u64;
    while t + 2 < horizon {
        schedule_loss_window(
            &mut sim,
            wan,
            SimTime::from_secs(t),
            SimDuration::from_secs(2),
            0.0001,
            cfg.net.base_loss,
        );
        t += 600;
    }

    // Kick off one transfer per server; each spawns its successor at 25%.
    for i in 0..n {
        spawn_table1_transfer(
            &mut sim,
            state.clone(),
            i,
            servers.clone(),
            receivers.clone(),
            partition,
            cfg,
        );
    }

    // Meter sampler.
    schedule_sampler(&mut sim, state.clone(), cfg.sample, cfg.duration);

    sim.run_until(SimTime::ZERO + cfg.duration);

    let meter = &sim.world.meter;
    let end = SimTime::ZERO + cfg.duration;
    Table1Results {
        striped_servers_source: n,
        striped_servers_destination: receivers.len(),
        max_streams_per_server: cfg.max_concurrent_per_server,
        max_streams_total: cfg.max_concurrent_per_server * n,
        peak_0_1s_gbps: to_gbps(meter.peak_rate(SimDuration::from_millis(100))),
        peak_5s_gbps: to_gbps(meter.peak_rate(SimDuration::from_secs(5))),
        sustained_mbps: to_mbps(meter.mean_rate(SimTime::ZERO, end)),
        total_gbytes: meter.bytes_between(SimTime::ZERO, end) / 1e9,
        transfers_completed: sim.world.gridftp.transfers_completed,
    }
}

fn schedule_loss_window(
    sim: &mut EsgSim,
    wan: LinkId,
    at: SimTime,
    dur: SimDuration,
    quiet_loss: f64,
    base_loss: f64,
) {
    sim.schedule_at(at, move |s| {
        s.net.set_link_loss(wan, quiet_loss);
        s.schedule(dur, move |s2| {
            s2.net.set_link_loss(wan, base_loss);
        });
    });
}

fn spawn_table1_transfer(
    sim: &mut EsgSim,
    state: Rc<RefCell<Table1State>>,
    server: usize,
    servers: Vec<NodeId>,
    receivers: Vec<NodeId>,
    partition: u64,
    cfg: Table1Config,
) {
    {
        let mut st = state.borrow_mut();
        if sim.now() >= st.end || st.live_per_server[server] >= cfg.max_concurrent_per_server {
            return;
        }
        st.live_per_server[server] += 1;
    }
    // "Each workstation actually had four copies of its file partition" —
    // each transfer is one TCP stream moving one copy of the partition.
    let spec = TransferSpec::new(servers[server], receivers[server], partition)
        .window(cfg.window)
        .streams(1);
    let st2 = state.clone();
    let servers2 = servers.clone();
    let receivers2 = receivers.clone();
    let result = start_transfer(sim, spec, move |s, result| {
        {
            let mut st = st2.borrow_mut();
            st.live_per_server[server] = st.live_per_server[server].saturating_sub(1);
            if let Ok(r) = &result {
                st.completed_bytes += r.bytes as f64;
            }
        }
        // Keep the pipeline full if the chain died (e.g. very short files).
        if st2.borrow().live_per_server[server] == 0 {
            spawn_table1_transfer(s, st2.clone(), server, servers2, receivers2, partition, cfg);
        }
    });
    if let Ok(handle) = result {
        let key = {
            let mut st = state.borrow_mut();
            let key = st.next_key;
            st.next_key += 1;
            st.active.insert(key, handle);
            key
        };
        // Watch for the 25% point to start the next copy, then for
        // completion to retire the handle from the active set.
        watch_table1_transfer(
            sim, state, server, servers, receivers, partition, cfg, handle, key, false,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn watch_table1_transfer(
    sim: &mut EsgSim,
    state: Rc<RefCell<Table1State>>,
    server: usize,
    servers: Vec<NodeId>,
    receivers: Vec<NodeId>,
    partition: u64,
    cfg: Table1Config,
    handle: TransferHandle,
    key: u64,
    spawned_next: bool,
) {
    sim.schedule(SimDuration::from_millis(500), move |s| {
        let bytes = transfer_bytes(s, handle);
        if bytes >= partition {
            state.borrow_mut().active.remove(&key);
            return;
        }
        let mut spawned = spawned_next;
        if !spawned && bytes as f64 >= cfg.start_next_frac * partition as f64 {
            spawned = true;
            spawn_table1_transfer(
                s,
                state.clone(),
                server,
                servers.clone(),
                receivers.clone(),
                partition,
                cfg,
            );
        }
        watch_table1_transfer(
            s, state, server, servers, receivers, partition, cfg, handle, key, spawned,
        );
    });
}

fn schedule_sampler(
    sim: &mut EsgSim,
    state: Rc<RefCell<Table1State>>,
    sample: SimDuration,
    duration: SimDuration,
) {
    sim.schedule(sample, move |s| {
        let now = s.now();
        if now > SimTime::ZERO + duration {
            return;
        }
        let total = {
            let st = state.borrow();
            let mut total = st.completed_bytes;
            let handles: Vec<TransferHandle> = st.active.values().copied().collect();
            drop(st);
            for h in handles {
                total += transfer_bytes(s, h) as f64;
            }
            total
        };
        s.world.meter.record(now, total);
        schedule_sampler(s, state, sample, duration);
    });
}

// ---------------------------------------------------------------------------
// Figure 8 — the 14-hour reliability run
// ---------------------------------------------------------------------------

/// A fault event in the Figure 8 schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig8Fault {
    /// SCinet power failure: the floor link goes down.
    PowerFailure,
    /// DNS problems: no new connections.
    DnsOutage,
    /// Backbone problems: WAN capacity degraded to 25%.
    Backbone,
}

/// Configuration for the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Repeatedly transferred file (paper: 2 GB).
    pub file_bytes: u64,
    /// Run length (paper: ~14 hours).
    pub duration: SimDuration,
    /// Base parallelism, and the raised level used "toward the right side
    /// of the graph".
    pub base_streams: u32,
    pub late_streams: u32,
    /// When the parallelism increase happens, as a fraction of duration.
    pub late_frac: f64,
    /// Use post-SC'00 data-channel caching (the A4 ablation flips this).
    pub channel_cache: bool,
    /// Fault schedule: (start fraction of duration, length, kind).
    pub faults: Vec<(f64, SimDuration, Fig8Fault)>,
    /// Series bin width for the output.
    pub bin: SimDuration,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            file_bytes: 2_000_000_000,
            duration: SimDuration::from_hours(14),
            base_streams: 4,
            late_streams: 8,
            late_frac: 0.80,
            channel_cache: false,
            faults: vec![
                (0.22, SimDuration::from_mins(25), Fig8Fault::PowerFailure),
                (0.45, SimDuration::from_mins(15), Fig8Fault::DnsOutage),
                (0.62, SimDuration::from_mins(40), Fig8Fault::Backbone),
            ],
            bin: SimDuration::from_secs(60),
        }
    }
}

/// Results of the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Results {
    /// (bin start seconds, Mb/s) series — the figure itself.
    pub series: Vec<(f64, f64)>,
    pub mean_mbps: f64,
    pub plateau_mbps: f64,
    pub total_gbytes: f64,
    pub transfers_completed: u64,
    pub restarts: u64,
    /// Bins during fault windows with ~zero throughput.
    pub dead_bins: usize,
}

struct Fig8State {
    completed_bytes: f64,
    current: Option<TransferHandle>,
    /// Bytes of the current file already banked across restarts.
    file_done: u64,
    restarts: u64,
    streams: u32,
    end: SimTime,
    channel_cache: bool,
    file_bytes: u64,
    stall_since: Option<SimTime>,
}

/// Run the Figure 8 experiment.
pub fn run_fig8(cfg: Fig8Config) -> Fig8Results {
    let tb = fig8_testbed();
    let mut sim = tb.sim;
    let (src, dst) = (tb.src, tb.dst);

    // Fault schedule.
    for &(frac, len, kind) in &cfg.faults {
        let at = SimTime::from_secs_f64(cfg.duration.as_secs_f64() * frac);
        let floor = tb.floor;
        let wan = tb.wan;
        match kind {
            Fig8Fault::PowerFailure => esg_simnet::failure::inject(
                &mut sim,
                esg_simnet::failure::Fault::new(
                    at,
                    len,
                    esg_simnet::failure::FaultKind::LinkDown(floor),
                ),
            ),
            Fig8Fault::DnsOutage => esg_simnet::failure::inject(
                &mut sim,
                esg_simnet::failure::Fault::new(
                    at,
                    len,
                    esg_simnet::failure::FaultKind::NameServiceDown,
                ),
            ),
            Fig8Fault::Backbone => esg_simnet::failure::inject(
                &mut sim,
                esg_simnet::failure::Fault::new(
                    at,
                    len,
                    esg_simnet::failure::FaultKind::LinkDegrade(wan, 0.25),
                ),
            ),
        }
    }

    let state = Rc::new(RefCell::new(Fig8State {
        completed_bytes: 0.0,
        current: None,
        file_done: 0,
        restarts: 0,
        streams: cfg.base_streams,
        end: SimTime::ZERO + cfg.duration,
        channel_cache: cfg.channel_cache,
        file_bytes: cfg.file_bytes,
        stall_since: None,
    }));

    // Parallelism bump late in the run.
    {
        let state = state.clone();
        let late_streams = cfg.late_streams;
        sim.schedule_at(
            SimTime::from_secs_f64(cfg.duration.as_secs_f64() * cfg.late_frac),
            move |_s| {
                state.borrow_mut().streams = late_streams;
            },
        );
    }

    fig8_start_next(&mut sim, state.clone(), src, dst);
    fig8_monitor(&mut sim, state.clone(), src, dst);
    fig8_sampler(&mut sim, state.clone(), cfg.duration);

    sim.run_until(SimTime::ZERO + cfg.duration);

    let meter = &sim.world.meter;
    let series: Vec<(f64, f64)> = meter
        .series(cfg.bin)
        .into_iter()
        .map(|(t, rate)| (t.as_secs_f64(), to_mbps(rate)))
        .collect();
    let mut rates: Vec<f64> = series.iter().map(|&(_, r)| r).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let plateau = if rates.is_empty() {
        0.0
    } else {
        rates[rates.len() * 9 / 10] // 90th percentile ≈ healthy plateau
    };
    let dead_bins = series.iter().filter(|&&(_, r)| r < 1.0).count();
    let end = SimTime::ZERO + cfg.duration;
    let restarts = state.borrow().restarts;
    Fig8Results {
        mean_mbps: to_mbps(meter.mean_rate(SimTime::ZERO, end)),
        plateau_mbps: plateau,
        total_gbytes: meter.bytes_between(SimTime::ZERO, end) / 1e9,
        transfers_completed: sim.world.gridftp.transfers_completed,
        restarts,
        dead_bins,
        series,
    }
}

fn fig8_start_next(sim: &mut EsgSim, state: Rc<RefCell<Fig8State>>, src: NodeId, dst: NodeId) {
    let (remaining, streams, cached, end) = {
        let st = state.borrow();
        (
            st.file_bytes - st.file_done,
            st.streams,
            st.channel_cache,
            st.end,
        )
    };
    if sim.now() >= end {
        return;
    }
    let mut spec = TransferSpec::new(src, dst, remaining).streams(streams);
    if cached {
        spec = spec.cached();
    }
    let st2 = state.clone();
    let result = start_transfer(sim, spec, move |s, result| {
        match result {
            Ok(r) => {
                let mut st = st2.borrow_mut();
                st.completed_bytes += r.bytes as f64;
                st.file_done = 0;
                st.current = None;
                st.stall_since = None;
                drop(st);
                // "transferring a 2 GB file repeatedly": straight to the
                // next file.
                fig8_start_next(s, st2, src, dst);
            }
            Err(_) => {
                st2.borrow_mut().current = None;
                let st3 = st2.clone();
                s.schedule(SimDuration::from_secs(15), move |s2| {
                    fig8_start_next(s2, st3, src, dst);
                });
            }
        }
    });
    match result {
        Ok(handle) => {
            state.borrow_mut().current = Some(handle);
        }
        Err(_) => {
            // DNS outage / network down: retry until it heals ("the
            // interrupted transfers continued as soon as the network was
            // restored").
            let st2 = state.clone();
            sim.schedule(SimDuration::from_secs(15), move |s| {
                fig8_start_next(s, st2, src, dst);
            });
        }
    }
}

/// Stall watchdog: on a long stall, cancel and restart from the marker.
fn fig8_monitor(sim: &mut EsgSim, state: Rc<RefCell<Fig8State>>, src: NodeId, dst: NodeId) {
    sim.schedule(SimDuration::from_secs(5), move |s| {
        if s.now() >= state.borrow().end {
            return;
        }
        let handle = state.borrow().current;
        if let Some(h) = handle {
            if transfer_stalled(s, h) {
                let now = s.now();
                let since = state.borrow().stall_since;
                match since {
                    None => state.borrow_mut().stall_since = Some(now),
                    Some(t0) if now.since(t0) > SimDuration::from_secs(20) => {
                        // Restart from the marker.
                        let banked = cancel_transfer(s, h);
                        {
                            let mut st = state.borrow_mut();
                            st.file_done = (st.file_done + banked).min(st.file_bytes);
                            st.completed_bytes += banked as f64;
                            st.current = None;
                            st.restarts += 1;
                            st.stall_since = None;
                        }
                        fig8_start_next(s, state.clone(), src, dst);
                    }
                    Some(_) => {}
                }
            } else {
                state.borrow_mut().stall_since = None;
            }
        }
        fig8_monitor(s, state, src, dst);
    });
}

fn fig8_sampler(sim: &mut EsgSim, state: Rc<RefCell<Fig8State>>, duration: SimDuration) {
    sim.schedule(SimDuration::from_secs(1), move |s| {
        let now = s.now();
        if now > SimTime::ZERO + duration {
            return;
        }
        let total = {
            let st = state.borrow();
            let mut t = st.completed_bytes;
            if let Some(h) = st.current {
                drop(st);
                t += transfer_bytes(s, h) as f64;
            }
            t
        };
        s.world.meter.record(now, total);
        fig8_sampler(s, state, duration);
    });
}

// ---------------------------------------------------------------------------
// Sweeps and ablations
// ---------------------------------------------------------------------------

/// A single lossy wide-area pair for parameter sweeps: 622 Mb/s path,
/// configurable RTT/loss, unconstrained endpoints.
fn sweep_pair(rtt_one_way_ms: u64, loss: f64) -> (EsgSim, NodeId, NodeId) {
    let mut topo = Topology::new();
    let a = topo.add_node(Node::host("src"));
    let b = topo.add_node(Node::host("dst"));
    let l = topo.add_link(a, b, 622e6 / 8.0, SimDuration::from_millis(rtt_one_way_ms));
    topo.set_link_loss(l, loss);
    (Sim::new(topo, EsgWorld::default()), a, b)
}

/// Measure the mean end-to-end rate of one transfer.
fn measure_transfer(sim: &mut EsgSim, spec: TransferSpec) -> f64 {
    let done = Rc::new(RefCell::new(None));
    let d2 = done.clone();
    start_transfer(sim, spec, move |_s, r| {
        *d2.borrow_mut() = Some(r.expect("sweep transfers succeed").mean_rate());
    })
    .expect("sweep transfers start");
    sim.run();
    let rate = done.borrow().expect("transfer completed");
    rate
}

/// A1: aggregate bandwidth vs number of parallel streams (Mb/s).
pub fn sweep_parallel_streams(streams: &[u32]) -> Vec<(u32, f64)> {
    streams
        .iter()
        .map(|&n| {
            let (mut sim, a, b) = sweep_pair(12, 0.001);
            let rate = measure_transfer(
                &mut sim,
                TransferSpec::new(a, b, 512_000_000)
                    .streams(n)
                    .memory_to_memory(),
            );
            (n, to_mbps(rate))
        })
        .collect()
}

/// A2: bandwidth vs TCP buffer size on a loss-free long-fat path (Mb/s).
/// The crossover sits at the bandwidth-delay product (§7's formula).
pub fn sweep_buffer_size(windows: &[u64]) -> Vec<(u64, f64)> {
    windows
        .iter()
        .map(|&w| {
            let (mut sim, a, b) = sweep_pair(15, 0.0);
            let rate = measure_transfer(
                &mut sim,
                TransferSpec::new(a, b, 512_000_000)
                    .window(w as f64)
                    .memory_to_memory(),
            );
            (w, to_mbps(rate))
        })
        .collect()
}

/// A3: aggregate bandwidth vs stripe width on the SC'00 testbed (Mb/s).
/// Each added server contributes its own NIC/CPU and streams.
pub fn sweep_stripes(stripe_counts: &[usize]) -> Vec<(usize, f64)> {
    stripe_counts
        .iter()
        .map(|&k| {
            let tb = sc2000_scinet(Sc2000Config::default());
            let mut sim = tb.sim;
            let sources: Vec<NodeId> = tb.servers.iter().copied().take(k).collect();
            let rate = measure_transfer(
                &mut sim,
                TransferSpec::striped(sources, tb.receivers[0], 2_000_000_000)
                    .streams(4)
                    .memory_to_memory(),
            );
            (k, to_mbps(rate))
        })
        .collect()
}

/// A4: channel caching ablation — transfer `files` consecutive files and
/// report (mean seconds/file without caching, with caching).
pub fn ablation_channel_caching(files: u32, file_bytes: u64) -> (f64, f64) {
    let run = |cached: bool| -> f64 {
        let (mut sim, a, b) = sweep_pair(25, 0.0005);
        let state = Rc::new(RefCell::new((0u32, SimTime::ZERO)));
        fn next(
            sim: &mut EsgSim,
            state: Rc<RefCell<(u32, SimTime)>>,
            a: NodeId,
            b: NodeId,
            files: u32,
            bytes: u64,
            cached: bool,
        ) {
            if state.borrow().0 >= files {
                let now = sim.now();
                state.borrow_mut().1 = now;
                return;
            }
            let mut spec = TransferSpec::new(a, b, bytes).streams(4).memory_to_memory();
            if cached {
                spec = spec.cached();
            }
            let st = state.clone();
            start_transfer(sim, spec, move |s, r| {
                r.expect("ablation transfers succeed");
                st.borrow_mut().0 += 1;
                next(s, st, a, b, files, bytes, cached);
            })
            .expect("ablation transfers start");
        }
        next(&mut sim, state.clone(), a, b, files, file_bytes, cached);
        sim.run();
        let end = state.borrow().1;
        end.as_secs_f64() / files as f64
    };
    (run(false), run(true))
}

/// A5: host CPU model ablation — achievable rate (Mb/s) with interrupt
/// coalescing off/on and jumbo frames, on an unconstrained 1 Gb/s path.
pub fn ablation_cpu_model() -> Vec<(&'static str, f64)> {
    let run = |coalescing: f64, jumbo: bool| -> f64 {
        let mut topo = Topology::new();
        // Deliberately interrupt-heavy stack (12 cycles/byte) so the CPU,
        // not the NIC, is the binding constraint the mitigations relieve.
        let cpu = esg_simnet::CpuModel {
            cycles_per_sec: 800e6,
            cycles_per_byte: 12.0,
            coalescing_factor: coalescing,
            jumbo_frames: jumbo,
        };
        let a = topo.add_node(Node::host("src").with_nic(1e9 / 8.0).with_cpu(cpu));
        let b = topo.add_node(Node::host("dst").with_nic(1e9 / 8.0).with_cpu(cpu));
        topo.add_link(a, b, 1e9 / 8.0, SimDuration::from_millis(5));
        let mut sim: EsgSim = Sim::new(topo, EsgWorld::default());
        let mss = if jumbo {
            esg_simnet::tcp::MSS_JUMBO
        } else {
            esg_simnet::tcp::MSS
        };
        let rate = measure_transfer(
            &mut sim,
            TransferSpec::new(a, b, 1_000_000_000)
                .streams(4)
                .window(4e6)
                .mss(mss)
                .memory_to_memory(),
        );
        to_mbps(rate)
    };
    vec![
        ("no coalescing", run(1.0, false)),
        ("interrupt coalescing", run(0.8, false)),
        ("coalescing + jumbo frames", run(0.8, true)),
    ]
}

/// B1: related-work baselines on a lossy WAN with a mid-transfer outage.
/// Returns (system name, completion seconds) for a 2 GB file.
///
/// * `ftp-2001`: single stream, 64 KB OS-default buffer, RFC 959 `REST`
///   resume after a failure — but no parallelism and no buffer tuning.
/// * `dods-http`: single stream, 64 KB buffer, whole-file refetch on
///   failure (DODS "relies solely upon HTTP", which had no range-resume in
///   the deployed servers, "and is not well-suited to ... very large data
///   movement over high-bandwidth wide-area networks").
/// * `gridftp`: 4 parallel streams, 1 MB buffers, restart-marker resume.
pub fn baseline_comparison() -> Vec<(&'static str, f64)> {
    let file: u64 = 2_000_000_000;
    // Outage 120 s long, starting 200 s in.
    let run = |streams: u32, window: f64, resume: bool| -> f64 {
        let (mut sim, a, b) = sweep_pair(20, 0.0005);
        esg_simnet::failure::inject(
            &mut sim,
            esg_simnet::failure::Fault::new(
                SimTime::from_secs(200),
                SimDuration::from_secs(120),
                esg_simnet::failure::FaultKind::LinkDown(LinkId(0)),
            ),
        );
        let state: Rc<RefCell<(u64, Option<SimTime>)>> = Rc::new(RefCell::new((0, None)));
        #[allow(clippy::too_many_arguments)]
        fn attempt(
            sim: &mut EsgSim,
            state: Rc<RefCell<(u64, Option<SimTime>)>>,
            a: NodeId,
            b: NodeId,
            file: u64,
            streams: u32,
            window: f64,
            resume: bool,
        ) {
            let done = state.borrow().0;
            let remaining = file - if resume { done } else { 0 };
            let spec = TransferSpec::new(a, b, remaining)
                .streams(streams)
                .window(window)
                .memory_to_memory();
            let st = state.clone();
            let started = start_transfer(sim, spec, move |s, r| match r {
                Ok(_) => {
                    let now = s.now();
                    st.borrow_mut().1 = Some(now);
                }
                Err(_) => {
                    let st2 = st.clone();
                    s.schedule(SimDuration::from_secs(5), move |s2| {
                        attempt(s2, st2, a, b, file, streams, window, resume);
                    });
                }
            });
            match started {
                Ok(handle) => watchdog(sim, state, a, b, file, streams, window, resume, handle),
                Err(_) => {
                    let st2 = state.clone();
                    sim.schedule(SimDuration::from_secs(5), move |s| {
                        attempt(s, st2, a, b, file, streams, window, resume);
                    });
                }
            }
        }
        #[allow(clippy::too_many_arguments)]
        fn watchdog(
            sim: &mut EsgSim,
            state: Rc<RefCell<(u64, Option<SimTime>)>>,
            a: NodeId,
            b: NodeId,
            file: u64,
            streams: u32,
            window: f64,
            resume: bool,
            handle: TransferHandle,
        ) {
            sim.schedule(SimDuration::from_secs(10), move |s| {
                if state.borrow().1.is_some() {
                    return;
                }
                if transfer_stalled(s, handle) {
                    let banked = cancel_transfer(s, handle);
                    if resume {
                        let mut st = state.borrow_mut();
                        st.0 = (st.0 + banked).min(file);
                    }
                    attempt(s, state, a, b, file, streams, window, resume);
                } else {
                    watchdog(s, state, a, b, file, streams, window, resume, handle);
                }
            });
        }
        attempt(&mut sim, state.clone(), a, b, file, streams, window, resume);
        sim.run_until(SimTime::ZERO + SimDuration::from_hours(12));
        let finished = state.borrow().1.expect("baseline transfer finished");
        finished.as_secs_f64()
    };
    vec![
        (
            "ftp-2001 (1 stream, 64KB, REST resume)",
            run(1, 65_536.0, true),
        ),
        (
            "dods-http (1 stream, 64KB, refetch)",
            run(1, 65_536.0, false),
        ),
        (
            "gridftp (4 streams, 1MB, restart)",
            run(4, (1u64 << 20) as f64, true),
        ),
    ]
}

// ---------------------------------------------------------------------------
// A6: replica selection policies / A7: HRM staging
// ---------------------------------------------------------------------------

/// A6: mean request completion time (seconds) per selection policy, over
/// `requests` sequential single-file requests on the multi-site testbed.
pub fn replica_policy_comparison(requests: u32) -> Vec<(&'static str, f64)> {
    use crate::scenario::esg_testbed;
    use esg_replica::{Policy, ReplicaSelector};
    use esg_reqman::submit_request;

    let policies: [(&'static str, Policy); 3] = [
        ("nws-best-bandwidth", Policy::BestBandwidth),
        ("round-robin", Policy::RoundRobin),
        ("random", Policy::Random),
    ];
    policies
        .iter()
        .map(|&(name, policy)| {
            let mut tb = esg_testbed(17);
            // Replicas at LLNL (622 Mb/s, close), ISI (155 Mb/s) and
            // NCAR (155 Mb/s, farther): selection matters.
            tb.publish_dataset("policy_ds", 8, 8, 12_500_000, &[1, 2, 4]);
            tb.sim.world.rm.selector = ReplicaSelector::new(policy, 23);
            tb.start_nws(SimDuration::from_secs(20));
            tb.sim.run_until(SimTime::from_secs(100));
            let collection = tb.sim.world.metadata.collection_of("policy_ds").unwrap();
            let file = tb.sim.world.metadata.all_files("policy_ds").unwrap()[0]
                .name
                .clone();
            let client = tb.client;
            let mut total = 0.0;
            for _ in 0..requests {
                let before = tb.sim.world.outcomes.len();
                submit_request(
                    &mut tb.sim,
                    client,
                    vec![(collection.clone(), file.clone())],
                    |s, o| s.world.outcomes.push(o),
                );
                // Run until this request lands.
                let horizon = tb.sim.now() + SimDuration::from_secs(3_600);
                while tb.sim.world.outcomes.len() == before && tb.sim.now() < horizon {
                    let next = tb.sim.now() + SimDuration::from_secs(5);
                    tb.sim.run_until(next);
                }
                let o = tb.sim.world.outcomes.last().expect("request completed");
                total += o.finished.since(o.started).as_secs_f64();
            }
            (name, total / requests as f64)
        })
        .collect()
}

/// A7: HRM staging impact — request latency (seconds) for disk-resident
/// data, a cold tape read, a warm (cached) tape re-read, and a prestaged
/// read.
pub fn hrm_staging_comparison() -> Vec<(&'static str, f64)> {
    use crate::scenario::esg_testbed;
    use esg_reqman::submit_request;

    let run_request =
        |tb: &mut crate::scenario::EsgTestbed, collection: String, file: String| -> f64 {
            let client = tb.client;
            let before = tb.sim.world.outcomes.len();
            submit_request(&mut tb.sim, client, vec![(collection, file)], |s, o| {
                s.world.outcomes.push(o)
            });
            let horizon = tb.sim.now() + SimDuration::from_secs(7_200);
            while tb.sim.world.outcomes.len() == before && tb.sim.now() < horizon {
                let next = tb.sim.now() + SimDuration::from_secs(5);
                tb.sim.run_until(next);
            }
            let o = tb.sim.world.outcomes.last().expect("request completed");
            o.finished.since(o.started).as_secs_f64()
        };

    let mut out = Vec::new();

    // Disk-resident at LLNL.
    {
        let mut tb = esg_testbed(31);
        tb.publish_dataset("on_disk", 8, 8, 12_500_000, &[1]);
        tb.start_nws(SimDuration::from_secs(20));
        tb.sim.run_until(SimTime::from_secs(100));
        let c = tb.sim.world.metadata.collection_of("on_disk").unwrap();
        let f = tb.sim.world.metadata.all_files("on_disk").unwrap()[0]
            .name
            .clone();
        out.push(("disk-resident (LLNL)", run_request(&mut tb, c, f)));
    }

    // Tape-resident at LBNL HPSS: cold, then warm, then prestaged.
    {
        let mut tb = esg_testbed(32);
        tb.publish_dataset("on_tape", 8, 8, 12_500_000, &[0]);
        tb.start_nws(SimDuration::from_secs(20));
        tb.sim.run_until(SimTime::from_secs(100));
        let c = tb.sim.world.metadata.collection_of("on_tape").unwrap();
        let f = tb.sim.world.metadata.all_files("on_tape").unwrap()[0]
            .name
            .clone();
        out.push((
            "tape cold (HRM stage)",
            run_request(&mut tb, c.clone(), f.clone()),
        ));
        out.push(("tape warm (HRM cache hit)", run_request(&mut tb, c, f)));
    }
    {
        let mut tb = esg_testbed(33);
        tb.publish_dataset("prestaged", 8, 8, 12_500_000, &[0]);
        tb.start_nws(SimDuration::from_secs(20));
        tb.sim.run_until(SimTime::from_secs(100));
        let c = tb.sim.world.metadata.collection_of("prestaged").unwrap();
        let f = tb.sim.world.metadata.all_files("prestaged").unwrap()[0]
            .name
            .clone();
        // Prestage ahead of the request (the "replicate popular
        // collections" pattern), then wait out the staging time.
        let now = tb.sim.now();
        let size = tb.sim.world.rm.catalog.file_size(&c, &f).unwrap();
        {
            let hrm = tb.sim.world.rm.hrms.get_mut("hpss.lbl.gov").unwrap();
            hrm.catalog.register(&f, size);
            hrm.prestage(&[&f], now).unwrap();
        }
        tb.sim.run_until(SimTime::from_secs(2_000));
        out.push(("tape prestaged", run_request(&mut tb, c, f)));
    }
    out
}

/// A8 (extension of §4's planning note): total time for an 8-file request
/// with replicas at three equal sites, with and without the spread
/// planner. Returns (no-spread seconds, spread seconds).
pub fn planner_spread_comparison() -> (f64, f64) {
    use crate::scenario::esg_testbed;
    use esg_reqman::submit_request;

    let run = |spread: bool| -> f64 {
        let mut tb = esg_testbed(41);
        // Three equal-capacity sites: ISI, NCAR, SDSC (all 155 Mb/s).
        tb.publish_dataset("spread_ds", 64, 8, 12_500_000, &[2, 4, 5]);
        tb.sim.world.rm.spread_sites = spread;
        // Lift the admission cap to the request size: this experiment
        // isolates the spread planner's effect, and the cap would
        // otherwise soften the no-spread arm's self-contention.
        tb.sim.world.rm.scheduler.max_active_per_request = 8;
        tb.start_nws(SimDuration::from_secs(20));
        tb.sim.run_until(SimTime::from_secs(100));
        let collection = tb.sim.world.metadata.collection_of("spread_ds").unwrap();
        let files: Vec<(String, String)> = tb
            .sim
            .world
            .metadata
            .all_files("spread_ds")
            .unwrap()
            .iter()
            .map(|f| (collection.clone(), f.name.clone()))
            .collect();
        let client = tb.client;
        submit_request(&mut tb.sim, client, files, |s, o| s.world.outcomes.push(o));
        tb.sim.run_until(SimTime::from_secs(7_200));
        let o = tb.sim.world.outcomes.first().expect("request completed");
        o.finished.since(o.started).as_secs_f64()
    };
    (run(false), run(true))
}

/// A9: NWS forecast quality under bursty cross-traffic. Returns, per
/// forecasting approach, the mean absolute error (bytes/sec) of predicting
/// each probe measurement from the previous ones, on a path shared with
/// seeded on/off background bursts.
pub fn nws_forecast_accuracy() -> Vec<(&'static str, f64)> {
    use esg_nws::{
        AdaptiveForecaster, ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMedian,
    };
    use esg_simnet::background::{start_background, BackgroundTraffic};
    use esg_simnet::Node;

    // A 100 Mb/s path with two competing on/off background sources.
    let mut topo = Topology::new();
    let a = topo.add_node(Node::host("probe-src"));
    let b = topo.add_node(Node::host("probe-dst"));
    topo.add_link(a, b, 100e6 / 8.0, SimDuration::from_millis(10));
    let mut sim: EsgSim = Sim::new(topo, EsgWorld::default());
    for seed in [11u64, 12] {
        start_background(
            &mut sim,
            BackgroundTraffic {
                src: a,
                dst: b,
                mean_on: SimDuration::from_secs(40),
                mean_off: SimDuration::from_secs(60),
                burst_rate: 8e6,
                seed,
                until: SimTime::from_secs(7000),
            },
        );
    }
    esg_nws::start_sensor(&mut sim, a, b, SimDuration::from_secs(30), 512.0 * 1024.0);
    sim.run_until(SimTime::from_secs(7200));
    let history: Vec<f64> = sim
        .world
        .nws
        .history(a, b)
        .iter()
        .map(|&(_, r)| r)
        .collect();
    assert!(history.len() > 100, "need a long probe history");

    // Replay the measurement stream through each forecaster and score
    // one-step-ahead mean absolute error.
    let mut contenders: Vec<(&'static str, Box<dyn Forecaster>)> = vec![
        ("last-value", Box::new(LastValue::default())),
        ("running-mean", Box::new(RunningMean::default())),
        ("sliding-median-5", Box::new(SlidingMedian::new(5))),
        ("exp-smoothing-0.50", Box::new(ExpSmoothing::new(0.5))),
        ("nws-adaptive", Box::new(AdaptiveForecaster::standard())),
    ];
    contenders
        .iter_mut()
        .map(|(name, f)| {
            let mut abs_err = 0.0;
            let mut scored = 0u64;
            for &x in &history {
                if let Some(p) = f.predict() {
                    abs_err += (p - x).abs();
                    scored += 1;
                }
                f.observe(x);
            }
            (*name, abs_err / scored.max(1) as f64)
        })
        .collect()
}

/// A10: concurrent-user scaling (the abstract's motivation: datasets used
/// "by potentially thousands of users"). `user_counts` concurrent clients
/// each request one file; returns (users, mean request seconds, aggregate
/// served Mb/s).
pub fn user_scaling(user_counts: &[usize]) -> Vec<(usize, f64, f64)> {
    use crate::scenario::esg_testbed;
    use esg_reqman::submit_request;

    user_counts
        .iter()
        .map(|&n| {
            let mut tb = esg_testbed(61);
            // Disk-resident replicas at three sites (no tape in this
            // experiment; A7 covers staging).
            tb.publish_dataset("popular", 8, 8, 12_500_000, &[1, 3, 4]);
            tb.start_nws(SimDuration::from_secs(20));
            tb.sim.run_until(SimTime::from_secs(100));
            let collection = tb.sim.world.metadata.collection_of("popular").unwrap();
            let file = tb.sim.world.metadata.all_files("popular").unwrap()[0]
                .name
                .clone();
            let client = tb.client;
            let started = tb.sim.now();
            for _ in 0..n {
                submit_request(
                    &mut tb.sim,
                    client,
                    vec![(collection.clone(), file.clone())],
                    |s, o| s.world.outcomes.push(o),
                );
            }
            tb.sim.run_until(SimTime::from_secs(36_000));
            assert_eq!(tb.sim.world.outcomes.len(), n, "all requests served");
            let mean_secs: f64 = tb
                .sim
                .world
                .outcomes
                .iter()
                .map(|o| o.finished.since(o.started).as_secs_f64())
                .sum::<f64>()
                / n as f64;
            let last_done = tb
                .sim
                .world
                .outcomes
                .iter()
                .map(|o| o.finished)
                .max()
                .unwrap();
            let total_bytes: u64 = tb.sim.world.outcomes.iter().map(|o| o.total_bytes).sum();
            let wall = last_done.since(started).as_secs_f64();
            (n, mean_secs, total_bytes as f64 * 8.0 / wall / 1e6)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_table1() -> Table1Config {
        Table1Config {
            duration: SimDuration::from_mins(10),
            sample: SimDuration::from_millis(50),
            ..Table1Config::default()
        }
    }

    #[test]
    fn table1_reproduces_paper_shape() {
        let r = run_table1(short_table1());
        assert_eq!(r.striped_servers_source, 8);
        assert_eq!(r.max_streams_total, 32);
        // Paper: 1.55 / 1.03 / 0.5129 Gb/s. Accept the band, and require
        // the strict ordering peak0.1 ≥ peak5 ≥ sustained.
        assert!(
            r.peak_0_1s_gbps > 1.2 && r.peak_0_1s_gbps <= 1.6,
            "peak 0.1s {}",
            r.peak_0_1s_gbps
        );
        assert!(
            r.peak_5s_gbps > 0.7 && r.peak_5s_gbps < 1.3,
            "peak 5s {}",
            r.peak_5s_gbps
        );
        assert!(
            r.sustained_mbps > 350.0 && r.sustained_mbps < 750.0,
            "sustained {}",
            r.sustained_mbps
        );
        assert!(r.peak_0_1s_gbps >= r.peak_5s_gbps);
        assert!(r.peak_5s_gbps * 1000.0 >= r.sustained_mbps);
    }

    #[test]
    fn fig8_shape_faults_and_recovery() {
        let cfg = Fig8Config {
            duration: SimDuration::from_hours(2),
            faults: vec![
                (0.25, SimDuration::from_mins(10), Fig8Fault::PowerFailure),
                (0.60, SimDuration::from_mins(8), Fig8Fault::DnsOutage),
            ],
            ..Fig8Config::default()
        };
        let r = run_fig8(cfg);
        // Plateau ~80 Mb/s (disk limited).
        assert!(
            r.plateau_mbps > 60.0 && r.plateau_mbps < 95.0,
            "plateau {}",
            r.plateau_mbps
        );
        // The power failure must produce dead bins, and transfers must
        // resume afterwards (multiple completions).
        assert!(r.dead_bins >= 5, "dead bins {}", r.dead_bins);
        assert!(r.restarts >= 1, "restarts {}", r.restarts);
        assert!(
            r.transfers_completed >= 10,
            "completed {}",
            r.transfers_completed
        );
        assert!(r.mean_mbps < r.plateau_mbps);
    }

    #[test]
    fn parallel_sweep_monotone_until_cap() {
        let sweep = sweep_parallel_streams(&[1, 2, 4, 8]);
        assert!(sweep[1].1 > sweep[0].1 * 1.5, "{sweep:?}");
        assert!(sweep[2].1 > sweep[1].1 * 1.4, "{sweep:?}");
        // 8 streams approaches or hits a ceiling — still ≥ 4-stream rate.
        assert!(sweep[3].1 >= sweep[2].1 * 0.95, "{sweep:?}");
    }

    #[test]
    fn buffer_sweep_crosses_at_bdp() {
        // Path: 622 Mb/s, RTT 30 ms → BDP ≈ 2.3 MB.
        let sweep = sweep_buffer_size(&[64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]);
        // Below BDP rate ≈ window/RTT: 64 KB / 30 ms ≈ 17.5 Mb/s.
        assert!(sweep[0].1 < 25.0, "{sweep:?}");
        // Well above BDP the link saturates.
        assert!(sweep[4].1 > 500.0, "{sweep:?}");
        // Monotone non-decreasing.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "{sweep:?}");
        }
    }

    #[test]
    fn stripes_scale_toward_wan_cap() {
        let sweep = sweep_stripes(&[1, 2, 4, 8]);
        assert!(sweep[1].1 > sweep[0].1 * 1.6, "{sweep:?}");
        assert!(sweep[3].1 > sweep[2].1 * 1.2, "{sweep:?}");
    }

    #[test]
    fn channel_caching_saves_per_file_overhead() {
        // Small files: per-file setup overhead dominates, as with the
        // consecutive-transfer valleys of Figure 8.
        let (uncached, cached) = ablation_channel_caching(6, 5_000_000);
        assert!(
            cached < uncached * 0.75,
            "caching should cut per-file time: {uncached:.2}s vs {cached:.2}s"
        );
    }

    #[test]
    fn cpu_ablation_ordering() {
        let rows = ablation_cpu_model();
        assert!(rows[1].1 > rows[0].1, "{rows:?}");
        assert!(rows[2].1 > rows[1].1, "{rows:?}");
    }

    #[test]
    fn user_scaling_degrades_gracefully() {
        let rows = user_scaling(&[1, 8, 32]);
        let (_, t1, _) = rows[0];
        let (_, t8, agg8) = rows[1];
        let (_, t32, agg32) = rows[2];
        // Latency grows with contention but sub-linearly (replicas at
        // three sites absorb load), and aggregate throughput grows.
        assert!(t8 > t1, "contention must cost something: {t1} vs {t8}");
        assert!(t32 < t1 * 32.0, "far better than serial: {t1} vs {t32}");
        assert!(agg32 > agg8 * 0.8, "aggregate holds up: {agg8} vs {agg32}");
    }

    #[test]
    fn adaptive_forecaster_competitive_under_bursts() {
        let rows = nws_forecast_accuracy();
        let adaptive = rows.iter().find(|(n, _)| *n == "nws-adaptive").unwrap().1;
        let worst = rows.iter().map(|&(_, e)| e).fold(f64::MIN, f64::max);
        // The meta-forecaster never loses to the worst single method and
        // tracks within 25% of the best single method — the point of the
        // mixture: robustness without knowing the regime in advance.
        let best_single = rows
            .iter()
            .filter(|(n, _)| *n != "nws-adaptive")
            .map(|&(_, e)| e)
            .fold(f64::MAX, f64::min);
        assert!(adaptive < worst, "adaptive {adaptive} worst {worst}");
        assert!(
            adaptive < best_single * 1.25,
            "adaptive {adaptive} best single {best_single}"
        );
    }

    #[test]
    fn nws_policy_beats_baselines() {
        let rows = replica_policy_comparison(3);
        let nws = rows[0].1;
        let rr = rows[1].1;
        let rnd = rows[2].1;
        assert!(nws < rr, "nws {nws} vs round-robin {rr}");
        assert!(nws < rnd * 0.8, "nws {nws} vs random {rnd}");
    }

    #[test]
    fn hrm_staging_tiers_ordered() {
        let rows = hrm_staging_comparison();
        let disk = rows[0].1;
        let cold = rows[1].1;
        let warm = rows[2].1;
        let prestaged = rows[3].1;
        assert!(cold > disk * 5.0, "cold tape {cold} vs disk {disk}");
        assert!(warm < cold / 3.0, "warm {warm} vs cold {cold}");
        assert!(
            prestaged < cold / 3.0,
            "prestaged {prestaged} vs cold {cold}"
        );
    }

    #[test]
    fn spread_planner_speeds_multi_file_requests() {
        let (no_spread, spread) = planner_spread_comparison();
        assert!(
            spread < no_spread * 0.55,
            "spreading 8 files over 3 sites should be much faster: \
             {no_spread:.1}s vs {spread:.1}s"
        );
    }

    #[test]
    fn gridftp_beats_baselines_under_failure() {
        let rows = baseline_comparison();
        let ftp = rows[0].1;
        let gridftp = rows[2].1;
        assert!(
            gridftp < ftp * 0.6,
            "gridftp {gridftp}s should beat ftp {ftp}s comfortably"
        );
    }
}
