//! The scenario runner: plan the variant × seed × rep matrix, replay the
//! journal, execute what is missing, evaluate gates, assemble artifacts.
//!
//! One invariant carries the whole resume story: a trial's deterministic
//! metrics are a pure function of (spec, variant, seed, rep), so a
//! journaled trial IS the trial and the deterministic analysis table of
//! a resumed run is byte-identical to an uninterrupted one. Timing
//! (wall clock, RSS) is kept in a separate section that never feeds the
//! table or the equivalence gates.

use crate::exec::{self, TrialCtx};
use crate::gate::{self, Baseline, GateReport};
use crate::journal::{self, JournalEntry, TrialKey, TrialRecord};
use crate::json::Json;
use crate::spec::ScenarioSpec;
use std::fmt::Write as _;
use std::path::PathBuf;

#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Where the journal and analysis tables live (CI uploads this dir).
    pub journal_dir: PathBuf,
    /// Ignore any existing journal and rerun everything.
    pub fresh: bool,
    /// Execute at most this many *new* trials, then stop (journaled
    /// trials still replay). The interruption hook the resume tests use.
    pub max_trials: Option<usize>,
    /// Suppress per-trial progress lines.
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            journal_dir: PathBuf::from("lab_out"),
            fresh: false,
            max_trials: None,
            quiet: false,
        }
    }
}

pub struct RunOutcome {
    pub spec: ScenarioSpec,
    pub spec_sha256: String,
    /// Finished trials in plan order (the full matrix when `complete`).
    pub rows: Vec<TrialRecord>,
    pub reused: usize,
    pub executed: usize,
    /// False when `max_trials` stopped the run early.
    pub complete: bool,
    /// Empty unless `complete` — gates judge the whole matrix or nothing.
    pub gates: GateReport,
    /// Deterministic analysis table (metrics only, canonical rendering).
    pub table: String,
    /// Human section with wall clocks; excluded from `table` by design.
    pub timing: String,
    pub artifact_path: Option<String>,
    pub table_path: PathBuf,
}

/// Plan the full trial matrix in canonical order: variants in spec
/// order, seeds in spec order, reps innermost.
pub fn plan(spec: &ScenarioSpec) -> Vec<TrialKey> {
    let mut keys = Vec::new();
    for v in spec.effective_variants() {
        for &seed in &spec.seeds {
            for rep in 0..spec.reps {
                keys.push(TrialKey {
                    variant: v.name.clone(),
                    seed,
                    rep,
                });
            }
        }
    }
    keys
}

pub fn run_scenario(spec: &ScenarioSpec, opts: &RunOptions) -> Result<RunOutcome, String> {
    spec.validate()?;
    let spec_sha = spec.sha256_hex();
    let jpath = journal::journal_path(&opts.journal_dir, &spec.name);

    // Load the regression baseline *before* any artifact overwrite, so a
    // run that rewrites its own committed baseline still gates against
    // the pre-run bytes.
    let (baseline, baseline_err) = load_baseline(spec);

    let journaled = if opts.fresh {
        Vec::new()
    } else {
        journal::read(&jpath)?
    };
    let reusable: Vec<&JournalEntry> = journaled
        .iter()
        .filter(|e| journal::reusable(e, &spec_sha))
        .collect();

    let keys = plan(spec);
    let variants = spec.effective_variants();
    let mut rows: Vec<TrialRecord> = Vec::with_capacity(keys.len());
    let mut reused = 0usize;
    let mut executed = 0usize;
    let mut complete = true;
    for key in &keys {
        if let Some(e) = reusable.iter().find(|e| e.record.key == *key) {
            if !opts.quiet {
                println!(
                    "  [journal] {}/seed={}/rep={}",
                    key.variant, key.seed, key.rep
                );
            }
            rows.push(e.record.clone());
            reused += 1;
            continue;
        }
        if opts.max_trials.is_some_and(|m| executed >= m) {
            complete = false;
            break;
        }
        let variant = variants
            .iter()
            .find(|v| v.name == key.variant)
            .expect("plan key names a spec variant");
        let ctx = TrialCtx {
            spec,
            params: spec.params.merged(&variant.overrides),
            variant: key.variant.clone(),
            seed: key.seed,
            rep: key.rep,
        };
        if !opts.quiet {
            println!(
                "  [run]     {}/seed={}/rep={}",
                key.variant, key.seed, key.rep
            );
        }
        let record = exec::run_trial(&ctx)
            .map_err(|e| format!("{}/seed={}/rep={}: {e}", key.variant, key.seed, key.rep))?;
        journal::append(
            &jpath,
            &JournalEntry {
                spec_sha256: spec_sha.clone(),
                record: record.clone(),
            },
        )?;
        rows.push(record);
        executed += 1;
    }

    let table = analysis_table(spec, &spec_sha, &rows, complete);
    let table_path = opts.journal_dir.join(format!("{}.table.txt", spec.name));
    if let Some(parent) = table_path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
    }
    std::fs::write(&table_path, &table).map_err(|e| format!("write {table_path:?}: {e}"))?;

    let mut gates = GateReport::default();
    let mut artifact_path = None;
    if complete {
        if baseline.is_none() && needs_baseline(spec) {
            // Surface *why* there is no baseline next to the gate error.
            if let Some(err) = &baseline_err {
                eprintln!("lab: baseline unavailable: {err}");
            }
        }
        gates = gate::evaluate(&spec.gates, &rows, baseline.as_ref());
        if gates.all_pass() {
            if let (Some(path), Some(body)) = (&spec.artifact, exec::assemble_artifact(spec, &rows))
            {
                std::fs::write(path, &body).map_err(|e| format!("write {path}: {e}"))?;
                artifact_path = Some(path.clone());
            }
        }
    }

    Ok(RunOutcome {
        spec: spec.clone(),
        spec_sha256: spec_sha,
        timing: timing_section(&rows),
        rows,
        reused,
        executed,
        complete,
        gates,
        table,
        artifact_path,
        table_path,
    })
}

/// Run a scenario and print the standard report: header, trial counts,
/// the deterministic analysis table, the timing section, gate lines and
/// the artifact/journal paths. Returns whether the run completed with
/// every gate passing — the shared body of the `lab` CLI and the thin
/// per-bench shim bins, so they all render results identically.
pub fn run_and_report(spec: &ScenarioSpec, opts: &RunOptions) -> Result<bool, String> {
    println!(
        "== scenario {} ({}, {} variants x {} seeds x {} reps) ==",
        spec.name,
        spec.kind,
        spec.effective_variants().len(),
        spec.seeds.len(),
        spec.reps
    );
    let outcome = run_scenario(spec, opts)?;
    println!(
        "  {} trials ({} from journal, {} executed){}",
        outcome.rows.len(),
        outcome.reused,
        outcome.executed,
        if outcome.complete {
            ""
        } else {
            " — INTERRUPTED by --max-trials"
        }
    );
    print!("{}", outcome.table);
    if !outcome.timing.is_empty() {
        println!("timing (non-deterministic, excluded from the table):");
        print!("{}", outcome.timing);
    }
    if outcome.complete {
        for g in &outcome.gates.results {
            println!(
                "  gate {:<55} {:<5} {}",
                g.label,
                g.status.as_str(),
                g.detail
            );
        }
    }
    if let Some(p) = &outcome.artifact_path {
        println!("  wrote {p}");
    }
    println!(
        "  journal: {:?}, table: {:?}",
        journal::journal_path(&opts.journal_dir, &spec.name),
        outcome.table_path
    );
    println!();
    Ok(outcome.complete && outcome.gates.all_pass())
}

fn needs_baseline(spec: &ScenarioSpec) -> bool {
    spec.gates
        .iter()
        .any(|g| matches!(g, crate::spec::GateSpec::WallRegression { .. }))
}

fn load_baseline(spec: &ScenarioSpec) -> (Option<Baseline>, Option<String>) {
    let Some(path) = &spec.baseline else {
        return (None, None);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return (None, Some(format!("read {path}: {e}"))),
    };
    let parsed = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => return (None, Some(format!("parse {path}: {e}"))),
    };
    match exec::baseline_metrics(spec, &parsed) {
        Ok(b) => (Some(b), None),
        Err(e) => (None, Some(format!("extract baseline from {path}: {e}"))),
    }
}

/// The deterministic analysis table: scenario identity, then one block
/// per trial in plan order with every deterministic metric in canonical
/// rendering. Byte-identical across interrupted/resumed/fresh runs of
/// the same spec — `tests/journal_resume.rs` pins exactly that.
fn analysis_table(
    spec: &ScenarioSpec,
    spec_sha: &str,
    rows: &[TrialRecord],
    complete: bool,
) -> String {
    let mut t = String::new();
    writeln!(t, "# scenario {} ({})", spec.name, spec.kind).unwrap();
    writeln!(t, "# spec sha256 {spec_sha}").unwrap();
    writeln!(
        t,
        "# trials {}{}",
        rows.len(),
        if complete { "" } else { " (partial)" }
    )
    .unwrap();
    for r in rows {
        writeln!(
            t,
            "trial variant={} seed={} rep={}",
            r.key.variant, r.key.seed, r.key.rep
        )
        .unwrap();
        for (k, v) in &r.metrics {
            writeln!(t, "  {k} = {}", v.canon()).unwrap();
        }
    }
    t
}

/// Wall clocks and other run-to-run noise, formatted for humans and kept
/// strictly out of the deterministic table.
fn timing_section(rows: &[TrialRecord]) -> String {
    let mut t = String::new();
    for r in rows {
        for (k, v) in &r.timing {
            writeln!(
                t,
                "  {}/seed={}/rep={}: {k} = {v:.3}",
                r.key.variant, r.key.seed, r.key.rep
            )
            .unwrap();
        }
    }
    t
}
