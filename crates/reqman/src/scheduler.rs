//! The pipelined transfer scheduler.
//!
//! The paper's Request Manager "plan[s] concurrent file transfers to
//! maximize the number of different sites from which files are obtained"
//! (§4), negotiates TCP buffers per path, and leans on HRM to stage tape
//! files ahead of the WAN transfer. The seed RM fired every file worker
//! simultaneously with fixed tuning: a 40-file request opened 40 transfers
//! into one client NIC, each crawling through slow start at 1/40th of the
//! access rate, tripping the reliability plugin's minimum-rate check and
//! thrashing through failovers. This module is the scheduling layer that
//! replaces that loop:
//!
//! * **Admission control** — a per-request ready queue ordered by a
//!   pluggable [`AdmissionPolicy`], released under a per-request in-flight
//!   cap, plus a per-source-host cap backed by the manager-wide
//!   [`HostLedger`], so small files are not starved behind multi-GB
//!   transfers and no host (or the client NIC) is oversubscribed.
//! * **BDP auto-tuning** — per-path `TransferTuning` derived from the NWS
//!   bandwidth×RTT product (the paper's "Buffer size = Bandwidth ×
//!   Latency" rule) instead of fixed defaults; see [`bdp_tuning`].
//! * **Stage/transfer pipelining** — cold tape-only files are prestaged at
//!   submit time so HRM mount/seek/stream latency overlaps the WAN
//!   transfers of warm files instead of serializing behind admission.
//! * **Cross-request load** — the [`HostLedger`] counts in-flight pulls
//!   across *all* requests, so `plan_spread`'s load discount sees what
//!   concurrent users are doing and spreads them over replicas.

use crate::manager::TransferTuning;
use esg_simnet::SimDuration;
use std::collections::HashMap;

/// Order in which a request's ready queue is released by admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Submit order.
    Fifo,
    /// Smallest file first: minimizes mean file sojourn, and small files
    /// are exactly the ones a multi-GB neighbour would starve.
    ShortestFirst,
    /// Interleave by size rank so consecutive releases mix large and
    /// small files; combined with `plan_spread` this widens the set of
    /// sites serving at any instant.
    SiteSpread,
}

/// Scheduler configuration living inside the request manager.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Master switch: `false` restores the seed "start all N workers at
    /// once" behaviour (the bench ablation baseline).
    pub enabled: bool,
    /// In-flight file cap per request (admission slots).
    pub max_active_per_request: usize,
    /// In-flight transfer cap per source host across all requests
    /// (0 = uncapped). Checked against the manager-wide [`HostLedger`];
    /// block-repair fetches bypass the cap but still count in the ledger.
    pub max_inflight_per_host: usize,
    /// Ready-queue release order.
    pub policy: AdmissionPolicy,
    /// Derive per-path streams/window from the NWS BDP forecast.
    pub auto_tune: bool,
    /// Request cached GridFTP data channels for scheduled transfers, so
    /// repeat pulls from a host skip the connect + GSI handshake and the
    /// TCP slow-start ramp (the paper's data-channel-caching feature).
    /// Observable as the `gridftp.cache_hits` counter.
    pub channel_cache: bool,
    /// Prestage cold tape-only files at submit time.
    pub prestage: bool,
    /// Retry delay when every candidate replica is at its host cap. This
    /// is a capacity wait, not a failure: it consumes no attempt.
    pub defer_retry: SimDuration,
    /// Clamp floor for the auto-tuned per-stream window.
    pub window_min: f64,
    /// Clamp ceiling for the auto-tuned per-stream window.
    pub window_max: f64,
    /// Ceiling on auto-tuned parallel streams.
    pub max_streams: u32,
    /// BDP multiplier. NWS forecasts *achieved* throughput, not capacity;
    /// sizing the window at exactly forecast×RTT would cap the new
    /// transfer at the previously observed rate (a self-fulfilling
    /// underestimate), so the window gets headroom to discover more.
    pub bdp_headroom: f64,
    /// Use the indexed hot path: incremental per-request live/progress
    /// sets, cached tenant active-weight, and a persistent campaign
    /// journal writer, so per-event cost stays O(1) at 10k files per
    /// round. `false` keeps the legacy O(N)-rescan paths (the
    /// `rm_scaling` ablation baseline); both paths must produce bitwise
    /// identical traces, deliveries, and manifests — the legacy arm
    /// additionally counts `rm.sched.queue_rescans` / `rm.ledger.scan_len`
    /// so the differential tests can prove the indexed arm stopped
    /// scanning.
    pub indexed: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            enabled: true,
            max_active_per_request: 4,
            max_inflight_per_host: 8,
            policy: AdmissionPolicy::ShortestFirst,
            auto_tune: true,
            channel_cache: true,
            prestage: true,
            defer_retry: SimDuration::from_secs(1),
            window_min: (256u64 << 10) as f64,
            window_max: (4u64 << 20) as f64,
            max_streams: 8,
            bdp_headroom: 2.0,
            indexed: true,
        }
    }
}

/// Manager-wide in-flight transfer counts per source host.
///
/// An entry covers the span from replica-selection commit to the end of
/// the attempt (completion, cancellation, or failure), which is exactly
/// the window in which the pull occupies the host. Both normal attempts
/// and ERET block repairs are counted — the spread planner should see
/// every live pull — but only attempts update the admission peak gauge,
/// because only attempts are subject to the cap.
#[derive(Debug, Default)]
pub struct HostLedger {
    /// Interning table: host name → dense id. Hosts are never un-interned
    /// (the testbed has a handful), so every count lives in a flat vector
    /// and acquire/release after first sight allocate nothing.
    host_ids: HashMap<String, usize>,
    hosts: Vec<String>,
    counts: Vec<usize>,
    attempts: Vec<usize>,
    total: usize,
    /// Highest simultaneous *attempt* count observed on any single host
    /// (soak tests assert this never exceeds the per-host cap).
    peak_attempts: usize,
    /// In-flight pulls per tenant, across all hosts — the quantity the
    /// weighted fair-share admission check compares against a tenant's
    /// share of the global budget. Interned like hosts.
    tenant_ids: HashMap<String, usize>,
    tenants: Vec<String>,
    tenant_counts: Vec<usize>,
}

impl HostLedger {
    fn host_id(&mut self, host: &str) -> usize {
        match self.host_ids.get(host) {
            Some(&id) => id,
            None => {
                let id = self.hosts.len();
                self.hosts.push(host.to_string());
                self.host_ids.insert(host.to_string(), id);
                self.counts.push(0);
                self.attempts.push(0);
                id
            }
        }
    }

    fn tenant_id(&mut self, tenant: &str) -> usize {
        match self.tenant_ids.get(tenant) {
            Some(&id) => id,
            None => {
                let id = self.tenants.len();
                self.tenants.push(tenant.to_string());
                self.tenant_ids.insert(tenant.to_string(), id);
                self.tenant_counts.push(0);
                id
            }
        }
    }

    /// In-flight pulls from `host` right now.
    pub fn load(&self, host: &str) -> usize {
        self.host_ids.get(host).map_or(0, |&id| self.counts[id])
    }

    /// Total in-flight pulls across all hosts.
    pub fn total(&self) -> usize {
        self.total
    }

    /// In-flight pulls owned by `tenant` right now.
    pub fn tenant_load(&self, tenant: &str) -> usize {
        self.tenant_ids
            .get(tenant)
            .map_or(0, |&id| self.tenant_counts[id])
    }

    /// Highest simultaneous attempt count seen on any host.
    pub fn peak_attempts(&self) -> usize {
        self.peak_attempts
    }

    /// Snapshot of per-host loads for the spread planner.
    pub fn snapshot(&self) -> HashMap<String, usize> {
        self.hosts
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(h, &c)| (h.clone(), c))
            .collect()
    }

    /// Record a pull starting from `host` on behalf of `tenant`.
    /// `is_attempt` distinguishes cap-governed attempts from cap-exempt
    /// repairs.
    pub fn acquire(&mut self, host: &str, tenant: &str, is_attempt: bool) {
        let hid = self.host_id(host);
        let tid = self.tenant_id(tenant);
        self.counts[hid] += 1;
        self.tenant_counts[tid] += 1;
        self.total += 1;
        if is_attempt {
            self.attempts[hid] += 1;
            self.peak_attempts = self.peak_attempts.max(self.attempts[hid]);
        }
    }

    /// Record a pull from `host` on behalf of `tenant` ending.
    pub fn release(&mut self, host: &str, tenant: &str, is_attempt: bool) {
        let hid = self.host_ids.get(host).copied();
        if let Some(hid) = hid {
            if self.counts[hid] > 0 {
                self.counts[hid] -= 1;
                self.total -= 1;
                // Tenant bookkeeping only moves when the host count was
                // real: a double release (cancel racing an attempt-end
                // path) must leave both untouched, not drive the tenant
                // negative.
                if let Some(&tid) = self.tenant_ids.get(tenant) {
                    if self.tenant_counts[tid] > 0 {
                        self.tenant_counts[tid] -= 1;
                    }
                }
            }
            if is_attempt && self.attempts[hid] > 0 {
                self.attempts[hid] -= 1;
            }
        }
    }
}

/// The tenant a request belongs to when none is named: interactive
/// traffic submitted through the plain [`submit_request`] path.
///
/// [`submit_request`]: crate::manager::submit_request
pub const DEFAULT_TENANT: &str = "interactive";

/// Multi-tenant weighted fair-share configuration.
///
/// Lives on the request manager (not inside the `Copy`
/// [`SchedulerConfig`]) because it owns per-tenant maps. With
/// `budget == 0` and no quotas the table is inert and the scheduler
/// behaves exactly as before this layer existed.
#[derive(Debug, Clone)]
pub struct TenantTable {
    /// Global concurrent-pull budget divided among *active* tenants
    /// (those with live requests) in proportion to weight. `0` disables
    /// weighted sharing entirely.
    pub budget: usize,
    /// Weight for tenants without an explicit entry.
    pub default_weight: u32,
    /// A tenant whose queued work has made no admission progress for
    /// this long is starved: the next deferral emits
    /// `rm.campaign.starved` (rate-limited to once per window).
    /// `SimDuration::ZERO` disables detection.
    pub starvation_after: SimDuration,
    weights: HashMap<String, u32>,
    quotas: HashMap<String, usize>,
    /// Bumped on every weight/quota edit so the manager's cached
    /// active-weight sum (indexed path) knows when to recompute.
    epoch: u64,
}

impl Default for TenantTable {
    fn default() -> Self {
        TenantTable {
            budget: 0,
            default_weight: 1,
            starvation_after: SimDuration::from_secs(120),
            weights: HashMap::new(),
            quotas: HashMap::new(),
            epoch: 0,
        }
    }
}

impl TenantTable {
    pub fn set_weight(&mut self, tenant: &str, weight: u32) {
        self.weights.insert(tenant.to_string(), weight.max(1));
        self.epoch += 1;
    }

    /// Hard per-tenant in-flight ceiling, applied on top of the weighted
    /// share (`0` = none).
    pub fn set_quota(&mut self, tenant: &str, quota: usize) {
        self.quotas.insert(tenant.to_string(), quota);
        self.epoch += 1;
    }

    /// Configuration generation: changes whenever a weight or quota is
    /// edited. Cache keys derived from this table must include it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn weight(&self, tenant: &str) -> u32 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }

    pub fn quota(&self, tenant: &str) -> usize {
        self.quotas.get(tenant).copied().unwrap_or(0)
    }

    /// The in-flight ceiling for `tenant` given the total weight of the
    /// currently active tenants. Work-conserving: an active tenant always
    /// gets at least one slot, and capacity left idle by inactive tenants
    /// is redistributed (shares are computed over *active* weight only).
    pub fn limit(&self, tenant: &str, active_weight: u64) -> usize {
        let share = if self.budget == 0 {
            0
        } else {
            let w = self.weight(tenant) as u64;
            match ((self.budget as u64) * w).checked_div(active_weight) {
                None => self.budget,
                Some(s) => (s as usize).max(1),
            }
        };
        match (share, self.quota(tenant)) {
            (0, 0) => usize::MAX,
            (0, q) => q,
            (s, 0) => s,
            (s, q) => s.min(q),
        }
    }
}

/// Scheduler observability counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Files released from a ready queue into a worker.
    pub admitted: u64,
    /// Selection rounds postponed because every candidate was at its
    /// host cap (capacity waits, not failures).
    pub deferred: u64,
    /// Selection rounds postponed because the owning tenant was at its
    /// weighted fair share (or hard quota) of the global budget.
    pub tenant_deferred: u64,
    /// Cold tape files prestaged at submit time.
    pub prestaged: u64,
    /// Transfers launched with BDP-derived tuning (vs. defaults).
    pub tuned: u64,
    /// Highest simultaneous admitted-file count in any single request.
    pub peak_active_per_request: usize,
}

impl SchedStats {
    /// Registry names backing each field. The request manager counts
    /// directly into its `MetricsRegistry`; this struct is a typed view.
    pub const ADMITTED: &'static str = "rm.sched.admitted";
    pub const DEFERRED: &'static str = "rm.sched.deferred";
    pub const TENANT_DEFERRED: &'static str = "rm.sched.tenant_deferred";
    pub const PRESTAGED: &'static str = "rm.sched.prestaged";
    pub const TUNED: &'static str = "rm.sched.tuned";
    pub const PEAK_ACTIVE: &'static str = "rm.sched.peak_active_per_request";

    /// Materialise the view from a metrics registry snapshot.
    pub fn from_registry(reg: &esg_netlogger::MetricsRegistry) -> Self {
        SchedStats {
            admitted: reg.counter(Self::ADMITTED),
            deferred: reg.counter(Self::DEFERRED),
            tenant_deferred: reg.counter(Self::TENANT_DEFERRED),
            prestaged: reg.counter(Self::PRESTAGED),
            tuned: reg.counter(Self::TUNED),
            peak_active_per_request: reg.gauge(Self::PEAK_ACTIVE) as usize,
        }
    }
}

/// Order a request's file indices into its ready queue.
///
/// `sizes[i]` is the catalog size of file `i`. Ties (and `Fifo`) preserve
/// submit order, which keeps the schedule a pure function of the request.
pub fn order_queue(policy: AdmissionPolicy, sizes: &[u64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..sizes.len()).collect();
    match policy {
        AdmissionPolicy::Fifo => {}
        AdmissionPolicy::ShortestFirst => {
            idx.sort_by_key(|&i| (sizes[i], i));
        }
        AdmissionPolicy::SiteSpread => {
            // Interleave the size-sorted order from both ends: small,
            // large, small, large... so each admission wave mixes file
            // scales (and therefore likely sites/durations).
            let mut by_size: Vec<usize> = (0..sizes.len()).collect();
            by_size.sort_by_key(|&i| (sizes[i], i));
            let mut out = Vec::with_capacity(by_size.len());
            let (mut lo, mut hi) = (0usize, by_size.len());
            while lo < hi {
                out.push(by_size[lo]);
                lo += 1;
                if lo < hi {
                    hi -= 1;
                    out.push(by_size[hi]);
                }
            }
            idx = out;
        }
    }
    idx
}

/// Derive per-path transfer tuning from NWS forecasts.
///
/// The paper's operating rule was "Buffer size in KB = Bandwidth (Mb/s) ×
/// Latency (ms) × 1024/1000/8" — the bandwidth-delay product. Given a
/// bandwidth forecast (bytes/sec) and an RTT forecast (seconds) for the
/// chosen path:
///
/// * `bdp = bandwidth × rtt × bdp_headroom`
/// * `streams = clamp(ceil(bdp / window_max), 1, max_streams)` — only
///   paths whose BDP exceeds one clamped window get extra streams;
/// * `window = clamp(bdp / streams, window_min, window_max)`.
///
/// Returns `(tuning, true)` when a forecast-driven decision was made, or
/// `(base, false)` when either forecast is missing (cold NWS path) and the
/// fixed defaults apply.
pub fn bdp_tuning(
    cfg: &SchedulerConfig,
    base: TransferTuning,
    bandwidth: Option<f64>,
    rtt: Option<f64>,
) -> (TransferTuning, bool) {
    let (Some(bw), Some(rtt)) = (bandwidth, rtt) else {
        return (base, false);
    };
    // Degenerate forecasts (zero, negative, NaN) fall back to defaults.
    let healthy = bw > 0.0 && rtt > 0.0;
    if !healthy {
        return (base, false);
    }
    let bdp = bw * rtt * cfg.bdp_headroom;
    let streams = ((bdp / cfg.window_max).ceil() as u32).clamp(1, cfg.max_streams.max(1));
    let window = (bdp / streams as f64).clamp(cfg.window_min, cfg.window_max);
    (
        TransferTuning {
            streams,
            window,
            channel_cache: base.channel_cache,
        },
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_submit_order() {
        assert_eq!(order_queue(AdmissionPolicy::Fifo, &[30, 10, 20]), [0, 1, 2]);
    }

    #[test]
    fn shortest_first_sorts_by_size_stable() {
        assert_eq!(
            order_queue(AdmissionPolicy::ShortestFirst, &[30, 10, 20, 10]),
            [1, 3, 2, 0]
        );
    }

    #[test]
    fn site_spread_interleaves_extremes() {
        // sizes sorted: 1(=idx1), 2(=idx3), 3(=idx0), 4(=idx2)
        assert_eq!(
            order_queue(AdmissionPolicy::SiteSpread, &[3, 1, 4, 2]),
            [1, 2, 3, 0]
        );
    }

    #[test]
    fn empty_queue_is_empty() {
        assert!(order_queue(AdmissionPolicy::ShortestFirst, &[]).is_empty());
    }

    #[test]
    fn ledger_tracks_loads_and_peak() {
        let mut l = HostLedger::default();
        l.acquire("a", "t1", true);
        l.acquire("a", "t1", true);
        l.acquire("b", "t2", false); // repair: counted, not peak-tracked
        assert_eq!(l.load("a"), 2);
        assert_eq!(l.load("b"), 1);
        assert_eq!(l.total(), 3);
        assert_eq!(l.tenant_load("t1"), 2);
        assert_eq!(l.tenant_load("t2"), 1);
        assert_eq!(l.peak_attempts(), 2);
        l.release("a", "t1", true);
        l.release("a", "t1", true);
        l.release("b", "t2", false);
        assert_eq!(l.total(), 0);
        assert_eq!(l.load("a"), 0);
        assert_eq!(l.tenant_load("t1"), 0);
        assert_eq!(l.peak_attempts(), 2, "peak is a high-water mark");
    }

    #[test]
    fn ledger_release_of_unknown_host_is_noop() {
        let mut l = HostLedger::default();
        l.release("ghost", "t1", true);
        assert_eq!(l.total(), 0);
        assert_eq!(l.tenant_load("t1"), 0);
    }

    #[test]
    fn ledger_double_release_leaves_tenant_counts_consistent() {
        let mut l = HostLedger::default();
        l.acquire("a", "t1", true);
        l.release("a", "t1", true);
        // A second release of the same pull (the cancel-vs-attempt-end
        // race the manager's idempotent ledger_host guard prevents) must
        // be a no-op at this layer too.
        l.release("a", "t1", true);
        assert_eq!(l.total(), 0);
        assert_eq!(l.load("a"), 0);
        assert_eq!(l.tenant_load("t1"), 0);
    }

    #[test]
    fn tenant_limits_follow_weights_and_quotas() {
        let mut t = TenantTable::default();
        // Inert by default: no budget, no quota.
        assert_eq!(t.limit("any", 0), usize::MAX);
        t.budget = 12;
        t.set_weight("bulk", 1);
        t.set_weight("fg", 4);
        // Active weight 5 (interactive absent): bulk 12*1/5=2, fg 12*4/5=9.
        assert_eq!(t.limit("bulk", 5), 2);
        assert_eq!(t.limit("fg", 5), 9);
        // Alone, an active tenant gets the full budget (work conserving).
        assert_eq!(t.limit("bulk", 1), 12);
        // A hard quota clips the share; a share clips a generous quota.
        t.set_quota("bulk", 1);
        assert_eq!(t.limit("bulk", 5), 1);
        t.set_quota("fg", 100);
        assert_eq!(t.limit("fg", 5), 9);
        // Even a tiny weight yields at least one slot.
        t.set_weight("spec", 1);
        assert_eq!(t.limit("spec", 1000), 1);
        // Quota alone (no budget) is a plain ceiling.
        t.budget = 0;
        assert_eq!(t.limit("bulk", 5), 1);
    }

    #[test]
    fn bdp_tuning_falls_back_without_forecasts() {
        let cfg = SchedulerConfig::default();
        let base = TransferTuning::default();
        let (t, tuned) = bdp_tuning(&cfg, base, None, Some(0.01));
        assert!(!tuned);
        assert_eq!(t.streams, base.streams);
        let (_, tuned) = bdp_tuning(&cfg, base, Some(1e7), None);
        assert!(!tuned);
        let (_, tuned) = bdp_tuning(&cfg, base, Some(0.0), Some(0.01));
        assert!(!tuned, "degenerate forecasts fall back");
    }

    #[test]
    fn bdp_tuning_small_path_gets_one_stream() {
        let cfg = SchedulerConfig::default();
        // 10 MB/s × 10 ms × 2 headroom = 200 KB BDP: one stream, floor
        // window.
        let (t, tuned) = bdp_tuning(&cfg, TransferTuning::default(), Some(10e6), Some(0.010));
        assert!(tuned);
        assert_eq!(t.streams, 1);
        assert_eq!(t.window, cfg.window_min);
    }

    #[test]
    fn bdp_tuning_long_fat_path_gets_streams_and_capped_window() {
        let cfg = SchedulerConfig::default();
        // 150 MB/s × 80 ms × 2 = 24 MB BDP: ceil(24e6/4MiB) = 6 streams,
        // each window bdp/6 = 4.0 MB (just inside the 4 MiB ceiling).
        let (t, tuned) = bdp_tuning(&cfg, TransferTuning::default(), Some(150e6), Some(0.080));
        assert!(tuned);
        assert_eq!(t.streams, 6);
        assert_eq!(t.window, 24e6 / 6.0);
        assert!(t.window <= cfg.window_max);
    }

    #[test]
    fn bdp_tuning_respects_stream_ceiling() {
        let cfg = SchedulerConfig {
            max_streams: 4,
            ..Default::default()
        };
        let (t, _) = bdp_tuning(&cfg, TransferTuning::default(), Some(1e9), Some(0.2));
        assert_eq!(t.streams, 4);
        assert_eq!(t.window, cfg.window_max);
    }

    #[test]
    fn bdp_tuning_window_times_streams_covers_bdp_when_unclamped() {
        let cfg = SchedulerConfig::default();
        let bw = 60e6;
        let rtt = 0.05;
        let (t, _) = bdp_tuning(&cfg, TransferTuning::default(), Some(bw), Some(rtt));
        let bdp = bw * rtt * cfg.bdp_headroom;
        assert!(
            t.streams as f64 * t.window >= bdp - 1.0,
            "aggregate window {} must cover the headroomed BDP {bdp}",
            t.streams as f64 * t.window
        );
    }

    #[test]
    fn bdp_tuning_preserves_channel_cache_flag() {
        let cfg = SchedulerConfig::default();
        let base = TransferTuning {
            channel_cache: true,
            ..Default::default()
        };
        let (t, _) = bdp_tuning(&cfg, base, Some(50e6), Some(0.02));
        assert!(t.channel_cache);
    }
}
