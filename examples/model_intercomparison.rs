//! Model intercomparison across the grid — the PCMDI workload.
//!
//! The paper's introduction: simulations "must be compared with what is
//! known about the observed variability", requiring methodologies for
//! "recombining, analyzing and intercomparing distributed data". This
//! example publishes two model runs at *different* sites and resolutions,
//! fetches both through the full grid stack (metadata → replica selection
//! → GridFTP), regrids them onto a common grid and computes the standard
//! intercomparison diagnostics.
//!
//! Run with: `cargo run --release --example model_intercomparison`

use esg::cdms::{self, SynthParams};
use esg::core::{esg_testbed, fetch_and_analyze};
use esg::simnet::{SimDuration, SimTime};

fn main() {
    println!("== model intercomparison over the data grid ==\n");
    let mut tb = esg_testbed(77);

    // Two "models": same physics generator, different seeds & resolutions.
    let pcm = SynthParams {
        lat_points: 64,
        lon_points: 128,
        time_steps: 32,
        hours_per_step: 6.0,
        seed: 100,
    };
    let ccsm = SynthParams {
        lat_points: 48,
        lon_points: 96,
        time_steps: 32,
        hours_per_step: 6.0,
        seed: 200,
    };
    tb.publish_dataset("pcm_b06.61", 32, 8, 12_600_000, &[1]); // LLNL
    tb.publish_dataset("ccsm_run1", 32, 8, 7_100_000, &[3]); // ANL
    tb.start_nws(SimDuration::from_secs(30));
    tb.sim.run_until(SimTime::from_secs(120));

    println!("fetching pcm_b06.61 (64x128 grid) from LLNL...");
    let (o1, pcm_prod) = fetch_and_analyze(
        &mut tb,
        "pcm_b06.61",
        "tas",
        (0, 32),
        pcm,
        SimTime::from_secs(40_000),
    )
    .unwrap();
    println!(
        "  {} files, {:.0} MB, {:.1} s simulated",
        o1.files.len(),
        o1.total_bytes as f64 / 1e6,
        o1.finished.since(o1.started).as_secs_f64()
    );

    println!("fetching ccsm_run1 (48x96 grid) from ANL...");
    let (o2, ccsm_prod) = fetch_and_analyze(
        &mut tb,
        "ccsm_run1",
        "tas",
        (0, 32),
        ccsm,
        SimTime::from_secs(80_000),
    )
    .unwrap();
    println!(
        "  {} files, {:.0} MB, {:.1} s simulated",
        o2.files.len(),
        o2.total_bytes as f64 / 1e6,
        o2.finished.since(o2.started).as_secs_f64()
    );

    // Intercompare the time-mean temperature fields (regrids CCSM onto
    // the PCM grid internally).
    let ic = cdms::intercompare(&pcm_prod.field, &ccsm_prod.field);
    println!("\nintercomparison of time-mean tas (CCSM regridded to 64x128):");
    println!("  mean bias (PCM - CCSM):  {:>7.2} K", ic.mean_bias);
    println!("  RMS difference:          {:>7.2} K", ic.rms);
    println!("  pattern correlation:     {:>7.3}", ic.pattern_correlation);

    println!("\ndifference map (PCM - CCSM), blue=CCSM warmer, dense=PCM warmer:\n");
    println!("{}", cdms::ascii_map(&ic.difference, 14));
    println!(
        "(same climate physics, different weather realizations: expect high \n\
         pattern correlation ({:.2}) with weather-noise RMS of a few K)",
        ic.pattern_correlation
    );
    assert!(ic.pattern_correlation > 0.9);
}
